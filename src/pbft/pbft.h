#ifndef CONSENSUS40_PBFT_PBFT_H_
#define CONSENSUS40_PBFT_PBFT_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::pbft {

/// Configuration shared by all replicas of a PBFT cluster.
struct PbftOptions {
  /// Cluster size; must be 3f+1. Replicas are processes 0..n-1.
  int n = 4;

  /// Shared key registry ("PKI") used to sign pre-prepares, prepares,
  /// commits, and checkpoints so that proofs can be relayed and verified.
  const crypto::KeyRegistry* registry = nullptr;

  /// Client-request patience before a replica suspects the primary and
  /// starts a view change.
  sim::Duration request_timeout = 300 * sim::kMillisecond;

  /// A checkpoint is taken every this many executed requests.
  uint64_t checkpoint_interval = 16;

  /// Max client requests the primary folds into one pre-prepare (one
  /// agreement instance). 1 = classic per-request agreement.
  int batch_size = 1;

  /// How long the primary lets requests pool before cutting a batch.
  /// 0 = propose immediately (each request gets its own instance unless
  /// several arrive in the same instant).
  sim::Duration batch_delay = 0;
};

/// Signed wrapper used wherever PBFT relays third-party messages as proof
/// (prepared certificates in view changes, checkpoint certificates).
struct SignedVote {
  int32_t replica = -1;
  int64_t view = 0;
  uint64_t seq = 0;
  crypto::Digest digest{};
  crypto::Signature sig;

  /// Digest that is actually signed.
  crypto::Digest SigningDigest() const;
  bool Verify(const crypto::KeyRegistry& registry) const;
};

/// A PBFT replica (Castro & Liskov 1999): pre-prepare / prepare / commit,
/// checkpointing with garbage collection, and the O(n^3) view change.
/// Subclass and override adversary hooks to build Byzantine replicas for
/// tests (honest code paths verify all signatures and quorums, so
/// adversaries can disrupt liveness but never safety).
class PbftReplica : public sim::Process {
 public:
  explicit PbftReplica(PbftOptions options);

  // --- Client-facing messages ---
  struct RequestMsg : sim::Message {
    RequestMsg(smr::Command c, crypto::Signature s)
        : cmd(std::move(c)), client_sig(s) {}
    const char* TypeName() const override { return "pbft-request"; }
    int ByteSize() const override { return 48 + cmd.ByteSize(); }
    smr::Command cmd;
    /// Client's signature over cmd.Hash(): a Byzantine primary can reorder
    /// or drop requests but never fabricate one.
    crypto::Signature client_sig;
  };

  /// True iff `cmd` is a well-formed request: either the protocol-internal
  /// NOOP filler or a command whose client signature verifies.
  static bool ValidRequest(const smr::Command& cmd,
                           const crypto::Signature& sig,
                           const crypto::KeyRegistry& registry);
  struct ReplyMsg : sim::Message {
    const char* TypeName() const override { return "pbft-reply"; }
    int ByteSize() const override {
      return 24 + static_cast<int>(result.size());
    }
    int64_t view = 0;
    uint64_t client_seq = 0;
    int32_t replica = -1;
    std::string result;
  };

  // --- Protocol messages (public so adversaries in tests can forge their
  //     own instances; honest replicas validate everything they receive) ---
  struct PrePrepareMsg : sim::Message {
    const char* TypeName() const override { return "pre-prepare"; }
    int ByteSize() const override {
      int size = 120;
      for (const smr::Command& cmd : cmds) size += 40 + cmd.ByteSize();
      return size;
    }
    int64_t view = 0;
    uint64_t seq = 0;
    crypto::Digest digest{};
    /// The ordered request batch (empty = view-change NOOP filler).
    std::vector<smr::Command> cmds;
    std::vector<crypto::Signature> client_sigs;
    crypto::Signature sig;  ///< Primary's signature over (view,seq,digest).
  };

  /// Canonical digest of a request batch.
  static crypto::Digest BatchDigest(const std::vector<smr::Command>& cmds);

  /// Digest the primary signs for a pre-prepare: (view, seq, batch digest).
  /// Public for the same reason the messages are — adversaries forge
  /// pre-prepares, honest replicas verify them.
  static crypto::Digest PrePrepareDigest(int64_t view, uint64_t seq,
                                         const crypto::Digest& digest);

  /// True iff every command in the batch is well-formed and client-signed.
  static bool ValidBatch(const std::vector<smr::Command>& cmds,
                         const std::vector<crypto::Signature>& sigs,
                         const crypto::KeyRegistry& registry);
  struct PrepareMsg : sim::Message {
    const char* TypeName() const override { return "prepare"; }
    int ByteSize() const override { return 104; }
    SignedVote vote;
  };
  struct CommitMsg : sim::Message {
    const char* TypeName() const override { return "commit"; }
    int ByteSize() const override { return 104; }
    SignedVote vote;
  };
  struct CheckpointMsg : sim::Message {
    const char* TypeName() const override { return "checkpoint"; }
    int ByteSize() const override { return 104; }
    SignedVote vote;  ///< seq = checkpoint seq, digest = state digest.
  };

  /// State transfer: a lagging replica asks a peer for the executed
  /// command history past its own frontier.
  struct StateRequestMsg : sim::Message {
    const char* TypeName() const override { return "state-request"; }
    int ByteSize() const override { return 16; }
    uint64_t have = 0;  ///< Number of commands the requester has executed.
  };
  struct StateReplyMsg : sim::Message {
    const char* TypeName() const override { return "state-reply"; }
    int ByteSize() const override {
      return 64 + static_cast<int>(cmds.size()) * 56;
    }
    uint64_t have = 0;           ///< Echo of the request.
    uint64_t last_executed = 0;  ///< Sender's executed sequence frontier.
    std::vector<smr::Command> cmds;  ///< Executed commands beyond `have`.
    crypto::Digest state_digest{};   ///< Sender's state digest.
  };

  /// A prepared certificate: pre-prepare data + 2f matching prepares.
  struct PreparedProof {
    int64_t view = 0;
    uint64_t seq = 0;
    crypto::Digest digest{};
    std::vector<smr::Command> cmds;
    std::vector<crypto::Signature> client_sigs;
    crypto::Signature primary_sig;
    std::vector<SignedVote> prepares;

    bool Verify(const crypto::KeyRegistry& registry, int n) const;
  };

  /// Sent by a replica that notices traffic from a newer view than its
  /// own; the receiver answers with its latest NewViewMsg so the laggard
  /// can validate and install the view.
  struct ViewSyncRequestMsg : sim::Message {
    const char* TypeName() const override { return "view-sync-request"; }
    int ByteSize() const override { return 16; }
    int64_t have_view = 0;
  };

  struct ViewChangeMsg : sim::Message {
    const char* TypeName() const override { return "view-change"; }
    int ByteSize() const override {
      return 64 + static_cast<int>(prepared.size()) * 360 +
             static_cast<int>(checkpoint_proof.size()) * 104;
    }
    int64_t new_view = 0;
    int32_t replica = -1;
    uint64_t stable_seq = 0;
    std::vector<SignedVote> checkpoint_proof;  ///< 2f+1 checkpoint votes.
    std::vector<PreparedProof> prepared;
    crypto::Signature sig;
  };
  struct NewViewMsg : sim::Message {
    const char* TypeName() const override { return "new-view"; }
    int ByteSize() const override {
      return 64 + static_cast<int>(view_changes.size()) * 200 +
             static_cast<int>(pre_prepares.size()) * 140;
    }
    int64_t view = 0;
    /// The 2f+1 view-change messages justifying this view (identified by
    /// replica+sig; payloads verified on receipt of the originals — here we
    /// embed full copies for verification).
    std::vector<std::shared_ptr<const ViewChangeMsg>> view_changes;
    /// Re-issued pre-prepares for in-flight sequence numbers.
    std::vector<std::shared_ptr<const PrePrepareMsg>> pre_prepares;
  };

  // --- Observers ---
  int64_t view() const { return view_; }
  bool IsPrimary() const { return view_ % options_.n == id(); }
  sim::NodeId PrimaryOf(int64_t v) const { return v % options_.n; }
  uint64_t last_executed() const { return last_executed_; }
  uint64_t stable_checkpoint() const { return stable_checkpoint_; }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<smr::Command>& executed_commands() const {
    return executed_commands_;
  }
  const std::vector<std::string>& violations() const { return violations_; }
  int view_changes_sent() const { return view_changes_sent_; }
  size_t LogSizeForTest() const { return slots_.size(); }
  /// Live view-change bookkeeping entries (pending view-change message
  /// sets + built-new-view guards). Bounded-growth regression hook: after
  /// a storm of view changes this must not scale with the storm length.
  size_t ViewChangeBookkeepingForTest() const {
    return view_change_msgs_.size() + built_new_views_.size();
  }

  void OnStart() override {}
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

 protected:
  // --- Adversary hooks (no-op for honest replicas) ---
  /// Called before handling a client request as primary; return true to
  /// hijack normal processing.
  virtual bool MaybeActMaliciouslyOnRequest(const smr::Command& cmd,
                                            const crypto::Signature& sig);

  void HandleRequest(sim::NodeId from, const smr::Command& cmd,
                     const crypto::Signature& client_sig);

  PbftOptions options_;
  int f_;

 private:
  struct Slot {
    int64_t view = -1;
    bool pre_prepared = false;
    crypto::Digest digest{};
    std::vector<smr::Command> cmds;
    std::vector<crypto::Signature> client_sigs;
    crypto::Signature primary_sig;
    std::map<sim::NodeId, SignedVote> prepares;  ///< Excluding primary.
    std::map<sim::NodeId, SignedVote> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    bool committed = false;
    bool executed = false;
  };

  void MaybeSendCommit(uint64_t seq);
  void MaybeExecute();
  void TakeCheckpoint();
  void MaybeRequestStateTransfer();
  void FlushBatch();
  void GarbageCollect(uint64_t stable_seq);
  void StartViewChange(int64_t new_view);
  void ProcessNewView(const NewViewMsg& msg);
  void ArmRequestTimer(const smr::Command& cmd);
  void DisarmRequestTimer(int32_t client, uint64_t client_seq);
  std::vector<sim::NodeId> Everyone() const;
  crypto::Digest CheckpointDigest(uint64_t seq) const;

  int64_t view_ = 0;
  bool in_view_change_ = false;
  int64_t pending_view_ = 0;  ///< View being negotiated while changing.
  /// Primary-side queue of validated requests awaiting a batch slot.
  std::deque<std::pair<smr::Command, crypto::Signature>> batch_queue_;
  uint64_t next_seq_ = 1;       ///< Primary-assigned; seq 0 unused.
  uint64_t last_executed_ = 0;  ///< Highest contiguously executed seq.
  uint64_t stable_checkpoint_ = 0;
  std::map<uint64_t, Slot> slots_;

  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;
  std::map<std::pair<int32_t, uint64_t>, sim::NodeId> awaiting_client_;
  std::map<std::pair<int32_t, uint64_t>, std::string> results_;
  std::map<std::pair<int32_t, uint64_t>, uint64_t> request_timers_;

  /// checkpoint seq -> votes.
  std::map<uint64_t, std::map<sim::NodeId, SignedVote>> checkpoint_votes_;
  std::map<uint64_t, std::vector<SignedVote>> checkpoint_proofs_;
  /// State-transfer fetch state: candidate histories keyed by claimed
  /// post-state digest; adopted when f+1 peers agree.
  std::map<crypto::Digest, std::map<sim::NodeId,
                                    std::shared_ptr<const StateReplyMsg>>>
      state_offers_;
  bool state_transfer_inflight_ = false;

  /// target view -> view-change messages received.
  std::map<int64_t, std::map<sim::NodeId, std::shared_ptr<const ViewChangeMsg>>>
      view_change_msgs_;

  int view_changes_sent_ = 0;
  /// Escalation watchdog for the pending view change. One generation at a
  /// time: re-armed by StartViewChange, cancelled when a NewView installs,
  /// so a watchdog from a superseded negotiation can never fire into a
  /// healthy later view.
  uint64_t view_change_timer_ = 0;
  std::set<int64_t> built_new_views_;  ///< Guard against duplicate NewViews.
  /// Latest installed NewView, kept to bring restarted replicas up to date.
  std::shared_ptr<const NewViewMsg> last_new_view_;
  std::vector<std::string> violations_;
};

/// PBFT client: sends to the primary hint, rebroadcasts to all replicas on
/// timeout (which triggers forwarding / view changes), accepts a result
/// after f+1 matching replies.
class PbftClient : public sim::Process {
 public:
  PbftClient(int n, const crypto::KeyRegistry* registry, int ops,
             std::string key = "x",
             sim::Duration retry = 500 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void SendCurrent(bool broadcast);

  int n_;
  const crypto::KeyRegistry* registry_;
  int f_;
  int ops_;
  std::string key_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  sim::NodeId primary_hint_ = 0;
  uint64_t retry_timer_ = 0;
  /// result -> replicas that reported it for the current seq.
  std::map<std::string, std::set<sim::NodeId>> reply_votes_;
  std::vector<std::string> results_;
};

}  // namespace consensus40::pbft

#endif  // CONSENSUS40_PBFT_PBFT_H_
