/// Checker adapters for PBFT: the in-bounds n=3f+1 configuration, the
/// in-bounds Byzantine variant (one interposer-driven liar inside the
/// stated f), and the out-of-bounds n=3f configuration (n=3, f=1) where
/// the implementation's quorum math degenerates to f'=0 — replicas commit
/// straight from a valid pre-prepare — so one equivocating primary
/// (f'+1 liars for the degenerate f'=0) forks the two honest backups.
///
/// All Byzantine behaviour rides the reusable sim::ByzantineInterposer;
/// the protocol knowledge lives in the forge/corrupt hooks built by
/// MakePbftByzantineHooks below, not in adversary subclasses.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "pbft/pbft.h"
#include "sim/byzantine.h"

namespace consensus40::check {
namespace {

/// Shared forgery material across all hooks of one cluster: real
/// client-signed commands harvested from observed pre-prepares, plus the
/// (view, seq) -> {real digest, twin digest} fork map that keeps a liar's
/// prepare/commit votes consistent with whichever pre-prepare each half of
/// the cluster received.
struct PbftForkState {
  std::map<crypto::Digest, std::pair<smr::Command, crypto::Signature>>
      commands;
  std::map<std::pair<int64_t, uint64_t>, std::pair<crypto::Digest,
                                                   crypto::Digest>>
      forks;
};

/// Re-points `vote` at the other side of the recorded fork for its
/// (view, seq) — or at a phantom digest when no fork is on record — and
/// re-signs it as `from`. The signature stays valid: this is a lie, not
/// line noise.
void FlipVote(const PbftForkState& st, const crypto::KeyRegistry* registry,
              sim::NodeId from, pbft::SignedVote* vote) {
  auto it = st.forks.find({vote->view, vote->seq});
  if (it != st.forks.end()) {
    vote->digest = vote->digest == it->second.first ? it->second.second
                                                    : it->second.first;
  } else {
    vote->digest[0] ^= 0xff;
  }
  vote->sig = registry->Sign(from, vote->SigningDigest());
}

/// Protocol hooks that make the generic interposer speak PBFT:
///  - forge_twin reorders a pre-prepare batch (or substitutes a different
///    harvested client command), re-signs it as the sender, and records
///    the fork so later votes flip consistently; checkpoints lie about the
///    state digest; view-change traffic is withheld (a coherent forged
///    view-change proof would need honest keys the liar does not have).
///  - corrupt byte-flips the digest WITHOUT re-signing, so the result
///    fails verification at honest receivers (exercises validation paths).
/// Everything is re-signed with the sender's real key via the shared
/// registry — a Byzantine node can lie, but never fabricate a client
/// request or another replica's signature.
sim::ByzantineInterposer::Hooks MakePbftByzantineHooks(
    const crypto::KeyRegistry* registry) {
  using Replica = pbft::PbftReplica;
  auto st = std::make_shared<PbftForkState>();

  sim::ByzantineInterposer::Hooks hooks;
  hooks.observe = [st](sim::NodeId, const sim::MessagePtr& m) {
    const auto* pp = dynamic_cast<const Replica::PrePrepareMsg*>(m.get());
    if (pp == nullptr) return;
    const size_t n = std::min(pp->cmds.size(), pp->client_sigs.size());
    for (size_t i = 0; i < n && st->commands.size() < 8; ++i) {
      st->commands.emplace(
          pp->cmds[i].Hash(),
          std::make_pair(pp->cmds[i], pp->client_sigs[i]));
    }
  };

  hooks.forge_twin = [st, registry](
                         sim::NodeId from,
                         const sim::MessagePtr& m) -> sim::MessagePtr {
    if (const auto* pp = dynamic_cast<const Replica::PrePrepareMsg*>(m.get())) {
      auto twin = std::make_shared<Replica::PrePrepareMsg>(*pp);
      if (twin->cmds.size() >= 2) {
        std::reverse(twin->cmds.begin(), twin->cmds.end());
        std::reverse(twin->client_sigs.begin(), twin->client_sigs.end());
      } else {
        bool swapped = false;
        for (const auto& [hash, cmd_sig] : st->commands) {
          if (!pp->cmds.empty() && hash == pp->cmds[0].Hash()) continue;
          twin->cmds = {cmd_sig.first};
          twin->client_sigs = {cmd_sig.second};
          swapped = true;
          break;
        }
        // No distinct client-signed material to equivocate with yet.
        if (!swapped) return m;
      }
      twin->digest = Replica::BatchDigest(twin->cmds);
      twin->sig = registry->Sign(
          from, Replica::PrePrepareDigest(twin->view, twin->seq, twin->digest));
      st->forks[{twin->view, twin->seq}] = {pp->digest, twin->digest};
      return twin;
    }
    if (const auto* p = dynamic_cast<const Replica::PrepareMsg*>(m.get())) {
      auto twin = std::make_shared<Replica::PrepareMsg>(*p);
      FlipVote(*st, registry, from, &twin->vote);
      return twin;
    }
    if (const auto* c = dynamic_cast<const Replica::CommitMsg*>(m.get())) {
      auto twin = std::make_shared<Replica::CommitMsg>(*c);
      FlipVote(*st, registry, from, &twin->vote);
      return twin;
    }
    if (const auto* ck = dynamic_cast<const Replica::CheckpointMsg*>(m.get())) {
      auto twin = std::make_shared<Replica::CheckpointMsg>(*ck);
      twin->vote.digest[0] ^= 0xff;
      twin->vote.sig = registry->Sign(from, twin->vote.SigningDigest());
      return twin;
    }
    if (dynamic_cast<const Replica::ViewChangeMsg*>(m.get()) != nullptr ||
        dynamic_cast<const Replica::NewViewMsg*>(m.get()) != nullptr) {
      return nullptr;
    }
    return m;
  };

  hooks.corrupt = [](sim::NodeId, const sim::MessagePtr& m) -> sim::MessagePtr {
    if (const auto* pp = dynamic_cast<const Replica::PrePrepareMsg*>(m.get())) {
      auto bad = std::make_shared<Replica::PrePrepareMsg>(*pp);
      bad->digest[0] ^= 0xff;
      return bad;
    }
    if (const auto* p = dynamic_cast<const Replica::PrepareMsg*>(m.get())) {
      auto bad = std::make_shared<Replica::PrepareMsg>(*p);
      bad->vote.digest[0] ^= 0xff;
      return bad;
    }
    if (const auto* c = dynamic_cast<const Replica::CommitMsg*>(m.get())) {
      auto bad = std::make_shared<Replica::CommitMsg>(*c);
      bad->vote.digest[0] ^= 0xff;
      return bad;
    }
    if (const auto* ck = dynamic_cast<const Replica::CheckpointMsg*>(m.get())) {
      auto bad = std::make_shared<Replica::CheckpointMsg>(*ck);
      bad->vote.digest[0] ^= 0xff;
      return bad;
    }
    return nullptr;
  };

  return hooks;
}

class PbftCheckAdapter : public ProtocolAdapter {
 public:
  explicit PbftCheckAdapter(uint64_t seed, int ops = 4)
      : registry_(seed, kN + 4), ops_(ops) {}

  const char* name() const override { return "pbft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 3;
    b.restartable = true;
    b.partitionable = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    pbft::PbftOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    opts.checkpoint_interval = 4;  // Exercise checkpointing in-sweep.
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<pbft::PbftReplica>(opts));
    }
    client_ = sim->Spawn<pbft::PbftClient>(kN, &registry_, ops_);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const pbft::PbftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
      for (const std::string& v : r->violations()) {
        o.self_reported.push_back("pbft replica " + std::to_string(r->id()) +
                                  ": " + v);
      }
    }
    return o;
  }

 protected:
  static constexpr int kN = 4;
  crypto::KeyRegistry registry_;
  int ops_;
  std::vector<pbft::PbftReplica*> replicas_;
  pbft::PbftClient* client_ = nullptr;
};

/// In-bounds Byzantine PBFT: one of the four replicas may lie — forged
/// twin pre-prepares, flipped votes, corrupted digests, withheld or
/// replayed traffic — inside seed-chosen windows, and schedules may also
/// be view-change-heavy bursts that repeatedly silence the primary. With
/// at most f=1 liar the prepare/commit quorums must still force a single
/// order, so every safety invariant must survive the sweep.
class PbftByzantineAdapter : public PbftCheckAdapter {
 public:
  explicit PbftByzantineAdapter(uint64_t seed)
      : PbftCheckAdapter(seed, /*ops=*/12),
        byz_(MakePbftByzantineHooks(&registry_)) {}

  const char* name() const override { return "pbft_byz"; }

  FaultBounds bounds() const override {
    FaultBounds b = PbftCheckAdapter::bounds();
    b.max_byzantine = 1;
    b.byz_first_node = 0;
    b.byz_nodes = kN;
    b.byz_equivocate = true;
    b.byz_withhold = true;
    b.byz_mutate = true;
    b.byz_replay = true;
    // Matches PbftOptions::request_timeout, so a burst of primary
    // silencings spaced one period apart forces consecutive view changes
    // while the client burst is still in flight.
    b.view_change_period = 300 * sim::kMillisecond;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    PbftCheckAdapter::Build(sim);
    byz_.Attach(sim);
  }

 private:
  sim::ByzantineInterposer byz_;
};

/// PBFT at n = 3, f = 1 (i.e. n = 3f): the implementation computes
/// f' = 0, so replicas commit straight from a valid pre-prepare. One
/// equivocating primary — f'+1 liars for the quorum math actually in
/// force — forks the two honest backups. Equivocation is schedule-driven
/// (kEquivocate windows on node 0) through the same interposer + hooks as
/// the in-bounds variant; two-command batches give the forge hook a
/// reorderable twin on every proposal.
class PbftOutOfBoundsAdapter : public ProtocolAdapter {
 public:
  explicit PbftOutOfBoundsAdapter(uint64_t seed)
      : registry_(seed, kN + 4), byz_(MakePbftByzantineHooks(&registry_)) {}

  const char* name() const override { return "pbft-n=3f"; }

  FaultBounds bounds() const override {
    // The Byzantine primary is the whole fault budget: no crashes and no
    // delay spikes — the point is that n=3f forks even on a calm network.
    FaultBounds b;
    b.nodes = 0;
    b.delay_spikes = false;
    b.max_byzantine = 1;
    b.byz_first_node = 0;
    b.byz_nodes = 1;  // Only the primary lies.
    b.byz_equivocate = true;
    b.horizon = 1 * sim::kSecond;
    b.quiesce = 2 * sim::kSecond;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    pbft::PbftOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    opts.batch_size = 2;
    opts.batch_delay = 1 * sim::kMillisecond;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<pbft::PbftReplica>(opts));
    }
    // Two clients keep two distinct requests in flight, so batches hold
    // reorderable pairs for most of the horizon.
    sim->Spawn<pbft::PbftClient>(kN, &registry_, kOps, "a");
    sim->Spawn<pbft::PbftClient>(kN, &registry_, kOps, "b");
    byz_.Attach(sim);
  }

  bool Done() const override {
    for (size_t i = 1; i < replicas_.size(); ++i) {
      if (replicas_[i]->executed_commands().size() <
          static_cast<size_t>(2 * kOps)) {
        return false;
      }
    }
    return true;
  }

  bool ExpectTermination() const override { return false; }

  Observation Observe() const override {
    Observation o;
    // Only the honest backups' logs count; the Byzantine primary's state
    // is unconstrained.
    for (size_t i = 1; i < replicas_.size(); ++i) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : replicas_[i]->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 private:
  static constexpr int kN = 3;  // = 3f for f=1: out of bounds.
  static constexpr int kOps = 24;
  crypto::KeyRegistry registry_;
  sim::ByzantineInterposer byz_;
  std::vector<pbft::PbftReplica*> replicas_;
};

}  // namespace

AdapterFactory MakePbftAdapter() {
  return [](uint64_t seed) { return std::make_unique<PbftCheckAdapter>(seed); };
}

AdapterFactory MakePbftByzantineAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<PbftByzantineAdapter>(seed);
  };
}

AdapterFactory MakePbftOutOfBoundsAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<PbftOutOfBoundsAdapter>(seed);
  };
}

}  // namespace consensus40::check
