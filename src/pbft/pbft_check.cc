/// Checker adapters for PBFT: the in-bounds n=3f+1 configuration, and the
/// out-of-bounds n=3f configuration (n=3, f=1) where the implementation's
/// quorum math degenerates to f'=0 — replicas commit straight from a valid
/// pre-prepare — so an equivocating primary forks the two honest backups.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "pbft/pbft.h"

namespace consensus40::check {
namespace {

class PbftCheckAdapter : public ProtocolAdapter {
 public:
  explicit PbftCheckAdapter(uint64_t seed) : registry_(seed, kN + 4) {}

  const char* name() const override { return "pbft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 3;
    b.restartable = true;
    b.partitionable = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    pbft::PbftOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    opts.checkpoint_interval = 4;  // Exercise checkpointing in-sweep.
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<pbft::PbftReplica>(opts));
    }
    client_ = sim->Spawn<pbft::PbftClient>(kN, &registry_, kOps);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const pbft::PbftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
      for (const std::string& v : r->violations()) {
        o.self_reported.push_back("pbft replica " + std::to_string(r->id()) +
                                  ": " + v);
      }
    }
    return o;
  }

 private:
  static constexpr int kN = 4;
  static constexpr int kOps = 4;
  crypto::KeyRegistry registry_;
  std::vector<pbft::PbftReplica*> replicas_;
  pbft::PbftClient* client_ = nullptr;
};

/// Primary that assigns the same sequence numbers to different request
/// orderings per backup. With n=3f+1 the prepare quorum forces a single
/// order; at n=3 the degenerate quorum lets both forks commit.
class EquivocatingPbftPrimary : public pbft::PbftReplica {
 public:
  explicit EquivocatingPbftPrimary(pbft::PbftOptions options)
      : pbft::PbftReplica(options), registry_(options.registry) {}

 protected:
  bool MaybeActMaliciouslyOnRequest(const smr::Command& cmd,
                                    const crypto::Signature& sig) override {
    for (const auto& [seen, unused] : pending_) {
      if (seen == cmd) return true;  // client retry of a swallowed request
    }
    pending_.emplace_back(cmd, sig);
    if (pending_.size() < 2) return true;
    for (sim::NodeId backup = 1; backup <= 2; ++backup) {
      for (uint64_t k = 0; k < 2; ++k) {
        // Backup 1 sees [A, B], backup 2 sees [B, A].
        const auto& [fork_cmd, fork_sig] =
            pending_[(k + static_cast<uint64_t>(backup) + 1) % 2];
        auto pp = std::make_shared<PrePrepareMsg>();
        pp->view = 0;
        pp->seq = next_seq_ + k;
        pp->cmds = {fork_cmd};
        pp->client_sigs = {fork_sig};
        pp->digest = BatchDigest(pp->cmds);
        pp->sig = registry_->Sign(
            id(), PrePrepareDigest(pp->view, pp->seq, pp->digest));
        Send(backup, pp);
      }
    }
    next_seq_ += 2;
    pending_.clear();
    return true;
  }

 private:
  const crypto::KeyRegistry* registry_;
  std::vector<std::pair<smr::Command, crypto::Signature>> pending_;
  uint64_t next_seq_ = 1;
};

class PbftOutOfBoundsAdapter : public ProtocolAdapter {
 public:
  explicit PbftOutOfBoundsAdapter(uint64_t seed) : registry_(seed, kN + 4) {}

  const char* name() const override { return "pbft-n=3f"; }

  FaultBounds bounds() const override {
    // The Byzantine primary is the whole fault budget: no injected
    // crashes — the point is that n=3f forks even on a calm network.
    FaultBounds b;
    b.nodes = 0;
    b.delay_spikes = false;
    b.horizon = 1 * sim::kSecond;
    b.quiesce = 2 * sim::kSecond;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    pbft::PbftOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    auto* evil = sim->Spawn<EquivocatingPbftPrimary>(opts);
    sim->MarkByzantine(evil->id());
    for (int i = 1; i < kN; ++i) {
      backups_.push_back(sim->Spawn<pbft::PbftReplica>(opts));
    }
    // Two clients so the primary holds two distinct requests to fork.
    sim->Spawn<pbft::PbftClient>(kN, &registry_, 1, "a");
    sim->Spawn<pbft::PbftClient>(kN, &registry_, 1, "b");
  }

  bool Done() const override {
    for (const pbft::PbftReplica* r : backups_) {
      if (r->executed_commands().size() < 2) return false;
    }
    return true;
  }

  bool ExpectTermination() const override { return false; }

  Observation Observe() const override {
    Observation o;
    // Only the honest backups' logs count; the Byzantine primary's state
    // is unconstrained.
    for (const pbft::PbftReplica* r : backups_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 private:
  static constexpr int kN = 3;  // = 3f for f=1: out of bounds.
  crypto::KeyRegistry registry_;
  std::vector<pbft::PbftReplica*> backups_;
};

}  // namespace

AdapterFactory MakePbftAdapter() {
  return [](uint64_t seed) { return std::make_unique<PbftCheckAdapter>(seed); };
}

AdapterFactory MakePbftOutOfBoundsAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<PbftOutOfBoundsAdapter>(seed);
  };
}

}  // namespace consensus40::check
