file(REMOVE_RECURSE
  "CMakeFiles/bench_paxos_flow.dir/bench/bench_paxos_flow.cc.o"
  "CMakeFiles/bench_paxos_flow.dir/bench/bench_paxos_flow.cc.o.d"
  "bench/bench_paxos_flow"
  "bench/bench_paxos_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paxos_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
