# Empty compiler generated dependencies file for bench_paxos_flow.
# This may be replaced when dependencies are built.
