file(REMOVE_RECURSE
  "CMakeFiles/bench_psl_agreement.dir/bench/bench_psl_agreement.cc.o"
  "CMakeFiles/bench_psl_agreement.dir/bench/bench_psl_agreement.cc.o.d"
  "bench/bench_psl_agreement"
  "bench/bench_psl_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psl_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
