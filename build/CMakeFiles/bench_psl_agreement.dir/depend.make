# Empty dependencies file for bench_psl_agreement.
# This may be replaced when dependencies are built.
