# Empty compiler generated dependencies file for bench_minbft_cheapbft.
# This may be replaced when dependencies are built.
