file(REMOVE_RECURSE
  "CMakeFiles/bench_minbft_cheapbft.dir/bench/bench_minbft_cheapbft.cc.o"
  "CMakeFiles/bench_minbft_cheapbft.dir/bench/bench_minbft_cheapbft.cc.o.d"
  "bench/bench_minbft_cheapbft"
  "bench/bench_minbft_cheapbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minbft_cheapbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
