# Empty compiler generated dependencies file for bench_hotstuff.
# This may be replaced when dependencies are built.
