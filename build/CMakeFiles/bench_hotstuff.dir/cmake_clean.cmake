file(REMOVE_RECURSE
  "CMakeFiles/bench_hotstuff.dir/bench/bench_hotstuff.cc.o"
  "CMakeFiles/bench_hotstuff.dir/bench/bench_hotstuff.cc.o.d"
  "bench/bench_hotstuff"
  "bench/bench_hotstuff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotstuff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
