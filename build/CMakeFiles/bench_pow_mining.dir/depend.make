# Empty dependencies file for bench_pow_mining.
# This may be replaced when dependencies are built.
