file(REMOVE_RECURSE
  "CMakeFiles/bench_pow_mining.dir/bench/bench_pow_mining.cc.o"
  "CMakeFiles/bench_pow_mining.dir/bench/bench_pow_mining.cc.o.d"
  "bench/bench_pow_mining"
  "bench/bench_pow_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pow_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
