file(REMOVE_RECURSE
  "CMakeFiles/bench_oracle.dir/bench/bench_oracle.cc.o"
  "CMakeFiles/bench_oracle.dir/bench/bench_oracle.cc.o.d"
  "bench/bench_oracle"
  "bench/bench_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
