file(REMOVE_RECURSE
  "CMakeFiles/bench_flexible_paxos.dir/bench/bench_flexible_paxos.cc.o"
  "CMakeFiles/bench_flexible_paxos.dir/bench/bench_flexible_paxos.cc.o.d"
  "bench/bench_flexible_paxos"
  "bench/bench_flexible_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flexible_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
