# Empty dependencies file for bench_flexible_paxos.
# This may be replaced when dependencies are built.
