# Empty dependencies file for bench_paxos_livelock.
# This may be replaced when dependencies are built.
