file(REMOVE_RECURSE
  "CMakeFiles/bench_paxos_livelock.dir/bench/bench_paxos_livelock.cc.o"
  "CMakeFiles/bench_paxos_livelock.dir/bench/bench_paxos_livelock.cc.o.d"
  "bench/bench_paxos_livelock"
  "bench/bench_paxos_livelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paxos_livelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
