file(REMOVE_RECURSE
  "CMakeFiles/bench_seemore.dir/bench/bench_seemore.cc.o"
  "CMakeFiles/bench_seemore.dir/bench/bench_seemore.cc.o.d"
  "bench/bench_seemore"
  "bench/bench_seemore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seemore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
