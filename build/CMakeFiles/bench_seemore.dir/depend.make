# Empty dependencies file for bench_seemore.
# This may be replaced when dependencies are built.
