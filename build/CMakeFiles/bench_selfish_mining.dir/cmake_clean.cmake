file(REMOVE_RECURSE
  "CMakeFiles/bench_selfish_mining.dir/bench/bench_selfish_mining.cc.o"
  "CMakeFiles/bench_selfish_mining.dir/bench/bench_selfish_mining.cc.o.d"
  "bench/bench_selfish_mining"
  "bench/bench_selfish_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selfish_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
