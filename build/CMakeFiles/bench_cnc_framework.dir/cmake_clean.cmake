file(REMOVE_RECURSE
  "CMakeFiles/bench_cnc_framework.dir/bench/bench_cnc_framework.cc.o"
  "CMakeFiles/bench_cnc_framework.dir/bench/bench_cnc_framework.cc.o.d"
  "bench/bench_cnc_framework"
  "bench/bench_cnc_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cnc_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
