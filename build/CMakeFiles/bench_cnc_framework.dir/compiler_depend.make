# Empty compiler generated dependencies file for bench_cnc_framework.
# This may be replaced when dependencies are built.
