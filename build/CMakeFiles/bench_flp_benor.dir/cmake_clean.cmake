file(REMOVE_RECURSE
  "CMakeFiles/bench_flp_benor.dir/bench/bench_flp_benor.cc.o"
  "CMakeFiles/bench_flp_benor.dir/bench/bench_flp_benor.cc.o.d"
  "bench/bench_flp_benor"
  "bench/bench_flp_benor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flp_benor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
