# Empty compiler generated dependencies file for bench_flp_benor.
# This may be replaced when dependencies are built.
