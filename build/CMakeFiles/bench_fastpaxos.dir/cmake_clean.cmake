file(REMOVE_RECURSE
  "CMakeFiles/bench_fastpaxos.dir/bench/bench_fastpaxos.cc.o"
  "CMakeFiles/bench_fastpaxos.dir/bench/bench_fastpaxos.cc.o.d"
  "bench/bench_fastpaxos"
  "bench/bench_fastpaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fastpaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
