# Empty compiler generated dependencies file for bench_fastpaxos.
# This may be replaced when dependencies are built.
