file(REMOVE_RECURSE
  "CMakeFiles/bench_tolerance_matrix.dir/bench/bench_tolerance_matrix.cc.o"
  "CMakeFiles/bench_tolerance_matrix.dir/bench/bench_tolerance_matrix.cc.o.d"
  "bench/bench_tolerance_matrix"
  "bench/bench_tolerance_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tolerance_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
