# Empty dependencies file for bench_tolerance_matrix.
# This may be replaced when dependencies are built.
