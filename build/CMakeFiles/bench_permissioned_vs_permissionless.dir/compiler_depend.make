# Empty compiler generated dependencies file for bench_permissioned_vs_permissionless.
# This may be replaced when dependencies are built.
