file(REMOVE_RECURSE
  "CMakeFiles/bench_permissioned_vs_permissionless.dir/bench/bench_permissioned_vs_permissionless.cc.o"
  "CMakeFiles/bench_permissioned_vs_permissionless.dir/bench/bench_permissioned_vs_permissionless.cc.o.d"
  "bench/bench_permissioned_vs_permissionless"
  "bench/bench_permissioned_vs_permissionless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_permissioned_vs_permissionless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
