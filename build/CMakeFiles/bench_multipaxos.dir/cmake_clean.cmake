file(REMOVE_RECURSE
  "CMakeFiles/bench_multipaxos.dir/bench/bench_multipaxos.cc.o"
  "CMakeFiles/bench_multipaxos.dir/bench/bench_multipaxos.cc.o.d"
  "bench/bench_multipaxos"
  "bench/bench_multipaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multipaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
