# Empty dependencies file for bench_multipaxos.
# This may be replaced when dependencies are built.
