# Empty dependencies file for bench_zyzzyva.
# This may be replaced when dependencies are built.
