file(REMOVE_RECURSE
  "CMakeFiles/bench_zyzzyva.dir/bench/bench_zyzzyva.cc.o"
  "CMakeFiles/bench_zyzzyva.dir/bench/bench_zyzzyva.cc.o.d"
  "bench/bench_zyzzyva"
  "bench/bench_zyzzyva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zyzzyva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
