# Empty dependencies file for bench_pos.
# This may be replaced when dependencies are built.
