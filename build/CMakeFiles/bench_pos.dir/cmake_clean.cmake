file(REMOVE_RECURSE
  "CMakeFiles/bench_pos.dir/bench/bench_pos.cc.o"
  "CMakeFiles/bench_pos.dir/bench/bench_pos.cc.o.d"
  "bench/bench_pos"
  "bench/bench_pos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
