# Empty compiler generated dependencies file for bench_pbft.
# This may be replaced when dependencies are built.
