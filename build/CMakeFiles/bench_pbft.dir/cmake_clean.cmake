file(REMOVE_RECURSE
  "CMakeFiles/bench_pbft.dir/bench/bench_pbft.cc.o"
  "CMakeFiles/bench_pbft.dir/bench/bench_pbft.cc.o.d"
  "bench/bench_pbft"
  "bench/bench_pbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
