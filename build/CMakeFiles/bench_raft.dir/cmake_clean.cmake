file(REMOVE_RECURSE
  "CMakeFiles/bench_raft.dir/bench/bench_raft.cc.o"
  "CMakeFiles/bench_raft.dir/bench/bench_raft.cc.o.d"
  "bench/bench_raft"
  "bench/bench_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
