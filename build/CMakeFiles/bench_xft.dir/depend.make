# Empty dependencies file for bench_xft.
# This may be replaced when dependencies are built.
