file(REMOVE_RECURSE
  "CMakeFiles/bench_xft.dir/bench/bench_xft.cc.o"
  "CMakeFiles/bench_xft.dir/bench/bench_xft.cc.o.d"
  "bench/bench_xft"
  "bench/bench_xft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
