file(REMOVE_RECURSE
  "CMakeFiles/bench_quorum_table.dir/bench/bench_quorum_table.cc.o"
  "CMakeFiles/bench_quorum_table.dir/bench/bench_quorum_table.cc.o.d"
  "bench/bench_quorum_table"
  "bench/bench_quorum_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quorum_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
