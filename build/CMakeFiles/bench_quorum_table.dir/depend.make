# Empty dependencies file for bench_quorum_table.
# This may be replaced when dependencies are built.
