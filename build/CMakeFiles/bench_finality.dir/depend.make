# Empty dependencies file for bench_finality.
# This may be replaced when dependencies are built.
