file(REMOVE_RECURSE
  "CMakeFiles/bench_finality.dir/bench/bench_finality.cc.o"
  "CMakeFiles/bench_finality.dir/bench/bench_finality.cc.o.d"
  "bench/bench_finality"
  "bench/bench_finality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
