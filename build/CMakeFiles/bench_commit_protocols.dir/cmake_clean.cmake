file(REMOVE_RECURSE
  "CMakeFiles/bench_commit_protocols.dir/bench/bench_commit_protocols.cc.o"
  "CMakeFiles/bench_commit_protocols.dir/bench/bench_commit_protocols.cc.o.d"
  "bench/bench_commit_protocols"
  "bench/bench_commit_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
