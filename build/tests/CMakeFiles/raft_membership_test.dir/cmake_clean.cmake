file(REMOVE_RECURSE
  "CMakeFiles/raft_membership_test.dir/raft_membership_test.cc.o"
  "CMakeFiles/raft_membership_test.dir/raft_membership_test.cc.o.d"
  "raft_membership_test"
  "raft_membership_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_membership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
