# Empty dependencies file for raft_membership_test.
# This may be replaced when dependencies are built.
