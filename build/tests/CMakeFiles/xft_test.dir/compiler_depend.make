# Empty compiler generated dependencies file for xft_test.
# This may be replaced when dependencies are built.
