file(REMOVE_RECURSE
  "CMakeFiles/xft_test.dir/xft_test.cc.o"
  "CMakeFiles/xft_test.dir/xft_test.cc.o.d"
  "xft_test"
  "xft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
