file(REMOVE_RECURSE
  "CMakeFiles/seemore_test.dir/seemore_test.cc.o"
  "CMakeFiles/seemore_test.dir/seemore_test.cc.o.d"
  "seemore_test"
  "seemore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seemore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
