# Empty compiler generated dependencies file for seemore_test.
# This may be replaced when dependencies are built.
