file(REMOVE_RECURSE
  "CMakeFiles/blockchain_test.dir/blockchain_test.cc.o"
  "CMakeFiles/blockchain_test.dir/blockchain_test.cc.o.d"
  "blockchain_test"
  "blockchain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
