file(REMOVE_RECURSE
  "CMakeFiles/zyzzyva_test.dir/zyzzyva_test.cc.o"
  "CMakeFiles/zyzzyva_test.dir/zyzzyva_test.cc.o.d"
  "zyzzyva_test"
  "zyzzyva_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zyzzyva_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
