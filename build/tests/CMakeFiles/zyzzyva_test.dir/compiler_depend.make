# Empty compiler generated dependencies file for zyzzyva_test.
# This may be replaced when dependencies are built.
