# Empty compiler generated dependencies file for minbft_test.
# This may be replaced when dependencies are built.
