file(REMOVE_RECURSE
  "CMakeFiles/minbft_test.dir/minbft_test.cc.o"
  "CMakeFiles/minbft_test.dir/minbft_test.cc.o.d"
  "minbft_test"
  "minbft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minbft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
