# Empty dependencies file for floodset_test.
# This may be replaced when dependencies are built.
