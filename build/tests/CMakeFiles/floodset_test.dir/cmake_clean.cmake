file(REMOVE_RECURSE
  "CMakeFiles/floodset_test.dir/floodset_test.cc.o"
  "CMakeFiles/floodset_test.dir/floodset_test.cc.o.d"
  "floodset_test"
  "floodset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floodset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
