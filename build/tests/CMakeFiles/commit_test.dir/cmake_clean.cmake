file(REMOVE_RECURSE
  "CMakeFiles/commit_test.dir/commit_test.cc.o"
  "CMakeFiles/commit_test.dir/commit_test.cc.o.d"
  "commit_test"
  "commit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
