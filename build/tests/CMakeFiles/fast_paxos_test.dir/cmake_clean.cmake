file(REMOVE_RECURSE
  "CMakeFiles/fast_paxos_test.dir/fast_paxos_test.cc.o"
  "CMakeFiles/fast_paxos_test.dir/fast_paxos_test.cc.o.d"
  "fast_paxos_test"
  "fast_paxos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_paxos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
