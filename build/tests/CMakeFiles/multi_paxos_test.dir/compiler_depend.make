# Empty compiler generated dependencies file for multi_paxos_test.
# This may be replaced when dependencies are built.
