file(REMOVE_RECURSE
  "CMakeFiles/multi_paxos_test.dir/multi_paxos_test.cc.o"
  "CMakeFiles/multi_paxos_test.dir/multi_paxos_test.cc.o.d"
  "multi_paxos_test"
  "multi_paxos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_paxos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
