# Empty compiler generated dependencies file for benor_test.
# This may be replaced when dependencies are built.
