file(REMOVE_RECURSE
  "CMakeFiles/benor_test.dir/benor_test.cc.o"
  "CMakeFiles/benor_test.dir/benor_test.cc.o.d"
  "benor_test"
  "benor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
