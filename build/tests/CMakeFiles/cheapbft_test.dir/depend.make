# Empty dependencies file for cheapbft_test.
# This may be replaced when dependencies are built.
