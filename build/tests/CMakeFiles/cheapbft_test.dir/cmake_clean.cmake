file(REMOVE_RECURSE
  "CMakeFiles/cheapbft_test.dir/cheapbft_test.cc.o"
  "CMakeFiles/cheapbft_test.dir/cheapbft_test.cc.o.d"
  "cheapbft_test"
  "cheapbft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheapbft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
