file(REMOVE_RECURSE
  "CMakeFiles/spv_test.dir/spv_test.cc.o"
  "CMakeFiles/spv_test.dir/spv_test.cc.o.d"
  "spv_test"
  "spv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
