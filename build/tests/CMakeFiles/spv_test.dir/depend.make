# Empty dependencies file for spv_test.
# This may be replaced when dependencies are built.
