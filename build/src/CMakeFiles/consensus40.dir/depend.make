# Empty dependencies file for consensus40.
# This may be replaced when dependencies are built.
