file(REMOVE_RECURSE
  "libconsensus40.a"
)
