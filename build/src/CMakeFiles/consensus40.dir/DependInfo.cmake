
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agreement/approximate.cc" "src/CMakeFiles/consensus40.dir/agreement/approximate.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/agreement/approximate.cc.o.d"
  "/root/repo/src/agreement/floodset.cc" "src/CMakeFiles/consensus40.dir/agreement/floodset.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/agreement/floodset.cc.o.d"
  "/root/repo/src/agreement/interactive_consistency.cc" "src/CMakeFiles/consensus40.dir/agreement/interactive_consistency.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/agreement/interactive_consistency.cc.o.d"
  "/root/repo/src/blockchain/block.cc" "src/CMakeFiles/consensus40.dir/blockchain/block.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/blockchain/block.cc.o.d"
  "/root/repo/src/blockchain/chain.cc" "src/CMakeFiles/consensus40.dir/blockchain/chain.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/blockchain/chain.cc.o.d"
  "/root/repo/src/blockchain/mempool.cc" "src/CMakeFiles/consensus40.dir/blockchain/mempool.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/blockchain/mempool.cc.o.d"
  "/root/repo/src/blockchain/miner.cc" "src/CMakeFiles/consensus40.dir/blockchain/miner.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/blockchain/miner.cc.o.d"
  "/root/repo/src/blockchain/pos.cc" "src/CMakeFiles/consensus40.dir/blockchain/pos.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/blockchain/pos.cc.o.d"
  "/root/repo/src/blockchain/spv.cc" "src/CMakeFiles/consensus40.dir/blockchain/spv.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/blockchain/spv.cc.o.d"
  "/root/repo/src/cheapbft/cheapbft.cc" "src/CMakeFiles/consensus40.dir/cheapbft/cheapbft.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/cheapbft/cheapbft.cc.o.d"
  "/root/repo/src/commit/three_phase_commit.cc" "src/CMakeFiles/consensus40.dir/commit/three_phase_commit.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/commit/three_phase_commit.cc.o.d"
  "/root/repo/src/commit/two_phase_commit.cc" "src/CMakeFiles/consensus40.dir/commit/two_phase_commit.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/commit/two_phase_commit.cc.o.d"
  "/root/repo/src/commit/types.cc" "src/CMakeFiles/consensus40.dir/commit/types.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/commit/types.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/consensus40.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/consensus40.dir/common/status.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/common/status.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/consensus40.dir/common/table.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/common/table.cc.o.d"
  "/root/repo/src/core/cnc.cc" "src/CMakeFiles/consensus40.dir/core/cnc.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/core/cnc.cc.o.d"
  "/root/repo/src/core/quorum.cc" "src/CMakeFiles/consensus40.dir/core/quorum.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/core/quorum.cc.o.d"
  "/root/repo/src/core/reductions.cc" "src/CMakeFiles/consensus40.dir/core/reductions.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/core/reductions.cc.o.d"
  "/root/repo/src/core/traits.cc" "src/CMakeFiles/consensus40.dir/core/traits.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/core/traits.cc.o.d"
  "/root/repo/src/crypto/merkle.cc" "src/CMakeFiles/consensus40.dir/crypto/merkle.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/crypto/merkle.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/consensus40.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/signatures.cc" "src/CMakeFiles/consensus40.dir/crypto/signatures.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/crypto/signatures.cc.o.d"
  "/root/repo/src/hotstuff/hotstuff.cc" "src/CMakeFiles/consensus40.dir/hotstuff/hotstuff.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/hotstuff/hotstuff.cc.o.d"
  "/root/repo/src/minbft/minbft.cc" "src/CMakeFiles/consensus40.dir/minbft/minbft.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/minbft/minbft.cc.o.d"
  "/root/repo/src/oracle/ct_consensus.cc" "src/CMakeFiles/consensus40.dir/oracle/ct_consensus.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/oracle/ct_consensus.cc.o.d"
  "/root/repo/src/paxos/fast_paxos.cc" "src/CMakeFiles/consensus40.dir/paxos/fast_paxos.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/paxos/fast_paxos.cc.o.d"
  "/root/repo/src/paxos/multi_paxos.cc" "src/CMakeFiles/consensus40.dir/paxos/multi_paxos.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/paxos/multi_paxos.cc.o.d"
  "/root/repo/src/paxos/paxos.cc" "src/CMakeFiles/consensus40.dir/paxos/paxos.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/paxos/paxos.cc.o.d"
  "/root/repo/src/pbft/pbft.cc" "src/CMakeFiles/consensus40.dir/pbft/pbft.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/pbft/pbft.cc.o.d"
  "/root/repo/src/raft/raft.cc" "src/CMakeFiles/consensus40.dir/raft/raft.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/raft/raft.cc.o.d"
  "/root/repo/src/randomized/benor.cc" "src/CMakeFiles/consensus40.dir/randomized/benor.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/randomized/benor.cc.o.d"
  "/root/repo/src/seemore/seemore.cc" "src/CMakeFiles/consensus40.dir/seemore/seemore.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/seemore/seemore.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/consensus40.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/sim/simulation.cc.o.d"
  "/root/repo/src/smr/command.cc" "src/CMakeFiles/consensus40.dir/smr/command.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/smr/command.cc.o.d"
  "/root/repo/src/smr/state_machine.cc" "src/CMakeFiles/consensus40.dir/smr/state_machine.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/smr/state_machine.cc.o.d"
  "/root/repo/src/xft/xft.cc" "src/CMakeFiles/consensus40.dir/xft/xft.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/xft/xft.cc.o.d"
  "/root/repo/src/zyzzyva/zyzzyva.cc" "src/CMakeFiles/consensus40.dir/zyzzyva/zyzzyva.cc.o" "gcc" "src/CMakeFiles/consensus40.dir/zyzzyva/zyzzyva.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
