# Empty compiler generated dependencies file for crypto_coin.
# This may be replaced when dependencies are built.
