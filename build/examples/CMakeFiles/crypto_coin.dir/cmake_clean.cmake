file(REMOVE_RECURSE
  "CMakeFiles/crypto_coin.dir/crypto_coin.cc.o"
  "CMakeFiles/crypto_coin.dir/crypto_coin.cc.o.d"
  "crypto_coin"
  "crypto_coin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_coin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
