file(REMOVE_RECURSE
  "CMakeFiles/mini_spanner.dir/mini_spanner.cc.o"
  "CMakeFiles/mini_spanner.dir/mini_spanner.cc.o.d"
  "mini_spanner"
  "mini_spanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_spanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
