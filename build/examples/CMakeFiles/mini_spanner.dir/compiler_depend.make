# Empty compiler generated dependencies file for mini_spanner.
# This may be replaced when dependencies are built.
