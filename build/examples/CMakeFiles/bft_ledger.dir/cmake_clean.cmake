file(REMOVE_RECURSE
  "CMakeFiles/bft_ledger.dir/bft_ledger.cc.o"
  "CMakeFiles/bft_ledger.dir/bft_ledger.cc.o.d"
  "bft_ledger"
  "bft_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
