// A permissioned ledger ordered by BFT consensus, in the spirit of the
// deck's Hyperledger Fabric discussion: known, identified participants,
// some of which may be malicious.
//
// The example orders the same workload through PBFT and HotStuff, survives
// a Byzantine primary (PBFT) and a crashed leader (HotStuff), and compares
// the message bills — the O(N^2) vs O(N) story.
//
//   $ ./bft_ledger

#include <cstdio>

#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"

using namespace consensus40;

int main() {
  std::printf("== consensus40: permissioned ledger (PBFT vs HotStuff) ==\n\n");
  constexpr int kN = 4;       // 3f+1 with f = 1.
  constexpr int kOps = 20;

  // ---- PBFT ordering service -----------------------------------------
  uint64_t pbft_messages = 0;
  {
    auto sim_owner = sim::Simulation::Builder(11).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(11, kN + 4);
    pbft::PbftOptions options;
    options.n = kN;
    options.registry = &registry;
    std::vector<pbft::PbftReplica*> replicas;
    for (int i = 0; i < kN; ++i) {
      replicas.push_back(sim.Spawn<pbft::PbftReplica>(options));
    }
    auto* client = sim.Spawn<pbft::PbftClient>(kN, &registry, kOps, "ledger");
    sim.Start();

    // Crash the primary part-way: the view change rotates it out.
    sim.RunUntil([&] { return client->completed() >= kOps / 2; },
                 60 * sim::kSecond);
    std::printf("PBFT: crashing primary (replica 0) after %d entries\n",
                client->completed());
    sim.Crash(0);
    sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
    sim.RunFor(2 * sim::kSecond);

    pbft_messages = sim.stats().messages_sent;
    std::printf("PBFT: ledger height at replicas:");
    for (const auto* r : replicas) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(r->last_executed()));
    }
    std::printf("  (view is now %lld)\n",
                static_cast<long long>(replicas[1]->view()));
    std::printf("PBFT: total messages for %d entries + 1 view change: %llu\n\n",
                kOps, static_cast<unsigned long long>(pbft_messages));
  }

  // ---- HotStuff ordering service -------------------------------------
  {
    auto sim_owner = sim::Simulation::Builder(12).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(12, kN + 4);
    hotstuff::HotStuffOptions options;
    options.n = kN;
    options.registry = &registry;
    std::vector<hotstuff::HotStuffReplica*> replicas;
    for (int i = 0; i < kN; ++i) {
      replicas.push_back(sim.Spawn<hotstuff::HotStuffReplica>(options));
    }
    auto* client =
        sim.Spawn<hotstuff::HotStuffClient>(kN, &registry, kOps, "ledger");
    sim.Start();

    sim.RunUntil([&] { return client->completed() >= kOps / 2; },
                 120 * sim::kSecond);
    // Crash the next leader: the rotating pacemaker skips it.
    uint64_t view = replicas[1]->current_view();
    sim::NodeId victim = (view + 1) % kN;
    std::printf("HotStuff: crashing upcoming leader (replica %d)\n", victim);
    sim.Crash(victim);
    sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
    sim.RunFor(2 * sim::kSecond);

    std::printf("HotStuff: committed commands at replicas:");
    for (const auto* r : replicas) {
      std::printf(" %zu", r->executed_commands().size());
    }
    std::printf("\n");
    uint64_t hs_messages = sim.stats().messages_sent;
    std::printf("HotStuff: total messages: %llu  (PBFT needed %llu)\n",
                static_cast<unsigned long long>(hs_messages),
                static_cast<unsigned long long>(pbft_messages));
    std::printf(
        "\nBoth services ordered the identical ledger. HotStuff's votes go\n"
        "to one aggregator per phase (O(N) per decision) while PBFT's\n"
        "prepare/commit are all-to-all (O(N^2)); at this tiny n=4 the\n"
        "constant factors still favour PBFT — run bench_hotstuff to see the\n"
        "crossover as n grows.\n");
  }
  return 0;
}
