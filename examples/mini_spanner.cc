// mini_spanner: the deck's Google Spanner architecture slide, miniature —
// data partitioned across shards, each shard replicated by its own
// consensus group, and cross-shard transactions committed with 2PC
// running ON TOP of the replication layer ("Transactions: 2PL+2PC" over
// "Abstract Replication: PAXOS").
//
// Everything here is built from the protocol-agnostic pieces: the shard
// layer (src/shard/) obtains its replication groups from the
// consensus::ReplicaGroup registry by NAME, so changing `protocol` below
// to any registered protocol re-runs the same demo over a different
// consensus algorithm with no other change.
//
// The demo moves 40 credits from an account on one shard to an account on
// another, crashes a replica mid-protocol, and shows the transfer
// committing atomically anyway. Then it does what the original Spanner
// slide cannot show with plain 2PC: it kills the COORDINATOR mid-
// transaction — the classic blocking window — and the prepared shards
// still terminate the transaction on their own, because the commit
// decision is a write-once record in a replicated decision group (Gray &
// Lamport's "Consensus on Transaction Commit").
//
//   $ ./mini_spanner

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "consensus/replica_group.h"
#include "shard/shard.h"
#include "sim/simulation.h"
#include "smr/state_machine.h"

using namespace consensus40;

namespace {

/// The application front-end: begins transactions against the shard
/// layer's coordinator and re-submits on timeout (which is how a real
/// client rides out a coordinator crash).
class DemoClient : public sim::Process {
 public:
  explicit DemoClient(sim::NodeId coordinator) : coordinator_(coordinator) {}

  void Begin(uint64_t tx_id, std::vector<shard::TxOp> ops) {
    pending_[tx_id] = std::move(ops);
    Submit(tx_id);
  }

  bool Resolved(uint64_t tx_id) const { return outcomes_.count(tx_id) > 0; }
  bool Committed(uint64_t tx_id) const {
    auto it = outcomes_.find(tx_id);
    return it != outcomes_.end() && it->second;
  }

  void OnMessage(sim::NodeId, const sim::Message& msg) override {
    const auto* m = dynamic_cast<const shard::TxOutcomeMsg*>(&msg);
    if (m == nullptr || pending_.count(m->tx_id) == 0) return;
    CancelTimer(timers_[m->tx_id]);
    outcomes_[m->tx_id] = m->committed;
    pending_.erase(m->tx_id);
  }

 private:
  void Submit(uint64_t tx_id) {
    Send(coordinator_,
         std::make_shared<shard::BeginTxMsg>(tx_id, pending_[tx_id]));
    timers_[tx_id] = SetTimer(2 * sim::kSecond, [this, tx_id] {
      if (pending_.count(tx_id)) Submit(tx_id);
    });
  }

  sim::NodeId coordinator_;
  std::map<uint64_t, std::vector<shard::TxOp>> pending_;
  std::map<uint64_t, uint64_t> timers_;
  std::map<uint64_t, bool> outcomes_;
};

/// Replays the longest committed prefix across a group's replicas — the
/// group's authoritative key-value state.
smr::KvStore Replay(const consensus::ReplicaGroup* group) {
  std::vector<smr::Command> best;
  for (size_t i = 0; i < group->members().size(); ++i) {
    auto prefix = group->CommittedPrefix(static_cast<int>(i));
    if (prefix.size() > best.size()) best = std::move(prefix);
  }
  smr::KvStore kv;
  smr::DedupingExecutor dedup;
  for (const smr::Command& cmd : best) dedup.Apply(&kv, cmd);
  return kv;
}

}  // namespace

int main() {
  std::printf("== consensus40: mini-Spanner (2PC over replicated groups) ==\n\n");

  shard::ShardOptions options;  // 2 shards x 3 replicas + 3-replica
  options.protocol = "multi_paxos";  // decision group; registry key.

  shard::ShardedStateMachine ssm(options);
  DemoClient* client = nullptr;
  auto sim = sim::Simulation::Builder(2026)
                 .Setup([&](sim::Simulation& s) { ssm.Build(&s); })
                 .Setup([&](sim::Simulation& s) {
                   client = s.Spawn<DemoClient>(ssm.coordinator_id());
                 })
                 .Build();
  std::printf("shards replicated via the \"%s\" registry protocol\n",
              options.protocol.c_str());
  sim->RunFor(500 * sim::kMillisecond);  // Let every group elect a leader.

  // Seed balances; alice and bob hash to different shards.
  client->Begin(1, {{"alice", "100"}});
  client->Begin(2, {{"bob", "10"}});
  sim->RunUntil(
      [&] { return client->Resolved(1) && client->Resolved(2); },
      sim->now() + 30 * sim::kSecond);
  std::printf("seeded:    alice=100 (shard %d), bob=10 (shard %d)\n",
              ssm.ShardOf("alice"), ssm.ShardOf("bob"));

  // The cross-shard transfer, with a replica of alice's shard crashing
  // mid-flight: the replication layer hides the machine failure.
  client->Begin(3, {{"alice", "60"}, {"bob", "50"}});
  sim::NodeId victim = ssm.ShardMembers(ssm.ShardOf("alice"))[1];
  sim->ScheduleAfter(2 * sim::kMillisecond, [&] {
    std::printf("crashing replica %d of alice's shard mid-transaction...\n",
                victim);
    sim->Crash(victim);
  });
  bool committed = sim->RunUntil([&] { return client->Resolved(3); },
                                 sim->now() + 120 * sim::kSecond) &&
                   client->Committed(3);
  std::printf("transfer:  40 credits alice -> bob  [tx3 %s]\n\n",
              committed ? "committed" : "FAILED");

  // Now the failure plain 2PC cannot survive: kill the COORDINATOR in
  // the prepare window. The prepared shards time out, propose ABORT to
  // the replicated decision group themselves, and the transaction
  // terminates — no blocking, no inconsistency.
  std::printf("killing the 2PC coordinator mid-transaction...\n");
  client->Begin(4, {{"alice", "0"}, {"bob", "110"}});
  sim->ScheduleAfter(4 * sim::kMillisecond,
                     [&] { sim->Crash(ssm.coordinator_id()); });
  sim->ScheduleAfter(3 * sim::kSecond,
                     [&] { sim->Restart(ssm.coordinator_id()); });
  sim->RunUntil([&] { return client->Resolved(4); },
                sim->now() + 120 * sim::kSecond);
  smr::KvStore decisions = Replay(ssm.decision_group());
  auto d4 = decisions.Get(shard::DecisionKey(4));
  std::printf("tx4 %s; replicated decision record: %s\n\n",
              !client->Resolved(4)      ? "BLOCKED"
              : client->Committed(4)    ? "committed"
                                        : "aborted",
              d4 ? d4->c_str() : "(none)");

  sim->RunFor(3 * sim::kSecond);  // Drain commit broadcasts.
  auto lookup = [&](const std::string& key) {
    auto v = Replay(ssm.shard_group(ssm.ShardOf(key))).Get(key);
    return v ? *v : std::string("-");
  };
  std::printf("final replicated state: alice=%s bob=%s\n",
              lookup("alice").c_str(), lookup("bob").c_str());
  std::printf(
      "\nThe transfer survived a replica crash because 2PC's records are\n"
      "entries in each shard's replicated log; the coordinator crash did\n"
      "not block the system because the commit decision itself lives in a\n"
      "replicated group any prepared participant can consult — the\n"
      "layering in the deck's Spanner figure, taken one step further.\n");
  bool tx4_ok = client->Resolved(4) && ssm.Violations().empty();
  return committed && tx4_ok ? 0 : 1;
}
