// mini_spanner: the deck's Google Spanner architecture slide, miniature —
// data partitioned across shards, each shard replicated by its own
// Multi-Paxos group, and cross-shard transactions committed with 2PC
// running ON TOP of the replication layer ("Transactions: 2PL+2PC" over
// "Abstract Replication: PAXOS").
//
// The demo moves 40 credits from an account on shard A to an account on
// shard B, crashes a shard-A replica mid-protocol, and shows the transfer
// committing atomically anyway: 2PC handles distribution, Paxos hides the
// machine failure.
//
//   $ ./mini_spanner

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "paxos/multi_paxos.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

// ---------------------------------------------------------------------------
// Messages between the transaction client and the shard transaction
// managers (the 2PC layer).
// ---------------------------------------------------------------------------

struct TxPrepareMsg : sim::Message {
  const char* TypeName() const override { return "tx-prepare"; }
  uint64_t tx_id = 0;
  std::string op;  ///< The shard-local write if the transaction commits.
};
struct TxVoteMsg : sim::Message {
  const char* TypeName() const override { return "tx-vote"; }
  uint64_t tx_id = 0;
  bool yes = false;
};
struct TxDecisionMsg : sim::Message {
  const char* TypeName() const override { return "tx-decision"; }
  uint64_t tx_id = 0;
  bool commit = false;
};
struct TxDoneMsg : sim::Message {
  const char* TypeName() const override { return "tx-done"; }
  uint64_t tx_id = 0;
};

// ---------------------------------------------------------------------------
// Shard transaction manager: a 2PC participant whose prepare and commit
// records are themselves REPLICATED through the shard's Paxos log, so a
// replica crash cannot lose them (this is what the Spanner slide means by
// layering 2PC over Paxos).
// ---------------------------------------------------------------------------

class ShardTxManager : public sim::Process {
 public:
  explicit ShardTxManager(std::vector<sim::NodeId> shard_members)
      : members_(std::move(shard_members)) {}

  void OnMessage(sim::NodeId from, const sim::Message& msg) override {
    if (const auto* m = dynamic_cast<const TxPrepareMsg*>(&msg)) {
      coordinator_ = from;
      Pending& tx = pending_[m->tx_id];
      tx.op = m->op;
      // Replicate the PREPARE record through the shard's consensus log
      // before voting: a crashed TM / replica can then never forget it.
      Submit(m->tx_id, "PUT tx" + std::to_string(m->tx_id) + " prepared",
             /*stage=*/1);
      return;
    }
    if (const auto* m = dynamic_cast<const TxDecisionMsg*>(&msg)) {
      Pending& tx = pending_[m->tx_id];
      if (m->commit) {
        // Apply the actual write + the commit record in one command.
        Submit(m->tx_id, tx.op, /*stage=*/2);
      } else {
        Submit(m->tx_id, "PUT tx" + std::to_string(m->tx_id) + " aborted",
               /*stage=*/3);
      }
      return;
    }
    if (const auto* m =
            dynamic_cast<const paxos::MultiPaxosReplica::ReplyMsg*>(&msg)) {
      auto it = inflight_.find(m->client_seq);
      if (it == inflight_.end() || m->result == "\x01REDIRECT") {
        // Redirect or stale: the retry timer handles it.
        return;
      }
      auto [tx_id, stage] = it->second;
      inflight_.erase(it);
      CancelTimer(pending_[tx_id].retry_timer);
      if (stage == 1) {
        // Prepare record durable in the shard log: vote yes.
        auto vote = std::make_shared<TxVoteMsg>();
        vote->tx_id = tx_id;
        vote->yes = true;
        Send(coordinator_, vote);
      } else if (stage == 2) {
        // The write is applied; log the commit record, then report done.
        Submit(tx_id, "PUT tx" + std::to_string(tx_id) + " committed",
               /*stage=*/4);
        auto done = std::make_shared<TxDoneMsg>();
        done->tx_id = tx_id;
        Send(coordinator_, done);
      } else {
        // Stages 3 (abort record) and 4 (commit record): bookkeeping only.
        if (stage == 3) {
          auto done = std::make_shared<TxDoneMsg>();
          done->tx_id = tx_id;
          Send(coordinator_, done);
        }
      }
      return;
    }
  }

 private:
  struct Pending {
    std::string op;
    uint64_t retry_timer = 0;
  };

  void Submit(uint64_t tx_id, const std::string& op, int stage) {
    uint64_t seq = ++next_seq_;
    inflight_[seq] = {tx_id, stage};
    smr::Command cmd{id(), seq, op};
    auto send = [this, cmd] {
      Send(members_[leader_hint_ % members_.size()],
           std::make_shared<paxos::MultiPaxosReplica::RequestMsg>(cmd));
    };
    send();
    // Retry against rotating shard members until the reply arrives.
    Pending& tx = pending_[tx_id];
    CancelTimer(tx.retry_timer);
    tx.retry_timer = RetryLoop(seq, cmd);
  }

  uint64_t RetryLoop(uint64_t seq, const smr::Command& cmd) {
    return SetTimer(300 * sim::kMillisecond, [this, seq, cmd] {
      if (inflight_.count(seq) == 0) return;
      ++leader_hint_;
      Send(members_[leader_hint_ % members_.size()],
           std::make_shared<paxos::MultiPaxosReplica::RequestMsg>(cmd));
      auto it = inflight_.find(seq);
      if (it != inflight_.end()) {
        pending_[it->second.first].retry_timer = RetryLoop(seq, cmd);
      }
    });
  }

  std::vector<sim::NodeId> members_;
  sim::NodeId coordinator_ = sim::kInvalidNode;
  std::map<uint64_t, Pending> pending_;             // tx_id -> state.
  std::map<uint64_t, std::pair<uint64_t, int>> inflight_;  // seq->(tx,stage).
  uint64_t next_seq_ = 0;
  size_t leader_hint_ = 0;
};

// ---------------------------------------------------------------------------
// The cross-shard transaction coordinator (a Spanner client/front-end).
// ---------------------------------------------------------------------------

class TxCoordinator : public sim::Process {
 public:
  TxCoordinator(sim::NodeId tm_a, sim::NodeId tm_b) : tm_a_(tm_a), tm_b_(tm_b) {}

  void Begin(uint64_t tx_id, const std::string& op_a,
             const std::string& op_b) {
    auto pa = std::make_shared<TxPrepareMsg>();
    pa->tx_id = tx_id;
    pa->op = op_a;
    Send(tm_a_, pa);
    auto pb = std::make_shared<TxPrepareMsg>();
    pb->tx_id = tx_id;
    pb->op = op_b;
    Send(tm_b_, pb);
  }

  bool Committed(uint64_t tx_id) const {
    auto it = done_.find(tx_id);
    return it != done_.end() && it->second >= 2;
  }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override {
    if (const auto* m = dynamic_cast<const TxVoteMsg*>(&msg)) {
      if (!m->yes) return;  // (Abort path not exercised in this demo.)
      if (++votes_[m->tx_id] == 2) {
        auto decision = std::make_shared<TxDecisionMsg>();
        decision->tx_id = m->tx_id;
        decision->commit = true;
        Send(tm_a_, decision);
        Send(tm_b_, decision);
      }
      return;
    }
    if (const auto* m = dynamic_cast<const TxDoneMsg*>(&msg)) {
      ++done_[m->tx_id];
      return;
    }
    (void)from;
  }

 private:
  sim::NodeId tm_a_, tm_b_;
  std::map<uint64_t, int> votes_;
  std::map<uint64_t, int> done_;
};

}  // namespace

int main() {
  std::printf("== consensus40: mini-Spanner (2PC over Paxos groups) ==\n\n");
  sim::Simulation sim(2026);

  // Shard A: replicas 0-2 hold alice; shard B: replicas 3-5 hold bob.
  std::vector<sim::NodeId> shard_a = {0, 1, 2};
  std::vector<sim::NodeId> shard_b = {3, 4, 5};
  std::vector<paxos::MultiPaxosReplica*> replicas;
  for (int shard = 0; shard < 2; ++shard) {
    paxos::MultiPaxosOptions opts;
    opts.members = shard == 0 ? shard_a : shard_b;
    for (int i = 0; i < 3; ++i) {
      replicas.push_back(sim.Spawn<paxos::MultiPaxosReplica>(opts));
    }
  }
  auto* tm_a = sim.Spawn<ShardTxManager>(shard_a);
  auto* tm_b = sim.Spawn<ShardTxManager>(shard_b);
  auto* coordinator = sim.Spawn<TxCoordinator>(tm_a->id(), tm_b->id());
  sim.Start();

  // Seed balances through ordinary single-shard transactions.
  coordinator->Begin(1, "PUT alice 100", "PUT bob 10");
  sim.RunUntil([&] { return coordinator->Committed(1); }, 30 * sim::kSecond);
  std::printf("seeded:    alice=100 (shard A), bob=10 (shard B)  [tx1 %s]\n",
              coordinator->Committed(1) ? "committed" : "PENDING");

  // The cross-shard transfer, with a shard-A replica crashing mid-flight.
  coordinator->Begin(2, "PUT alice 60", "PUT bob 50");
  sim.ScheduleAfter(2 * sim::kMillisecond, [&] {
    std::printf("crashing shard-A replica 1 mid-transaction...\n");
    sim.Crash(1);
  });
  bool committed =
      sim.RunUntil([&] { return coordinator->Committed(2); },
                   120 * sim::kSecond);
  std::printf("transfer:  40 credits alice -> bob  [tx2 %s]\n\n",
              committed ? "committed" : "FAILED");

  sim.RunFor(3 * sim::kSecond);  // Drain commit broadcasts.
  std::printf("shard state after the transfer (surviving replicas):\n");
  for (auto* r : replicas) {
    if (sim.IsCrashed(r->id())) continue;
    auto alice = r->kv().Get("alice");
    auto bob = r->kv().Get("bob");
    auto tx2 = r->kv().Get("tx2");
    std::printf("  replica %d: alice=%s bob=%s tx2=%s\n", r->id(),
                alice ? alice->c_str() : "-", bob ? bob->c_str() : "-",
                tx2 ? tx2->c_str() : "-");
  }
  std::printf(
      "\nBoth writes landed atomically: the 2PC prepare/commit records are\n"
      "entries in each shard's replicated Paxos log, so the crash of a\n"
      "shard-A replica was invisible to the transaction — exactly the\n"
      "layering in the deck's Spanner figure (transactions above, abstract\n"
      "Paxos replication below).\n");
  return committed ? 0 : 1;
}
