// A miniature permissionless cryptocurrency: miners race real SHA-256
// proof-of-work at low difficulty, gossip blocks, fork, and reconverge on
// the longest chain — the deck's Bitcoin walk-through end to end.
//
//   $ ./crypto_coin

#include <cstdio>

#include "blockchain/block.h"
#include "blockchain/chain.h"
#include "blockchain/miner.h"
#include "blockchain/pos.h"
#include "common/rng.h"
#include "sim/simulation.h"

using namespace consensus40;
using namespace consensus40::blockchain;

int main() {
  std::printf("== consensus40: proof-of-work coin ==\n\n");

  // ---- Part 1: mine a few real blocks with actual SHA-256d ----------
  {
    std::printf("-- real SHA-256d micro-mining (difficulty: 16 zero bits) --\n");
    ChainOptions opts;
    opts.verify_pow = true;
    opts.initial_target = Target::FromLeadingZeroBits(16);
    opts.block_interval_secs = 600;
    opts.retarget_interval = 2016;
    BlockTree tree(opts);

    crypto::Digest tip{};
    Rng rng(7);
    for (int height = 1; height <= 3; ++height) {
      Block block;
      block.header.prev_hash = tip;
      block.header.timestamp = height * 600;
      block.header.target = tree.NextTarget(tip);
      block.miner = 0;
      block.reward = tree.RewardAt(height);
      block.txs.push_back(
          {"pay " + std::to_string(height) + " coins to carol",
           static_cast<int64_t>(height), 1});
      block.header.merkle_root = block.ComputeMerkleRoot();
      auto nonce = MineNonce(&block.header, 1ull << 32);
      if (!nonce) {
        std::printf("mining failed!\n");
        return 1;
      }
      Status s = tree.AddBlock(block);
      std::printf("height %d: nonce=%-8llu hash=%s  %s\n", height,
                  static_cast<unsigned long long>(*nonce),
                  crypto::DigestToHex(block.Hash()).substr(0, 16).c_str(),
                  s.ToString().c_str());
      tip = block.Hash();
    }
    std::printf("chain work: %.1f, best height %llu\n\n", tree.BestWork(),
                static_cast<unsigned long long>(tree.BestHeight()));
  }

  // ---- Part 2: a mining network with forks and reconvergence --------
  {
    std::printf("-- 5 miners, 1 hour of simulated mining, slow gossip --\n");
    sim::NetworkOptions net;
    net.min_delay = 2 * sim::kSecond;  // Slow propagation => forks.
    net.max_delay = 8 * sim::kSecond;
    auto sim_owner =
        sim::Simulation::Builder(99).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;

    MinerNetworkParams params;
    params.chain.block_interval_secs = 60;
    params.chain.retarget_interval = 30;
    params.chain.initial_reward = 50;
    params.chain.halving_interval = 40;
    std::vector<double> powers = {5, 2, 1, 1, 1};
    params.initial_hash_total = 10;
    std::vector<Miner*> miners;
    for (double p : powers) {
      miners.push_back(sim.Spawn<Miner>(&params, (int)powers.size(), p));
    }
    sim.Start();
    sim.RunFor(3600 * sim::kSecond);

    const BlockTree& tree = miners[0]->tree();
    std::printf("best height: %llu, stale (forked-off) blocks: %d, "
                "reorgs seen: %d\n",
                static_cast<unsigned long long>(tree.BestHeight()),
                tree.StaleBlocks(), tree.reorgs());
    std::printf("reward distribution (hash share -> block share):\n");
    auto rewards = tree.RewardsByMiner();
    int64_t total = 0;
    for (const auto& [miner, coins] : rewards) total += coins;
    for (size_t i = 0; i < powers.size(); ++i) {
      int64_t coins = rewards.count((int)i) ? rewards[(int)i] : 0;
      std::printf("  miner %zu: %4.0f%% of hash power -> %4.1f%% of coins "
                  "(%lld)\n",
                  i, 100 * powers[i] / 10,
                  total > 0 ? 100.0 * coins / total : 0.0,
                  static_cast<long long>(coins));
    }
    std::printf("(halving: rewards dropped from 50 to %lld after block 40)\n\n",
                static_cast<long long>(tree.RewardAt(tree.BestHeight())));
  }

  // ---- Part 3: proof of stake ----------------------------------------
  {
    std::printf("-- proof of stake: 1000 rounds --\n");
    std::vector<StakeAccount> accounts = {{600, 30}, {300, 30}, {100, 30}};
    PosSimulator randomized(accounts, PosSimulator::Mode::kRandomized,
                            CoinAgeOptions{}, 42);
    PosSimulator coinage(accounts, PosSimulator::Mode::kCoinAge,
                         CoinAgeOptions{}, 42);
    int rwins[3] = {0, 0, 0}, cwins[3] = {0, 0, 0};
    for (int round = 0; round < 1000; ++round) {
      int r = randomized.Step(1);
      if (r >= 0) ++rwins[r];
      int c = coinage.Step(1);
      if (c >= 0) ++cwins[c];
    }
    std::printf("stake 60/30/10:  randomized wins %d/%d/%d   "
                "coin-age wins %d/%d/%d\n",
                rwins[0], rwins[1], rwins[2], cwins[0], cwins[1], cwins[2]);
    std::printf("(coin-age caps the rich-get-richer effect: winners' coin "
                "age resets)\n");
  }
  return 0;
}
