// Distributed transactions across bank partitions with 2PC and FT-3PC.
//
// Two banks hold accounts on different servers; a transfer must debit one
// and credit the other atomically. The example shows:
//   1. a successful 2PC transfer,
//   2. an aborted transfer (insufficient funds -> participant votes No),
//   3. the 2PC blocking window (coordinator crash leaves cohorts stuck),
//   4. fault-tolerant 3PC unblocking the same scenario via its
//      termination protocol.
//
//   $ ./bank_transfer

#include <cstdio>

#include "commit/three_phase_commit.h"
#include "commit/two_phase_commit.h"
#include "sim/simulation.h"

using namespace consensus40;
using commit::Transaction;
using commit::TxState;

namespace {

void PrintBalances(const char* label, const smr::KvStore& a,
                   const smr::KvStore& b) {
  auto alice = a.Get("alice");
  auto bob = b.Get("bob");
  std::printf("%-28s alice=%s bob=%s\n", label,
              alice ? alice->c_str() : "-", bob ? bob->c_str() : "-");
}

}  // namespace

int main() {
  std::printf("== consensus40: atomic commitment across bank partitions ==\n\n");

  // ---- Scenario 1 & 2: 2PC commit and abort --------------------------
  {
    auto sim_owner = sim::Simulation::Builder(1).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    auto* bank_a = sim.Spawn<commit::TwoPcParticipant>();
    auto* bank_b = sim.Spawn<commit::TwoPcParticipant>();
    auto* coord = sim.Spawn<commit::TwoPcCoordinator>();
    sim.Start();

    // Seed balances.
    Transaction seed;
    seed.tx_id = 1;
    seed.ops = {{bank_a->id(), "PUT alice 100"}, {bank_b->id(), "PUT bob 50"}};
    coord->Begin(seed);
    sim.RunUntil([&] { return coord->Finished(1); }, 5 * sim::kSecond);
    PrintBalances("initial:", bank_a->kv(), bank_b->kv());

    // Transfer 40 from alice to bob: all participants vote Yes -> commit.
    Transaction transfer;
    transfer.tx_id = 2;
    transfer.ops = {{bank_a->id(), "PUT alice 60"},
                    {bank_b->id(), "PUT bob 90"}};
    coord->Begin(transfer);
    sim.RunUntil([&] { return coord->Finished(2); }, 5 * sim::kSecond);
    std::printf("2PC transfer: %s\n",
                *coord->outcome(2) ? "COMMITTED" : "ABORTED");
    PrintBalances("after transfer:", bank_a->kv(), bank_b->kv());

    // A bad transfer: bank A's local validation fails -> vote No -> abort
    // everywhere, atomically.
    Transaction bad;
    bad.tx_id = 3;
    bad.ops = {{bank_a->id(), "FAIL"}, {bank_b->id(), "PUT bob 9999"}};
    coord->Begin(bad);
    sim.RunUntil([&] { return coord->outcome(3).has_value(); },
                 5 * sim::kSecond);
    sim.RunFor(1 * sim::kSecond);
    std::printf("2PC bad transfer: %s\n",
                *coord->outcome(3) ? "COMMITTED" : "ABORTED");
    PrintBalances("after abort:", bank_a->kv(), bank_b->kv());
  }

  // ---- Scenario 3: the 2PC blocking window ---------------------------
  {
    std::printf("\n-- 2PC blocking demonstration --\n");
    auto sim_owner = sim::Simulation::Builder(2).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    auto* bank_a = sim.Spawn<commit::TwoPcParticipant>();
    auto* bank_b = sim.Spawn<commit::TwoPcParticipant>();
    auto* coord = sim.Spawn<commit::TwoPcCoordinator>();
    sim.Start();

    Transaction tx;
    tx.tx_id = 1;
    tx.ops = {{bank_a->id(), "PUT alice 1"}, {bank_b->id(), "PUT bob 1"}};
    coord->Begin(tx);
    // Crash the coordinator the moment the cohorts are prepared.
    sim.RunUntil(
        [&] {
          return bank_a->state(1) == TxState::kPrepared &&
                 bank_b->state(1) == TxState::kPrepared;
        },
        5 * sim::kSecond);
    sim.Crash(coord->id());
    sim.RunFor(30 * sim::kSecond);
    std::printf("30s after coordinator crash: bank A is '%s', bank B is "
                "'%s'  <- blocked forever\n",
                commit::ToString(bank_a->state(1)),
                commit::ToString(bank_b->state(1)));
  }

  // ---- Scenario 4: FT-3PC unblocks the same crash --------------------
  {
    std::printf("\n-- fault-tolerant 3PC termination --\n");
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    auto* bank_a = sim.Spawn<commit::ThreePcParticipant>();
    auto* bank_b = sim.Spawn<commit::ThreePcParticipant>();
    auto* coord = sim.Spawn<commit::ThreePcCoordinator>();
    sim.Start();

    Transaction tx;
    tx.tx_id = 1;
    tx.ops = {{bank_a->id(), "PUT alice 1"}, {bank_b->id(), "PUT bob 1"}};
    coord->Begin(tx);
    sim.RunUntil(
        [&] {
          return bank_a->state(1) == TxState::kPrepared &&
                 bank_b->state(1) == TxState::kPrepared;
        },
        5 * sim::kSecond);
    sim.Crash(coord->id());
    sim.RunUntil(
        [&] {
          return bank_a->state(1) != TxState::kPrepared &&
                 bank_b->state(1) != TxState::kPrepared;
        },
        60 * sim::kSecond);
    std::printf("after coordinator crash:     bank A is '%s', bank B is "
                "'%s'  <- termination protocol decided\n",
                commit::ToString(bank_a->state(1)),
                commit::ToString(bank_b->state(1)));
    std::printf("(nobody had pre-committed, so the safe decision is abort;\n"
                " crash after pre-commit would have completed the commit)\n");
  }

  return 0;
}
