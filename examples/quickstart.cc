// Quickstart: a replicated key-value store on Multi-Paxos.
//
// Builds a 5-replica cluster inside the deterministic simulator, runs a
// client workload against it, crashes the leader mid-stream, and shows the
// cluster failing over without losing or duplicating a single command.
//
//   $ ./quickstart

#include <cstdio>

#include "paxos/multi_paxos.h"
#include "sim/simulation.h"
#include "smr/state_machine.h"

using namespace consensus40;

int main() {
  std::printf("== consensus40 quickstart: replicated KV over Multi-Paxos ==\n\n");

  auto sim_owner =
      sim::Simulation::Builder(/*seed=*/2026).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;

  // 1. Spawn five replicas. Replicas must be the first processes so their
  //    ids are 0..4.
  paxos::MultiPaxosOptions options;
  options.n = 5;
  std::vector<paxos::MultiPaxosReplica*> replicas;
  for (int i = 0; i < options.n; ++i) {
    replicas.push_back(sim.Spawn<paxos::MultiPaxosReplica>(options));
  }

  // 2. A closed-loop client that increments a counter 30 times.
  auto* client = sim.Spawn<paxos::MultiPaxosClient>(options.n, /*ops=*/30);

  sim.Start();

  // 3. Let the first few commands commit.
  sim.RunUntil([&] { return client->completed() >= 10; },
               30 * sim::kSecond);
  std::printf("after %2d ops  : virtual time %lldms\n", client->completed(),
              static_cast<long long>(sim.now() / sim::kMillisecond));

  // 4. Kill the leader. The survivors elect a new one; the client retries
  //    transparently.
  for (const auto* r : replicas) {
    if (r->IsLeader()) {
      std::printf("crashing leader: replica %d\n", r->id());
      sim.Crash(r->id());
      break;
    }
  }

  sim.RunUntil([&] { return client->done(); }, 120 * sim::kSecond);
  std::printf("after %2d ops  : virtual time %lldms\n", client->completed(),
              static_cast<long long>(sim.now() / sim::kMillisecond));

  // 5. Every result is the strictly increasing counter: nothing lost,
  //    nothing executed twice, even across the crash.
  std::printf("\nresults: ");
  for (const std::string& r : client->results()) std::printf("%s ", r.c_str());
  std::printf("\n\n");

  // 6. Replica state machines agree.
  sim.RunFor(2 * sim::kSecond);
  for (const auto* r : replicas) {
    if (sim.IsCrashed(r->id())) continue;
    auto v = r->kv().Get("x");
    std::printf("replica %d: x = %s, commit frontier = %llu\n", r->id(),
                v ? v->c_str() : "?",
                static_cast<unsigned long long>(r->log().commit_frontier()));
  }

  std::vector<const smr::ReplicatedLog*> logs;
  for (const auto* r : replicas) logs.push_back(&r->log());
  std::string divergence = smr::CheckPrefixConsistency(logs);
  std::printf("\nsafety check: %s\n",
              divergence.empty() ? "all committed prefixes agree"
                                 : divergence.c_str());
  return divergence.empty() ? 0 : 1;
}
