// C1/C2 — safety-checker throughput: seeded fault-schedule exploration
// rate per protocol adapter and its scaling across sweep workers
// (src/check/parallel_sweep.h over common/thread_pool.h), plus the
// shrinker's cost on a known out-of-bounds violation.
//
// Results go to stdout and to BENCH_checker.json in the working directory
// (same convention as bench_simcore / BENCH_simcore.json) so the perf
// trajectory is tracked across PRs. The parallel sweep's merged report is
// compared byte-for-byte against the serial one at every worker count —
// a scaling number only counts if the answer is identical.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "check/adapters.h"
#include "check/checker.h"
#include "check/parallel_sweep.h"
#include "check/shrink.h"
#include "common/table.h"
#include "common/thread_pool.h"

using namespace consensus40;

namespace {

constexpr uint64_t kSchedules = 100;  ///< Seeds per protocol per sweep.

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One worker-count column of the scaling run.
struct ScalingResult {
  int workers = 0;
  std::vector<double> per_protocol_rate;  ///< schedules/s, roster order.
  double aggregate_rate = 0;              ///< total schedules / total wall.
  bool report_identical = true;           ///< Byte-equal to the 1-worker run.
};

struct ShrinkResult {
  uint64_t seed = 0;
  size_t actions_before = 0;
  size_t actions_after = 0;
  int replays = 0;
  int snapped = 0;
  double wall_ms = 0;
  bool parallel_matches = false;
  std::string repro;
};

std::vector<int> WorkerCounts() {
  std::vector<int> counts = {1, 2, 4, ThreadPool::Hardware()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

void WriteJson(const std::vector<std::pair<const char*, check::AdapterFactory>>&
                   roster,
               const std::vector<ScalingResult>& scaling,
               const ShrinkResult& shrink) {
  FILE* f = std::fopen("BENCH_checker.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_checker: cannot write BENCH_checker.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"checker\",\n"
               "  \"schedules_per_protocol\": %llu,\n"
               "  \"hardware_workers\": %d,\n  \"protocols\": [\n",
               static_cast<unsigned long long>(kSchedules),
               ThreadPool::Hardware());
  for (size_t p = 0; p < roster.size(); ++p) {
    std::fprintf(f, "    {\"name\": \"%s\", \"rates\": [", roster[p].first);
    for (size_t s = 0; s < scaling.size(); ++s) {
      std::fprintf(f, "{\"workers\": %d, \"schedules_per_sec\": %.0f}%s",
                   scaling[s].workers, scaling[s].per_protocol_rate[p],
                   s + 1 < scaling.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", p + 1 < roster.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"aggregate\": [\n");
  for (size_t s = 0; s < scaling.size(); ++s) {
    std::fprintf(f,
                 "    {\"workers\": %d, \"schedules_per_sec\": %.0f, "
                 "\"speedup_vs_1\": %.2f, \"report_identical_to_serial\": "
                 "%s}%s\n",
                 scaling[s].workers, scaling[s].aggregate_rate,
                 scaling[s].aggregate_rate / scaling[0].aggregate_rate,
                 scaling[s].report_identical ? "true" : "false",
                 s + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"shrink\": {\"seed\": %llu, \"actions_before\": %zu, "
               "\"actions_after\": %zu, \"replays\": %d, \"snapped\": %d, "
               "\"wall_ms\": %.1f, \"parallel_matches_serial\": %s}\n}\n",
               static_cast<unsigned long long>(shrink.seed),
               shrink.actions_before, shrink.actions_after, shrink.replays,
               shrink.snapped, shrink.wall_ms,
               shrink.parallel_matches ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("==== C1/C2: safety-checker throughput & sweep scaling ====\n\n");

  const auto roster = check::AllInBoundsAdapters();
  const std::vector<int> counts = WorkerCounts();

  // -- Scaling sweep: every protocol at every worker count. The 1-worker
  // run is the serial reference; every other count must reproduce its
  // report byte-for-byte.
  std::vector<ScalingResult> scaling;
  std::vector<std::string> serial_reports(roster.size());
  for (int workers : counts) {
    ThreadPool pool(workers);
    ScalingResult r;
    r.workers = workers;
    double total_s = 0;
    for (size_t p = 0; p < roster.size(); ++p) {
      check::SweepOptions options;
      options.seeds = kSchedules;
      const std::vector<std::pair<const char*, check::AdapterFactory>> one = {
          roster[p]};
      auto t0 = std::chrono::steady_clock::now();
      check::SweepReport report = check::RunSweep(one, options, &pool);
      const double s = Seconds(t0);
      total_s += s;
      r.per_protocol_rate.push_back(kSchedules / s);
      if (workers == counts.front()) {
        serial_reports[p] = report.ToString();
      } else if (report.ToString() != serial_reports[p]) {
        r.report_identical = false;
      }
    }
    r.aggregate_rate = static_cast<double>(kSchedules * roster.size()) /
                       total_s;
    scaling.push_back(std::move(r));
  }

  {
    std::vector<std::string> headers = {"protocol"};
    for (int w : counts) headers.push_back(std::to_string(w) + "w sched/s");
    TextTable t(headers);
    for (size_t p = 0; p < roster.size(); ++p) {
      std::vector<std::string> row = {roster[p].first};
      for (const ScalingResult& s : scaling) {
        row.push_back(TextTable::Num(s.per_protocol_rate[p], 0));
      }
      t.AddRow(row);
    }
    std::vector<std::string> agg = {"(all)"};
    std::vector<std::string> speed = {"(speedup)"};
    for (const ScalingResult& s : scaling) {
      agg.push_back(TextTable::Num(s.aggregate_rate, 0));
      speed.push_back(
          TextTable::Num(s.aggregate_rate / scaling[0].aggregate_rate, 2) +
          "x");
    }
    t.AddRow(agg);
    t.AddRow(speed);
    std::printf("-- sweep scaling (%llu seeded schedules/protocol, workers: ",
                static_cast<unsigned long long>(kSchedules));
    for (size_t i = 0; i < counts.size(); ++i) {
      std::printf("%s%d", i ? "/" : "", counts[i]);
    }
    std::printf("; %d hardware core%s) --\n",
                ThreadPool::Hardware(), ThreadPool::Hardware() == 1 ? "" : "s");
    std::printf("%s\n", t.ToString().c_str());
    bool all_identical = true;
    for (const ScalingResult& s : scaling) all_identical &= s.report_identical;
    std::printf("merged reports byte-identical across worker counts: %s\n",
                all_identical ? "yes" : "NO — DETERMINISM BROKEN");
    std::printf(
        "Each schedule is a full simulated run: build the cluster, inject\n"
        "the generated crash/partition/delay sequence, run to quiescence,\n"
        "then evaluate every safety invariant.\n\n");
  }

  // -- Shrinker cost on a real violation (Flexible Paxos, q1+q2<=n),
  // including the canonicalization pass and the parallel-ddmin check.
  ShrinkResult shrink;
  std::printf("-- shrinker cost on a real violation (Flexible Paxos, "
              "q1+q2<=n) --\n");
  {
    check::AdapterFactory factory = check::MakePaxosOutOfBoundsAdapter();
    for (uint64_t seed = 1; seed <= 400; ++seed) {
      check::FaultSchedule schedule;
      check::RunResult r = check::RunSeed(factory, seed, &schedule);
      if (!r.violated()) continue;
      auto replay = [&](const check::FaultSchedule& candidate) {
        return check::RunSchedule(factory, seed, candidate).violated();
      };
      const check::FaultBounds bounds = factory(seed)->bounds();
      auto t0 = std::chrono::steady_clock::now();
      check::ShrinkStats stats;
      check::FaultSchedule min =
          check::ShrinkSchedule(schedule, bounds, replay, 400, &stats);
      min = check::CanonicalizeSchedule(std::move(min), bounds, replay, &stats);
      shrink.wall_ms = Seconds(t0) * 1000.0;

      check::ShrinkStats pstats;
      ThreadPool pool(4);
      check::FaultSchedule pmin =
          check::ShrinkSchedule(schedule, bounds, replay, 400, &pstats, &pool);
      pmin = check::CanonicalizeSchedule(std::move(pmin), bounds, replay,
                                         &pstats);
      shrink.parallel_matches = pmin.ToString() == min.ToString();

      shrink.seed = seed;
      shrink.actions_before = schedule.actions.size();
      shrink.actions_after = min.actions.size();
      shrink.replays = stats.runs;
      shrink.snapped = stats.snapped;
      shrink.repro = min.ToString();
      std::printf(
          "seed %llu: %zu actions -> %zu in %d replays (%.1f ms), "
          "%d canonical snaps\n  %s\n  parallel ddmin identical: %s\n",
          static_cast<unsigned long long>(seed), shrink.actions_before,
          shrink.actions_after, stats.runs, shrink.wall_ms, stats.snapped,
          min.ToString().c_str(), shrink.parallel_matches ? "yes" : "NO");
      break;
    }
  }

  WriteJson(roster, scaling, shrink);
  std::printf("\nwrote BENCH_checker.json\n");
  return 0;
}
