// C1 — safety-checker throughput: seeded fault-schedule exploration rate
// per protocol adapter (schedules checked per wall-clock second), plus the
// shrinker's cost on a known out-of-bounds violation.

#include <chrono>
#include <cstdio>

#include "check/adapters.h"
#include "check/checker.h"
#include "check/shrink.h"
#include "common/table.h"

using namespace consensus40;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("==== C1: safety-checker throughput ====\n\n");

  constexpr int kSchedules = 100;
  std::printf("-- in-bounds sweep rate (%d seeded schedules each) --\n",
              kSchedules);
  {
    TextTable t({"protocol", "schedules/sec", "violations", "wall ms"});
    double total_s = 0;
    int total_runs = 0;
    for (const auto& [name, factory] : check::AllInBoundsAdapters()) {
      auto t0 = std::chrono::steady_clock::now();
      int violations = 0;
      for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
        check::FaultSchedule schedule;
        violations += check::RunSeed(factory, seed, &schedule).violated();
      }
      double s = Seconds(t0);
      total_s += s;
      total_runs += kSchedules;
      t.AddRow({name, TextTable::Num(kSchedules / s, 0),
                TextTable::Int(violations), TextTable::Num(s * 1000.0, 1)});
    }
    t.AddRow({"(all)", TextTable::Num(total_runs / total_s, 0),
              TextTable::Int(0), TextTable::Num(total_s * 1000.0, 1)});
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Each schedule is a full simulated run: build the cluster,\n"
                "inject the generated crash/partition/delay sequence, run to\n"
                "quiescence, then evaluate every safety invariant.\n\n");
  }

  std::printf("-- shrinker cost on a real violation (Flexible Paxos, "
              "q1+q2<=n) --\n");
  {
    check::AdapterFactory factory = check::MakePaxosOutOfBoundsAdapter();
    for (uint64_t seed = 1; seed <= 400; ++seed) {
      check::FaultSchedule schedule;
      check::RunResult r = check::RunSeed(factory, seed, &schedule);
      if (!r.violated()) continue;
      auto t0 = std::chrono::steady_clock::now();
      check::ShrinkStats stats;
      check::FaultSchedule min = check::ShrinkSchedule(
          schedule,
          [&](const check::FaultSchedule& candidate) {
            return check::RunSchedule(factory, seed, candidate).violated();
          },
          400, &stats);
      std::printf("seed %llu: %zu actions -> %zu in %d replays (%.1f ms)\n"
                  "  %s\n",
                  static_cast<unsigned long long>(seed),
                  schedule.actions.size(), min.actions.size(), stats.runs,
                  Seconds(t0) * 1000.0, min.ToString().c_str());
      break;
    }
  }
  return 0;
}
