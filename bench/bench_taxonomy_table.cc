// T1 — The tutorial's protocol taxonomy cards, regenerated.
//
// Part 1 prints the static five-aspect table exactly as the deck presents
// it (synchrony / failure model / strategy / awareness / nodes / phases /
// complexity). Part 2 *measures* the claimed node counts, phase counts and
// per-command message bills by actually running each implemented protocol
// at f = 1 on a fixed-delay network.

#include <cstdio>
#include <memory>

#include "common/table.h"
#include "core/traits.h"
#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "minbft/minbft.h"
#include "paxos/multi_paxos.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"
#include "zyzzyva/zyzzyva.h"

using namespace consensus40;

namespace {

struct Measured {
  int n;
  double messages_per_cmd;
  double latency_ms;  ///< Client-observed, fixed 1ms hops.
};

std::unique_ptr<sim::Simulation> MakeFixedDelaySim(uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = 1 * sim::kMillisecond;
  net.max_delay = 1 * sim::kMillisecond;
  return sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
}

Measured MeasureMultiPaxos() {
  auto sim_owner = MakeFixedDelaySim(1);
  sim::Simulation& sim = *sim_owner;
  paxos::MultiPaxosOptions opts;
  opts.n = 3;
  for (int i = 0; i < opts.n; ++i) sim.Spawn<paxos::MultiPaxosReplica>(opts);
  auto* client = sim.Spawn<paxos::MultiPaxosClient>(opts.n, 20);
  sim.Start();
  sim.RunUntil([&] { return client->completed() >= 10; }, 60 * sim::kSecond);
  sim.stats().Reset();
  sim::Time t0 = sim.now();
  sim.RunUntil([&] { return client->done(); }, 60 * sim::kSecond);
  double cmds = 10;
  // Subtract heartbeat chatter: count only request-path message types.
  const auto& types = sim.stats().sent_by_type;
  uint64_t useful = 0;
  for (const char* type : {"request", "accept", "accepted", "commit", "reply"}) {
    auto it = types.find(type);
    if (it != types.end()) useful += it->second;
  }
  return {opts.n, useful / cmds,
          static_cast<double>(sim.now() - t0) / sim::kMillisecond / cmds};
}

template <typename Replica, typename Client, typename Options>
Measured MeasureBft(int n, int clients_extra, Options opts,
                    crypto::KeyRegistry* registry) {
  auto sim_owner = MakeFixedDelaySim(1);
  sim::Simulation& sim = *sim_owner;
  for (int i = 0; i < n; ++i) sim.Spawn<Replica>(opts);
  auto* client = sim.Spawn<Client>(n, registry, 20, "x");
  (void)clients_extra;
  sim.Start();
  sim.RunUntil([&] { return client->completed() >= 10; }, 120 * sim::kSecond);
  sim.stats().Reset();
  sim::Time t0 = sim.now();
  sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
  return {n, sim.stats().messages_sent / 10.0,
          static_cast<double>(sim.now() - t0) / sim::kMillisecond / 10.0};
}

}  // namespace

int main() {
  std::printf("==== T1: protocol taxonomy (the deck's five aspects) ====\n\n");
  TextTable table({"protocol", "synchrony", "failure", "strategy",
                   "awareness", "nodes", "n(f=1)", "phases", "complexity"});
  for (const core::ProtocolTraits& t : core::AllProtocolTraits()) {
    int n1 = t.nodes_required(1, 0);
    table.AddRow({t.name, core::ToString(t.synchrony),
                  core::ToString(t.failure_model), core::ToString(t.strategy),
                  core::ToString(t.awareness), t.nodes_formula,
                  n1 < 0 ? "?" : TextTable::Int(n1), t.phases, t.complexity});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("==== T1b: measured, f = 1, fixed 1ms hops, steady state ====\n\n");
  TextTable measured({"protocol", "replicas", "msgs/cmd", "latency (ms)"});

  Measured mp = MeasureMultiPaxos();
  measured.AddRow({"Multi-Paxos", TextTable::Int(mp.n),
                   TextTable::Num(mp.messages_per_cmd, 1),
                   TextTable::Num(mp.latency_ms, 1)});

  {
    crypto::KeyRegistry registry(1, 16);
    pbft::PbftOptions opts;
    opts.n = 4;
    opts.registry = &registry;
    Measured m = MeasureBft<pbft::PbftReplica, pbft::PbftClient>(4, 0, opts,
                                                                 &registry);
    measured.AddRow({"PBFT", TextTable::Int(m.n),
                     TextTable::Num(m.messages_per_cmd, 1),
                     TextTable::Num(m.latency_ms, 1)});
  }
  {
    crypto::KeyRegistry registry(1, 16);
    zyzzyva::ZyzzyvaOptions opts;
    opts.n = 4;
    opts.registry = &registry;
    Measured m = MeasureBft<zyzzyva::ZyzzyvaReplica, zyzzyva::ZyzzyvaClient>(
        4, 0, opts, &registry);
    measured.AddRow({"Zyzzyva (case 1)", TextTable::Int(m.n),
                     TextTable::Num(m.messages_per_cmd, 1),
                     TextTable::Num(m.latency_ms, 1)});
  }
  {
    crypto::KeyRegistry registry(1, 16);
    crypto::Usig usig(&registry);
    minbft::MinBftOptions opts;
    opts.n = 3;
    opts.registry = &registry;
    opts.usig = &usig;
    Measured m = MeasureBft<minbft::MinBftReplica, minbft::MinBftClient>(
        3, 0, opts, &registry);
    measured.AddRow({"MinBFT", TextTable::Int(m.n),
                     TextTable::Num(m.messages_per_cmd, 1),
                     TextTable::Num(m.latency_ms, 1)});
  }
  {
    crypto::KeyRegistry registry(1, 16);
    hotstuff::HotStuffOptions opts;
    opts.n = 4;
    opts.registry = &registry;
    Measured m = MeasureBft<hotstuff::HotStuffReplica, hotstuff::HotStuffClient>(
        4, 0, opts, &registry);
    measured.AddRow({"HotStuff (chained)", TextTable::Int(m.n),
                     TextTable::Num(m.messages_per_cmd, 1),
                     TextTable::Num(m.latency_ms, 1)});
  }
  std::printf("%s\n", measured.ToString().c_str());
  std::printf("Reading: MinBFT matches Paxos's 2f+1=3 replicas (the USIG at\n"
              "work); PBFT needs 3f+1=4 and the quadratic prepare/commit;\n"
              "Zyzzyva's speculative fast path is the cheapest BFT per\n"
              "command; chained HotStuff pays ~3 extra pipeline blocks of\n"
              "latency per command at idle but stays linear in n.\n");
  return 0;
}
