// F13 — HotStuff: linear message complexity vs PBFT's quadratic, the
// chained pipeline, and per-block leader rotation.

#include <cstdio>

#include "common/table.h"
#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

struct HsRun {
  double proto_msgs_per_cmd;
  double ms_per_cmd;
  int distinct_proposers;
  double cmds_per_block;
};

HsRun RunHotStuff(int n, int clients, int ops_each, uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = net.max_delay = 1 * sim::kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(seed, n + 16);
  hotstuff::HotStuffOptions opts;
  opts.n = n;
  opts.registry = &registry;
  std::vector<hotstuff::HotStuffReplica*> replicas;
  for (int i = 0; i < n; ++i) {
    replicas.push_back(sim.Spawn<hotstuff::HotStuffReplica>(opts));
  }
  std::vector<hotstuff::HotStuffClient*> cs;
  for (int c = 0; c < clients; ++c) {
    cs.push_back(sim.Spawn<hotstuff::HotStuffClient>(
        n, &registry, ops_each, "k" + std::to_string(c)));
  }
  sim.Start();
  sim::Time t0 = sim.now();
  sim.RunUntil(
      [&] {
        for (auto* c : cs) {
          if (!c->done()) return false;
        }
        return true;
      },
      600 * sim::kSecond);
  double cmds = clients * ops_each;
  const auto& types = sim.stats().sent_by_type;
  uint64_t proto = 0;
  for (const char* type : {"hs-proposal", "hs-vote", "hs-new-view"}) {
    auto it = types.find(type);
    if (it != types.end()) proto += it->second;
  }
  int proposers = 0, blocks = 0;
  for (auto* r : replicas) {
    proposers += (r->blocks_proposed() > 0);
    blocks += r->blocks_proposed();
  }
  return {proto / cmds,
          static_cast<double>(sim.now() - t0) / 1000.0 / cmds, proposers,
          blocks > 0 ? cmds / blocks : 0};
}

double RunPbftMsgs(int n, int ops, uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = net.max_delay = 1 * sim::kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(seed, n + 8);
  pbft::PbftOptions opts;
  opts.n = n;
  opts.registry = &registry;
  for (int i = 0; i < n; ++i) sim.Spawn<pbft::PbftReplica>(opts);
  auto* client = sim.Spawn<pbft::PbftClient>(n, &registry, ops);
  sim.Start();
  sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
  const auto& types = sim.stats().sent_by_type;
  uint64_t proto = 0;
  for (const char* type : {"pre-prepare", "prepare", "commit"}) {
    auto it = types.find(type);
    if (it != types.end()) proto += it->second;
  }
  return proto / static_cast<double>(ops);
}

}  // namespace

int main() {
  std::printf("==== F13: HotStuff ====\n\n");

  std::printf("-- protocol messages per command vs PBFT --\n");
  TextTable t({"n", "HotStuff msgs/cmd", "PBFT msgs/cmd", "HS growth",
               "PBFT growth"});
  double hs4 = 0, p4 = 0;
  for (int n : {4, 7, 10, 13}) {
    double hs = RunHotStuff(n, 4, 5, 1).proto_msgs_per_cmd;
    double p = RunPbftMsgs(n, 20, 1);
    if (n == 4) {
      hs4 = hs;
      p4 = p;
    }
    t.AddRow({TextTable::Int(n), TextTable::Num(hs, 1), TextTable::Num(p, 1),
              TextTable::Num(hs / hs4, 2) + "x",
              TextTable::Num(p / p4, 2) + "x"});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("HotStuff grows linearly (each n-to-n PBFT phase became\n"
              "n-to-1 votes + 1-to-n certificate broadcast via threshold\n"
              "signatures); PBFT grows ~ (n/4)^2. The crossover is where\n"
              "the deck's 'linear communication' headline pays off.\n\n");

  std::printf("-- leader rotation and the chained pipeline (n = 4) --\n");
  {
    HsRun r = RunHotStuff(4, 8, 5, 3);
    TextTable p({"metric", "value"});
    p.AddRow({"distinct leaders proposing", TextTable::Int(r.distinct_proposers)});
    p.AddRow({"commands per block (batching)", TextTable::Num(r.cmds_per_block, 2)});
    p.AddRow({"latency per command (ms)", TextTable::Num(r.ms_per_cmd, 1)});
    std::printf("%s\n", p.ToString().c_str());
    std::printf("The leader rotates every block ('a leader is rotated after\n"
                "a single attempt') and the prepare/pre-commit/commit/decide\n"
                "phases of consecutive blocks overlap: block k's prepare is\n"
                "block k-1's pre-commit is block k-2's commit — the deck's\n"
                "pipeline figure.\n");
  }
  return 0;
}
