// Crossword bench — adaptive erasure-coded consensus priced on the
// payload-aware bandwidth model (sim::NetworkOptions::bytes_per_ms).
//
// A value-size ladder (1 B .. 1 MiB) is replayed through three variants
// of the same replica implementation, all at n = 5 under a finite
// per-sender egress rate:
//
//   full      pinned full copies — the classic Multi-Paxos wire pattern,
//             leader egress (n-1)·P per committed payload P,
//   rs        pinned 1 shard per acceptor (RS-Paxos-like): leader egress
//             (n-1)·P/k, but the wider quorum q2(1) = n on every round,
//   adaptive  the Crossword controller sliding between those extremes on
//             EWMAs of payload size and observed egress backlog.
//
// The interesting physics: at large P the leader's port is the
// bottleneck and coding divides the bytes it must serialize; at small P
// serialization is noise and full copies win by skipping follower-side
// reconstruction entirely. Adaptive must capture both ends — that is the
// gate, asserted in-bench:
//
//   - at 1 MiB: adaptive throughput >= 2x full-copy throughput,
//   - at <= 64 B: adaptive mean latency within 10% of full-copy,
//   - every row: all ops complete, no self-reported violations.
//
// All numbers are virtual-time, deterministic per (seed, config); wall_s
// is the only host-dependent field. Results go to stdout and
// BENCH_crossword.json. `--smoke` runs two tiny rungs and writes
// BENCH_crossword_smoke.json instead (CI-sized).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "consensus/replica_group.h"
#include "paxos/crossword.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

constexpr uint64_t kSeed = 2020;
constexpr int kReplicas = 5;
/// Finite egress rate: 5000 bytes/ms (5 MB/s). A 1 MiB full-copy round
/// serializes ~4 * 210 ms at the leader's port; a 64 B command costs
/// ~13 us — the two regimes the adaptive controller must straddle.
constexpr double kBytesPerMs = 5000.0;

struct Config {
  std::string name;
  const char* protocol;  ///< Registry key.
  size_t value_size;
  int ops;
  int window = 4;  ///< Client pipeline depth (same for every row).
};

struct Result {
  Config config;
  int completed = 0;
  sim::Time virtual_us = 0;
  double mean_latency_ms = 0;
  double max_latency_ms = 0;
  uint64_t bytes_sent = 0;
  int leader_shards = 0;    ///< Leader's c at the end of the run.
  int reconstructions = 0;  ///< Follower applies via shard reassembly.
  int escalations = 0;      ///< Stalled rounds re-sent as full copies.
  int violations = 0;
  double wall_s = 0;
};

const size_t kSizes[] = {1, 64, 1024, 16384, 262144, 1048576};

const char* SizeLabel(size_t bytes) {
  switch (bytes) {
    case 1: return "1B";
    case 64: return "64B";
    case 1024: return "1KB";
    case 16384: return "16KB";
    case 65536: return "64KB";
    case 262144: return "256KB";
    case 1048576: return "1MB";
  }
  return "?";
}

int OpsFor(size_t bytes) {
  if (bytes <= 1024) return 120;
  if (bytes <= 16384) return 80;
  if (bytes <= 262144) return 50;
  return 30;
}

Result RunOne(const Config& config) {
  auto t0 = std::chrono::steady_clock::now();
  auto group = consensus::MakeGroup(config.protocol);
  // Failure detection must scale with the payload: a full-copy fan-out
  // serializes (n-1)·P/rate at the leader's egress port, and heartbeats
  // are FIFO behind it, so a fixed 150 ms follower timeout reads a busy
  // leader as a dead one and churns elections all run. Same story for the
  // client's retry timer — a retry re-submits the whole payload into the
  // congestion it is reacting to.
  const double fanout_ms = (kReplicas - 1) *
                           static_cast<double>(config.value_size) /
                           kBytesPerMs;
  consensus::GroupTuning tuning;
  tuning.leader_timeout =
      std::max<sim::Duration>(150 * sim::kMillisecond,
                              static_cast<sim::Duration>(
                                  4.0 * fanout_ms * sim::kMillisecond));
  tuning.heartbeat_interval = tuning.leader_timeout / 7;
  group->Configure(tuning);
  const auto retry = std::max<sim::Duration>(
      2 * sim::kSecond,
      static_cast<sim::Duration>(20.0 * fanout_ms * sim::kMillisecond));
  consensus::GroupClient* client = nullptr;
  auto sim = sim::Simulation::Builder(kSeed)
                 .Bandwidth(kBytesPerMs)
                 .Setup([&](sim::Simulation& s) {
                   group->Create(&s, kReplicas);
                   client = s.Spawn<consensus::GroupClient>(
                       group.get(), retry, config.window);
                 })
                 .Build();

  // Closed loop at `window` outstanding ops: each completion records its
  // latency and issues the next command, so per-op latency measures the
  // request's own consensus round, not time spent queued client-side.
  Result r;
  r.config = config;
  int issued = 0;
  std::map<uint64_t, sim::Time> issue_time;
  auto submit_next = [&] {
    if (issued >= config.ops) return;
    const int i = issued++;
    std::string op = "PUT k" + std::to_string(i % 8) + " ";
    op.append(config.value_size,
              static_cast<char>('a' + i % 26));
    issue_time[client->Submit(op)] = sim->now();
  };
  client->SetCallback([&](uint64_t seq, const std::string&, bool) {
    auto it = issue_time.find(seq);
    if (it != issue_time.end()) {
      const double ms = (sim->now() - it->second) / 1000.0;
      r.mean_latency_ms += ms;  // Sum; divided once the run completes.
      r.max_latency_ms = std::max(r.max_latency_ms, ms);
      issue_time.erase(it);
    }
    ++r.completed;
    submit_next();
  });

  sim->RunFor(500 * sim::kMillisecond);  // Leader election settles.
  const sim::Time start = sim->now();
  const uint64_t bytes_before = sim->stats().bytes_sent;
  for (int i = 0; i < config.window; ++i) submit_next();
  // Horizon: generous multiple of the worst-case serialized cost per op.
  const double per_op_ms =
      4.0 * static_cast<double>(config.value_size) / kBytesPerMs + 50.0;
  const auto horizon = static_cast<sim::Duration>(
      10.0 * per_op_ms * config.ops * sim::kMillisecond);
  sim->RunUntil([&] { return r.completed >= config.ops; }, start + horizon);
  sim->RunFor(2 * sim::kSecond);  // Let straggler reconstructions finish.

  r.virtual_us = sim->now() - start - 2 * sim::kSecond;
  if (r.completed > 0) r.mean_latency_ms /= r.completed;
  r.bytes_sent = sim->stats().bytes_sent - bytes_before;
  for (sim::NodeId id : group->members()) {
    auto* replica = dynamic_cast<paxos::CrosswordReplica*>(sim->process(id));
    if (replica == nullptr) continue;
    r.reconstructions += replica->reconstructions();
    r.escalations += replica->escalations();
    if (replica->IsLeader()) r.leader_shards = replica->current_shards();
  }
  r.violations = static_cast<int>(group->Violations().size());
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  return r;
}

double Throughput(const Result& r) {
  return r.virtual_us == 0
             ? 0.0
             : r.completed * 1e6 / static_cast<double>(r.virtual_us);
}

void PrintTable(const std::vector<Result>& results) {
  TextTable table({"config", "value", "ops", "ops/vsec", "mean ms", "max ms",
                   "KB/op", "c", "recon", "escal"});
  for (const Result& r : results) {
    const double kb_per_op =
        r.completed == 0
            ? 0.0
            : static_cast<double>(r.bytes_sent) / r.completed / 1024.0;
    table.AddRow({r.config.name, SizeLabel(r.config.value_size),
                  TextTable::Int(r.completed),
                  TextTable::Num(Throughput(r), 1),
                  TextTable::Num(r.mean_latency_ms),
                  TextTable::Num(r.max_latency_ms),
                  TextTable::Num(kb_per_op, 1),
                  TextTable::Int(r.leader_shards),
                  TextTable::Int(r.reconstructions),
                  TextTable::Int(r.escalations)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void WriteJson(const std::vector<Result>& results, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_crossword: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"crossword\",\n  \"seed\": %llu,\n"
               "  \"replicas\": %d,\n  \"bytes_per_ms\": %.0f,\n"
               "  \"configs\": [\n",
               static_cast<unsigned long long>(kSeed), kReplicas, kBytesPerMs);
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"protocol\": \"%s\", \"value_bytes\": %llu,\n"
        "     \"ops\": %d, \"window\": %d,\n"
        "     \"throughput_ops_per_vsec\": %.2f, \"virtual_ms\": %.1f,\n"
        "     \"mean_latency_ms\": %.3f, \"max_latency_ms\": %.3f,\n"
        "     \"bytes_sent\": %llu, \"leader_shards\": %d,\n"
        "     \"reconstructions\": %d, \"escalations\": %d,\n"
        "     \"violations\": %d, \"wall_s\": %.2f}%s\n",
        r.config.name.c_str(), r.config.protocol,
        static_cast<unsigned long long>(r.config.value_size), r.completed,
        r.config.window, Throughput(r), r.virtual_us / 1000.0,
        r.mean_latency_ms, r.max_latency_ms,
        static_cast<unsigned long long>(r.bytes_sent), r.leader_shards,
        r.reconstructions, r.escalations, r.violations,
        r.wall_s, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

bool CompletionCheck(const Result& r) {
  bool ok = true;
  if (r.completed < r.config.ops) {
    std::printf("FAIL %s: only %d/%d ops completed\n", r.config.name.c_str(),
                r.completed, r.config.ops);
    ok = false;
  }
  if (r.violations != 0) {
    std::printf("FAIL %s: %d safety violation(s) self-reported\n",
                r.config.name.c_str(), r.violations);
    ok = false;
  }
  return ok;
}

std::vector<Config> Ladder(const std::vector<size_t>& sizes, int ops_cap) {
  const struct {
    const char* prefix;
    const char* protocol;
  } kVariants[] = {
      {"full", "crossword_full"},
      {"rs", "crossword_rs"},
      {"adaptive", "crossword"},
  };
  std::vector<Config> configs;
  for (size_t size : sizes) {
    for (const auto& v : kVariants) {
      Config c;
      c.name = std::string(v.prefix) + "-" + SizeLabel(size);
      c.protocol = v.protocol;
      c.value_size = size;
      c.ops = std::min(OpsFor(size), ops_cap);
      configs.push_back(std::move(c));
    }
  }
  return configs;
}

const Result* Find(const std::vector<Result>& results, const std::string& n) {
  for (const Result& r : results) {
    if (r.config.name == n) return &r;
  }
  return nullptr;
}

int RunSmoke() {
  std::printf(
      "== consensus40: Crossword bench (smoke) ==\n"
      "seed=%llu, n=%d, %.0f bytes/ms egress, two rungs\n\n",
      static_cast<unsigned long long>(kSeed), kReplicas, kBytesPerMs);
  std::vector<Result> results;
  for (const Config& c : Ladder({64, 262144}, 20)) results.push_back(RunOne(c));
  PrintTable(results);
  bool ok = true;
  for (const Result& r : results) ok &= CompletionCheck(r);
  WriteJson(results, "BENCH_crossword_smoke.json");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }

  std::printf(
      "== consensus40: Crossword value-size ladder ==\n"
      "seed=%llu, n=%d replicas, finite egress %.0f bytes/ms,\n"
      "full-copy vs 1-shard RS vs adaptive assignment\n\n",
      static_cast<unsigned long long>(kSeed), kReplicas, kBytesPerMs);

  std::vector<Result> results;
  for (const Config& c :
       Ladder(std::vector<size_t>(std::begin(kSizes), std::end(kSizes)),
              1 << 20)) {
    results.push_back(RunOne(c));
  }
  PrintTable(results);

  bool ok = true;
  for (const Result& r : results) ok &= CompletionCheck(r);

  // Gate 1: at 1 MiB under a constrained egress port, adaptive must buy
  // at least 2x full-copy throughput (the coded fan-out serializes
  // ~(n-1)/k of the bytes the classic wire pattern does).
  const Result* full_big = Find(results, "full-1MB");
  const Result* adaptive_big = Find(results, "adaptive-1MB");
  if (full_big != nullptr && adaptive_big != nullptr) {
    const double ratio = Throughput(*full_big) == 0
                             ? 0.0
                             : Throughput(*adaptive_big) /
                                   Throughput(*full_big);
    std::printf("1MB: adaptive %.1f vs full-copy %.1f ops/vsec (%.2fx)\n",
                Throughput(*adaptive_big), Throughput(*full_big), ratio);
    if (ratio < 2.0) {
      std::printf("FAIL: adaptive < 2x full-copy at 1MB\n");
      ok = false;
    }
    if (adaptive_big->reconstructions == 0) {
      std::printf("FAIL: adaptive never exercised reconstruction at 1MB\n");
      ok = false;
    }
  }

  // Gate 2: at <= 64 B the controller must hold the classic full-copy
  // path — mean commit latency within 10% of the pinned baseline.
  for (const char* label : {"1B", "64B"}) {
    const Result* full = Find(results, std::string("full-") + label);
    const Result* adaptive = Find(results, std::string("adaptive-") + label);
    if (full == nullptr || adaptive == nullptr) continue;
    std::printf("%s: adaptive %.3f ms vs full-copy %.3f ms mean latency\n",
                label, adaptive->mean_latency_ms, full->mean_latency_ms);
    if (adaptive->mean_latency_ms > 1.10 * full->mean_latency_ms) {
      std::printf("FAIL: adaptive > 1.1x full-copy latency at %s\n", label);
      ok = false;
    }
  }

  WriteJson(results, "BENCH_crossword.json");
  return ok ? 0 : 1;
}
