// F3 — The dueling-proposers liveness figure (S1..S5, P3.1 vs P3.5) and
// the deck's fix: randomized delay before restarting.
//
// Under an adversarial delay schedule (control messages fast, accepts
// slow), two proposers with deterministic zero backoff preempt each other
// forever; the same schedule with randomized backoff decides quickly.

#include <cstdio>

#include "common/table.h"
#include "paxos/paxos.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

struct Outcome {
  bool decided;
  int attempts0;
  int attempts4;
  sim::Time decide_time;
};

Outcome Run(bool randomized_backoff, uint64_t seed) {
  paxos::PaxosOptions opts;
  opts.n = 5;
  opts.randomized_backoff = randomized_backoff;
  opts.retry_delay = randomized_backoff ? 5 * sim::kMillisecond : 0;
  auto sim_owner = sim::Simulation::Builder(seed).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  std::vector<paxos::PaxosNode*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(sim.Spawn<paxos::PaxosNode>(opts));
  sim.Start();
  // Adversarial schedule: every proposer's re-prepare lands between the
  // other's promise and accept.
  sim.SetDelayFn([](const sim::Envelope& e) -> sim::Duration {
    if (e.from == e.to) return 0;
    if (std::string(e.msg->TypeName()) == "accept") {
      return 3 * sim::kMillisecond;
    }
    return 1 * sim::kMillisecond;
  });
  nodes[0]->Propose("x");
  sim.ScheduleAfter(2500, [&] { nodes[4]->Propose("y"); });
  bool decided = sim.RunUntil(
      [&] {
        for (auto* n : nodes) {
          if (!n->decided()) return false;
        }
        return true;
      },
      3 * sim::kSecond);
  return {decided, nodes[0]->prepare_attempts(), nodes[4]->prepare_attempts(),
          sim.now()};
}

}  // namespace

int main() {
  std::printf("==== F3: dueling proposers (adversarial delays, 3s budget) ====\n\n");
  TextTable t({"backoff", "seed", "decided?", "prepares by S1",
               "prepares by S5", "time to decide"});
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Outcome o = Run(false, seed);
    t.AddRow({"none (deterministic)", TextTable::Int(seed),
              o.decided ? "yes" : "LIVELOCK", TextTable::Int(o.attempts0),
              TextTable::Int(o.attempts4),
              o.decided ? TextTable::Num(o.decide_time / 1000.0, 1) + "ms"
                        : "-"});
  }
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Outcome o = Run(true, seed);
    t.AddRow({"randomized", TextTable::Int(seed),
              o.decided ? "yes" : "LIVELOCK", TextTable::Int(o.attempts0),
              TextTable::Int(o.attempts4),
              o.decided ? TextTable::Num(o.decide_time / 1000.0, 1) + "ms"
                        : "-"});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("The deterministic rows re-create the deck's P3.1/P3.5/P4.1/\n"
              "P5.5 escalation: hundreds of ballots, zero decisions. The\n"
              "randomized rows decide within a few backoff periods — the\n"
              "deck's 'randomized delay before restarting' fix. Livelock is\n"
              "a liveness failure only: safety held in every run (FLP says\n"
              "we cannot have both, deterministically, under asynchrony).\n");
  return 0;
}
