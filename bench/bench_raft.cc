// F7 — Raft: randomized leader election, replication throughput, and
// crash failover — the deck's "equivalent to Paxos in fault-tolerance,
// meant to be more understandable" twin.

#include <cstdio>

#include "common/table.h"
#include "raft/raft.h"
#include "sim/simulation.h"

using namespace consensus40;

int main() {
  std::printf("==== F7: Raft ====\n\n");

  std::printf("-- election latency across seeds (n = 5) --\n");
  {
    TextTable t({"seed", "leader elected after", "terms used",
                 "elections started"});
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      auto sim_owner = sim::Simulation::Builder(seed).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      raft::RaftOptions opts;
      opts.n = 5;
      std::vector<raft::RaftReplica*> replicas;
      for (int i = 0; i < 5; ++i) {
        replicas.push_back(sim.Spawn<raft::RaftReplica>(opts));
      }
      sim.Start();
      sim.RunUntil(
          [&] {
            for (auto* r : replicas) {
              if (r->IsLeader()) return true;
            }
            return false;
          },
          30 * sim::kSecond);
      int64_t term = 0;
      int elections = 0;
      for (auto* r : replicas) {
        if (r->IsLeader()) term = r->current_term();
        elections += r->elections_started();
      }
      t.AddRow({TextTable::Int(seed),
                TextTable::Num(sim.now() / 1000.0, 0) + "ms",
                TextTable::Int(term), TextTable::Int(elections)});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Randomized timeouts make split votes rare: most seeds\n"
                "elect in term 1 with a single candidate.\n\n");
  }

  std::printf("-- failover: leader crash mid-replication (n = 5) --\n");
  {
    TextTable t({"phase", "virtual time", "commands done", "term"});
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    raft::RaftOptions opts;
    opts.n = 5;
    std::vector<raft::RaftReplica*> replicas;
    for (int i = 0; i < 5; ++i) {
      replicas.push_back(sim.Spawn<raft::RaftReplica>(opts));
    }
    auto* client = sim.Spawn<raft::RaftClient>(5, 30);
    sim.Start();
    sim.RunUntil([&] { return client->completed() >= 10; },
                 120 * sim::kSecond);
    auto term_of_leader = [&] {
      for (auto* r : replicas) {
        if (r->IsLeader() && !sim.IsCrashed(r->id())) return r->current_term();
      }
      return int64_t{-1};
    };
    t.AddRow({"steady state", TextTable::Num(sim.now() / 1000.0, 0) + "ms",
              TextTable::Int(client->completed()),
              TextTable::Int(term_of_leader())});
    sim::NodeId leader = -1;
    for (auto* r : replicas) {
      if (r->IsLeader()) leader = r->id();
    }
    sim::Time crash_time = sim.now();
    sim.Crash(leader);
    sim.RunUntil([&] { return client->completed() >= 11; },
                 120 * sim::kSecond);
    t.AddRow({"first command after crash",
              TextTable::Num(sim.now() / 1000.0, 0) + "ms",
              TextTable::Int(client->completed()),
              TextTable::Int(term_of_leader())});
    sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
    t.AddRow({"workload finished", TextTable::Num(sim.now() / 1000.0, 0) + "ms",
              TextTable::Int(client->completed()),
              TextTable::Int(term_of_leader())});
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Failover pause: ~%lldms (election timeout + new election).\n"
                "All 30 increments returned 1..30 exactly once: %s.\n\n",
                static_cast<long long>((sim.now() - crash_time) / 1000 -
                                       (client->completed() - 11) * 4),
                [&] {
                  for (int i = 0; i < 30; ++i) {
                    if (client->results()[i] != std::to_string(i + 1)) {
                      return "VIOLATED";
                    }
                  }
                  return "verified";
                }());
  }

  std::printf("-- membership elasticity: grow 3 -> 5 -> shrink to 3 --\n");
  {
    auto sim_owner = sim::Simulation::Builder(9).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    raft::RaftOptions base;
    base.n = 3;
    base.initial_config = {0, 1, 2};
    std::vector<raft::RaftReplica*> replicas;
    for (int i = 0; i < 3; ++i) {
      replicas.push_back(sim.Spawn<raft::RaftReplica>(base));
    }
    raft::RaftOptions joiner = base;
    joiner.join_passive = true;
    replicas.push_back(sim.Spawn<raft::RaftReplica>(joiner));
    replicas.push_back(sim.Spawn<raft::RaftReplica>(joiner));
    auto* client = sim.Spawn<raft::RaftClient>(5, 30);
    sim.Start();

    auto leader = [&]() -> raft::RaftReplica* {
      for (auto* r : replicas) {
        if (r->IsLeader() && !sim.IsCrashed(r->id())) return r;
      }
      return nullptr;
    };
    TextTable t({"event", "virtual time", "config size at leader",
                 "cmds done"});
    auto snap = [&](const char* label) {
      raft::RaftReplica* l = leader();
      t.AddRow({label, TextTable::Num(sim.now() / 1000.0, 0) + "ms",
                l ? TextTable::Int(static_cast<int64_t>(l->config().size()))
                  : "-",
                TextTable::Int(client->completed())});
    };
    sim.RunUntil([&] { return client->completed() >= 5; }, 60 * sim::kSecond);
    snap("steady state (3 voters)");
    leader()->ChangeConfig({0, 1, 2, 3});
    sim.RunUntil([&] { return leader() != nullptr &&
                              leader()->ChangeConfig({0, 1, 2, 3, 4}).ok(); },
                 60 * sim::kSecond);
    sim.RunUntil([&] { return client->completed() >= 15; }, 60 * sim::kSecond);
    snap("after adding servers 3, 4");
    // Two crashes are now survivable (a 3-node cluster would stall).
    sim.Crash(0);
    sim.Crash(1);
    sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
    snap("after crashing 2 of the originals");
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Configuration changes ride the replicated log itself (the\n"
                "'group membership' equivalent problem): the grown quorum\n"
                "absorbed two crashes that the original 3-node cluster could\n"
                "not have; every command 1..30 executed exactly once.\n\n");
  }

  std::printf("-- Raft vs Multi-Paxos cost (they share the taxonomy card) --\n");
  {
    sim::NetworkOptions net;
    net.min_delay = net.max_delay = 1 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(5).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    raft::RaftOptions opts;
    opts.n = 5;
    for (int i = 0; i < 5; ++i) sim.Spawn<raft::RaftReplica>(opts);
    auto* client = sim.Spawn<raft::RaftClient>(5, 30);
    sim.Start();
    sim.RunUntil([&] { return client->completed() >= 10; },
                 120 * sim::kSecond);
    sim.stats().Reset();
    sim::Time t0 = sim.now();
    sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
    const auto& types = sim.stats().sent_by_type;
    uint64_t useful = 0;
    for (const char* type :
         {"request", "append-entries", "append-reply", "reply"}) {
      auto it = types.find(type);
      if (it != types.end()) useful += it->second;
    }
    std::printf("steady state: %.1f msgs/cmd, %.1f ms/cmd (cf. Multi-Paxos\n"
                "in bench_multipaxos — same 2f+1 nodes, 2 phases, O(N)).\n",
                useful / 20.0,
                static_cast<double>(sim.now() - t0) / 1000.0 / 20.0);
  }
  return 0;
}
