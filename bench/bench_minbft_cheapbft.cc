// F14 + F15 — Trusted components: MinBFT's 2f+1/2-phase agreement and
// CheapBFT's f+1-active CheapTiny with the CheapSwitch fallback.

#include <cstdio>

#include "cheapbft/cheapbft.h"
#include "common/table.h"
#include "crypto/signatures.h"
#include "minbft/minbft.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"

using namespace consensus40;

int main() {
  std::printf("==== F14: MinBFT (USIG trusted counter) ====\n\n");
  {
    TextTable t({"protocol", "replicas for f=1", "phases", "msgs/cmd",
                 "ms/cmd"});
    // MinBFT at n = 3.
    {
      sim::NetworkOptions net;
      net.min_delay = net.max_delay = 1 * sim::kMillisecond;
      auto sim_owner =
          sim::Simulation::Builder(1).Network(net).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      crypto::KeyRegistry registry(1, 12);
      crypto::Usig usig(&registry);
      minbft::MinBftOptions opts;
      opts.n = 3;
      opts.registry = &registry;
      opts.usig = &usig;
      for (int i = 0; i < 3; ++i) sim.Spawn<minbft::MinBftReplica>(opts);
      auto* client = sim.Spawn<minbft::MinBftClient>(3, &registry, 20);
      sim.Start();
      sim::Time t0 = sim.now();
      sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
      t.AddRow({"MinBFT", "3 (= 2f+1)", "2 (prepare, commit)",
                TextTable::Num(sim.stats().messages_sent / 20.0, 1),
                TextTable::Num((sim.now() - t0) / 1000.0 / 20.0, 1)});
    }
    // PBFT at n = 4 for contrast.
    {
      sim::NetworkOptions net;
      net.min_delay = net.max_delay = 1 * sim::kMillisecond;
      auto sim_owner =
          sim::Simulation::Builder(1).Network(net).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      crypto::KeyRegistry registry(1, 12);
      pbft::PbftOptions opts;
      opts.n = 4;
      opts.registry = &registry;
      for (int i = 0; i < 4; ++i) sim.Spawn<pbft::PbftReplica>(opts);
      auto* client = sim.Spawn<pbft::PbftClient>(4, &registry, 20);
      sim.Start();
      sim::Time t0 = sim.now();
      sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
      t.AddRow({"PBFT", "4 (= 3f+1)", "3 (pre-prepare, prepare, commit)",
                TextTable::Num(sim.stats().messages_sent / 20.0, 1),
                TextTable::Num((sim.now() - t0) / 1000.0 / 20.0, 1)});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("The USIG's unique sequential identifiers stop a Byzantine\n"
                "primary from equivocating, which is what PBFT's extra phase\n"
                "and extra f replicas exist to handle: MinBFT runs Byzantine\n"
                "agreement at Paxos prices (deck: 'same number of replicas,\n"
                "communication phases and message complexity as Paxos').\n\n");
  }

  std::printf("==== F15: CheapBFT (f+1 active replicas) ====\n\n");
  {
    // Composite run: CheapTiny -> crash -> PANIC -> CheapSwitch -> MinBFT.
    sim::NetworkOptions net;
    net.min_delay = net.max_delay = 1 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(2).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(2, 12);
    crypto::Usig usig(&registry);
    cheapbft::CheapBftOptions opts;
    opts.f = 1;
    opts.registry = &registry;
    opts.usig = &usig;
    std::vector<cheapbft::CheapBftReplica*> replicas;
    for (int i = 0; i < 3; ++i) {
      replicas.push_back(sim.Spawn<cheapbft::CheapBftReplica>(opts));
    }
    auto* client = sim.Spawn<cheapbft::CheapBftClient>(1, &registry, 24);
    sim.Start();

    TextTable t({"phase", "mode at replicas", "completed", "prepares sent",
                 "virtual time"});
    auto modes = [&] {
      std::string s;
      for (auto* r : replicas) {
        if (sim.IsCrashed(r->id())) {
          s += "crashed ";
          continue;
        }
        switch (r->mode()) {
          case cheapbft::CheapMode::kCheapTiny:
            s += "tiny ";
            break;
          case cheapbft::CheapMode::kSwitching:
            s += "switching ";
            break;
          case cheapbft::CheapMode::kMinBft:
            s += "minbft ";
            break;
        }
      }
      return s;
    };
    sim.RunUntil([&] { return client->completed() >= 12; },
                 240 * sim::kSecond);
    t.AddRow({"CheapTiny steady state", modes(),
              TextTable::Int(client->completed()),
              TextTable::Int(sim.stats().sent_by_type.at("cheap-prepare")),
              TextTable::Num(sim.now() / 1000.0, 0) + "ms"});
    sim.Crash(1);  // Active replica fails: CheapTiny cannot mask it.
    sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
    t.AddRow({"after crash of active replica 1", modes(),
              TextTable::Int(client->completed()),
              TextTable::Int(sim.stats().sent_by_type.at("cheap-prepare")),
              TextTable::Num(sim.now() / 1000.0, 0) + "ms"});
    std::printf("%s\n", t.ToString().c_str());
    std::printf("In CheapTiny only f+1 = 2 replicas run agreement (the\n"
                "passive one just applies state updates); the crash forces\n"
                "a PANIC -> abort-history exchange -> MinBFT on all 2f+1,\n"
                "and the client's counter continues seamlessly: %s..%s\n",
                client->results().front().c_str(),
                client->results().back().c_str());
  }
  return 0;
}
