// F6 — Flexible Paxos: decoupled election (q1) and replication (q2)
// quorums. Sweeps the replication quorum down to 2 on a 10-node cluster
// and shows commits getting cheaper while safety (verified across a leader
// change) is preserved as long as q1 + q2 > n.

#include <cstdio>

#include "common/table.h"
#include "core/quorum.h"
#include "paxos/multi_paxos.h"
#include "paxos/paxos.h"
#include "sim/simulation.h"
#include "smr/state_machine.h"

using namespace consensus40;

namespace {

struct FlexRun {
  bool safe = true;
  bool completed = false;
  double msgs_per_cmd = 0;
  double ms_per_cmd = 0;
};

FlexRun Run(int n, int q1, int q2, uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = net.max_delay = 1 * sim::kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  paxos::MultiPaxosOptions opts;
  opts.n = n;
  opts.q1 = q1;
  opts.q2 = q2;
  std::vector<paxos::MultiPaxosReplica*> replicas;
  for (int i = 0; i < n; ++i) {
    replicas.push_back(sim.Spawn<paxos::MultiPaxosReplica>(opts));
  }
  auto* client = sim.Spawn<paxos::MultiPaxosClient>(n, 30);
  sim.Start();

  FlexRun out;
  sim.RunUntil([&] { return client->completed() >= 10; }, 120 * sim::kSecond);
  // Crash the leader mid-run: the new leader's q1 election must see every
  // q2-committed entry.
  for (auto* r : replicas) {
    if (r->IsLeader()) {
      sim.Crash(r->id());
      break;
    }
  }
  sim.stats().Reset();
  sim::Time t0 = sim.now();
  out.completed =
      sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
  if (out.completed) {
    out.msgs_per_cmd = sim.stats().messages_sent / 20.0;
    out.ms_per_cmd =
        static_cast<double>(sim.now() - t0) / sim::kMillisecond / 20.0;
  }
  std::vector<const smr::ReplicatedLog*> logs;
  for (auto* r : replicas) logs.push_back(&r->log());
  out.safe = smr::CheckPrefixConsistency(logs).empty();
  for (int i = 0; i < 30; ++i) {
    if (client->results()[i] != std::to_string(i + 1)) out.safe = false;
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "==== F6: Flexible Paxos quorum sweep (n = 10, leader crash mid-run) "
      "====\n\n");
  TextTable t({"q1 (election)", "q2 (replication)", "q1+q2>n", "completed",
               "safe across failover", "msgs/cmd", "ms/cmd"});
  int n = 10;
  for (int q2 : {6, 5, 4, 3, 2}) {
    int q1 = n - q2 + 1;
    FlexRun r = Run(n, q1, q2, 3);
    t.AddRow({TextTable::Int(q1), TextTable::Int(q2), "yes",
              r.completed ? "yes" : "NO", r.safe ? "yes" : "VIOLATED",
              TextTable::Num(r.msgs_per_cmd, 1),
              TextTable::Num(r.ms_per_cmd, 1)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "Replication quorums shrink to 2-of-10 and commits stay safe across\n"
      "a leader change because election quorums grew to 9-of-10: every\n"
      "new leader must overlap every replication quorum. The deck: 'No\n"
      "changes to Paxos algorithms' — these rows run the same\n"
      "MultiPaxosReplica code with different thresholds.\n\n"
      "Trade-off: small q2 = cheaper/faster commits but elections need\n"
      "almost every node alive (fault tolerance shifts from replication\n"
      "to election).\n\n");

  std::printf("==== F6b: LIVE grid quorums (2x3 grid, single decree) ====\n\n");
  {
    TextTable t({"scenario", "phase-1 quorum", "phase-2 quorum", "decided?"});
    auto run = [&](const char* label, std::vector<sim::NodeId> crashes) {
      core::GridQuorum grid(2, 3);
      paxos::PaxosOptions opts;
      opts.n = 6;
      opts.quorum_system = &grid;
      auto sim_owner = sim::Simulation::Builder(4).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      std::vector<paxos::PaxosNode*> nodes;
      for (int i = 0; i < 6; ++i) {
        nodes.push_back(sim.Spawn<paxos::PaxosNode>(opts));
      }
      for (sim::NodeId c : crashes) sim.Crash(c);
      sim.Start();
      nodes[0]->Propose("v");
      bool decided = sim.RunUntil(
          [&] {
            for (auto* n : nodes) {
              if (!sim.IsCrashed(n->id()) && !n->decided()) return false;
            }
            return true;
          },
          10 * sim::kSecond);
      t.AddRow({label, "one full column (2)", "one full row (3)",
                decided ? "yes" : "STALL"});
    };
    run("fault-free", {});
    run("one crash (row 1 intact)", {1});
    run("one crash per row", {1, 4});
    std::printf("%s\n", t.ToString().c_str());
    std::printf("A 2-node column elects; a 3-node row commits; neither is a\n"
                "majority of 6 — but fault tolerance becomes SHAPED: lose\n"
                "one node in each row and no replication quorum survives,\n"
                "where majority quorums would have shrugged off two crashes.\n");
  }
  return 0;
}
