// F21b — "Selfish mining and other attacks" (the deck's PoW issues slide):
// an Eyal–Sirer attacker withholds blocks to waste honest work. Revenue
// share vs hash share sweep, plus the transaction abort/resubmit lifecycle
// under forks.

#include <cstdio>
#include <memory>

#include "blockchain/miner.h"
#include "common/table.h"
#include "sim/simulation.h"

using namespace consensus40;
using namespace consensus40::blockchain;

namespace {

double SelfishRevenueShare(double alpha, uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = 50 * sim::kMillisecond;
  net.max_delay = 200 * sim::kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  MinerNetworkParams params;
  params.chain.block_interval_secs = 60;
  params.chain.retarget_interval = 1 << 20;  // Fixed difficulty.
  params.chain.halving_interval = 1u << 30;
  params.initial_hash_total = 100;
  auto* attacker = sim.Spawn<SelfishMiner>(&params, 4, alpha * 100);
  std::vector<Miner*> honest;
  for (int i = 0; i < 3; ++i) {
    honest.push_back(
        sim.Spawn<Miner>(&params, 4, (1 - alpha) * 100 / 3));
  }
  sim.Start();
  sim.RunFor(150000 * sim::kSecond);  // ~2500 blocks.
  auto rewards = honest[0]->tree().RewardsByMiner();
  int64_t total = 0;
  for (const auto& [m, r] : rewards) total += r;
  if (total == 0) return 0;
  return static_cast<double>(rewards[attacker->id()]) / total;
}

}  // namespace

int main() {
  std::printf("==== F21b: selfish mining ====\n\n");
  {
    TextTable t({"attacker hash share", "revenue share (selfish)",
                 "honest baseline", "verdict"});
    for (double alpha : {0.15, 0.25, 0.35, 0.45}) {
      double share = SelfishRevenueShare(alpha, 42);
      const char* verdict = share > alpha + 0.02
                                ? "PROFITS (above fair share)"
                                : (share < alpha - 0.02 ? "loses" : "break-even");
      t.AddRow({TextTable::Num(100 * alpha, 0) + "%",
                TextTable::Num(100 * share, 1) + "%",
                TextTable::Num(100 * alpha, 0) + "%", verdict});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("With gamma ~ 0 (honest miners stick to the first block they\n"
                "saw), withholding pays only above roughly a third of the\n"
                "network — the Eyal-Sirer threshold. Below it the attacker\n"
                "orphans its own work; above it, honest blocks get orphaned\n"
                "wholesale: 'the longest chain wins' is not incentive-proof.\n\n");
  }

  std::printf("==== transaction lifecycle across forks ====\n\n");
  {
    sim::NetworkOptions net;
    // Gossip takes about a block interval: forks are common and competing
    // blocks carry different transaction sets.
    net.min_delay = 15 * sim::kSecond;
    net.max_delay = 45 * sim::kSecond;
    auto sim_owner =
        sim::Simulation::Builder(9).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    // Transactions spread much more slowly than blocks (think: a tx
    // submitted at one edge of the network): competing fork branches then
    // genuinely disagree about which transactions they confirmed.
    sim.SetDelayFn([&sim](const sim::Envelope& e) -> sim::Duration {
      if (e.from == e.to) return 0;
      if (std::string(e.msg->TypeName()) == "tx") {
        return 200 * sim::kSecond +
               static_cast<sim::Duration>(
                   sim.rng().NextBounded(400 * sim::kSecond));
      }
      return 15 * sim::kSecond +
             static_cast<sim::Duration>(
                 sim.rng().NextBounded(30 * sim::kSecond));
    });
    MinerNetworkParams params;
    params.chain.block_interval_secs = 40;
    params.chain.retarget_interval = 1 << 20;
    params.chain.halving_interval = 1u << 30;
    params.initial_hash_total = 4;
    params.block_tx_limit = 2;
    std::vector<Miner*> miners;
    for (int i = 0; i < 4; ++i) {
      miners.push_back(sim.Spawn<Miner>(&params, 4, 1.0));
    }
    sim.Start();
    // Clients drip transactions into single miners; with slow gossip each
    // transaction initially exists in only one miner's pool.
    for (int k = 0; k < 200; ++k) {
      sim.ScheduleAfter((100 + 150ll * k) * sim::kSecond, [&, k] {
        Transaction tx;
        tx.payload = "pay #" + std::to_string(k);
        tx.amount = k;
        tx.fee = 1 + k % 5;
        miners[k % 4]->SubmitTransaction(tx);
      });
    }
    sim.RunFor(60000 * sim::kSecond);

    TextTable t({"miner", "confirmed txs", "pending txs",
                 "aborted/resubmitted (reorgs)"});
    for (Miner* m : miners) {
      t.AddRow({TextTable::Int(m->id()),
                TextTable::Int(static_cast<int64_t>(
                    m->mempool().confirmed_count())),
                TextTable::Int(static_cast<int64_t>(
                    m->mempool().pending_count())),
                TextTable::Int(m->mempool().resubmissions())});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("stale blocks: %d, reorgs: %d — every transaction that rode\n"
                "a losing fork went back to the mempool and was re-mined\n"
                "(the deck: 'transactions in this block are aborted /\n"
                "resubmitted'); none were lost or double-confirmed.\n",
                miners[0]->tree().StaleBlocks(), miners[0]->tree().reorgs());
  }
  return 0;
}
