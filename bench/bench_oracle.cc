// F19b — The deck's full "How to circumvent FLP?" slide, executable:
//   1. sacrifice determinism              -> Ben-Or (bench_flp_benor)
//   2. add synchrony assumptions          -> FloodSet (fully synchronous)
//   3. add an oracle (failure detector)   -> Chandra-Toueg consensus
//   4. change the problem domain          -> approximate agreement
// This bench covers #2, #3 and #4 (Ben-Or has its own binary).

#include <cstdio>

#include "agreement/approximate.h"
#include "agreement/floodset.h"
#include "common/table.h"
#include "oracle/ct_consensus.h"
#include "sim/simulation.h"

using namespace consensus40;

int main() {
  std::printf("==== F19b: circumventing FLP with synchrony or an oracle ====\n\n");

  std::printf("-- #2 synchrony: FloodSet consensus (f+1 rounds, crash faults) --\n");
  {
    TextTable t({"n", "f (chained crashers)", "rounds run", "agreement"});
    for (int f : {1, 2, 3}) {
      int n = f + 4;
      std::vector<std::string> values;
      for (int i = 0; i < n; ++i) values.push_back("v" + std::to_string(i));
      agreement::CrashPlan plan;
      plan.crash_round.assign(n, 1 << 20);
      plan.reach.assign(n, n);
      for (int i = 0; i < f; ++i) {
        plan.crash_round[i] = i + 1;
        plan.reach[i] = i + 2;  // Worst case: value handed down a chain.
      }
      auto good = agreement::RunFloodSet(values, plan, f + 1);
      auto bad = agreement::RunFloodSet(values, plan, f);
      t.AddRow({TextTable::Int(n), TextTable::Int(f),
                TextTable::Int(f + 1) + " (= f+1)",
                agreement::FloodSetAgreement(good, plan, f + 1) ? "yes"
                                                                : "NO"});
      t.AddRow({TextTable::Int(n), TextTable::Int(f),
                TextTable::Int(f) + " (one short)",
                agreement::FloodSetAgreement(bad, plan, f) ? "yes (lucky)"
                                                           : "VIOLATED"});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Synchronous rounds buy deterministic consensus in exactly\n"
                "f+1 rounds; one round fewer and the adversarial crash chain\n"
                "splits the values — both directions of the classic bound.\n\n");
  }

  std::printf("-- #3 oracle: Chandra-Toueg with a heartbeat failure detector --\n");
  {
    TextTable t({"scenario", "decided", "rounds", "false suspicions",
                 "virtual time"});
    auto run = [&](const char* label, int crash_at_start, bool jumpy) {
      auto sim_owner = sim::Simulation::Builder(7).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      oracle::CtOptions opts;
      opts.n = 5;
      if (jumpy) {
        opts.detector.initial_timeout = 6 * sim::kMillisecond;
        opts.detector.timeout_increment = 5 * sim::kMillisecond;
      }
      std::vector<oracle::CtNode*> nodes;
      for (int i = 0; i < 5; ++i) {
        nodes.push_back(sim.Spawn<oracle::CtNode>(opts,
                                                  "v" + std::to_string(i)));
      }
      if (crash_at_start >= 0) sim.Crash(crash_at_start);
      sim.Start();
      bool decided = sim.RunUntil(
          [&] {
            for (auto* n : nodes) {
              if (!sim.IsCrashed(n->id()) && !n->decided()) return false;
            }
            return true;
          },
          240 * sim::kSecond);
      int rounds = 0, suspicions = 0;
      for (auto* n : nodes) {
        rounds = std::max(rounds, n->round());
        suspicions += n->false_suspicions();
      }
      t.AddRow({label, decided ? "yes" : "NO", TextTable::Int(rounds),
                TextTable::Int(suspicions),
                TextTable::Num(sim.now() / 1000.0, 0) + "ms"});
    };
    run("fault-free", -1, false);
    run("round-0 coordinator dead", 0, false);
    run("hyper-jumpy detector (all suspicions false)", -1, true);
    std::printf("%s\n", t.ToString().c_str());
    std::printf("The detector is allowed to be wrong (jumpy row): safety\n"
                "never depends on it — the majority-ack lock protects the\n"
                "decided value, Paxos-style. Only termination needs the\n"
                "detector to be *eventually* accurate, which the adaptive\n"
                "timeout guarantees. That is precisely the deck's 'adding\n"
                "oracle' escape from FLP.\n\n");
  }

  std::printf("-- #4 change the problem: approximate agreement --\n");
  {
    TextTable t({"rounds", "value spread (7 nodes, 1 crash, async)"});
    std::vector<double> initial = {1.0, 9.0, 5.0, 3.0, 7.0, 2.0, 8.0};
    for (int rounds : {0, 2, 4, 6, 8, 10}) {
      auto sim_owner = sim::Simulation::Builder(17).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      agreement::ApproxOptions opts;
      opts.n = 7;
      std::vector<agreement::ApproxAgreementNode*> nodes;
      for (double v : initial) {
        nodes.push_back(
            sim.Spawn<agreement::ApproxAgreementNode>(opts, v, rounds));
      }
      sim.Start();
      sim.ScheduleAfter(2 * sim::kMillisecond, [&] { sim.Crash(3); });
      sim.RunUntil(
          [&] {
            for (auto* n : nodes) {
              if (!sim.IsCrashed(n->id()) && !n->halted()) return false;
            }
            return true;
          },
          240 * sim::kSecond);
      double lo = 1e300, hi = -1e300;
      for (auto* n : nodes) {
        if (sim.IsCrashed(n->id())) continue;
        lo = std::min(lo, n->value());
        hi = std::max(hi, n->value());
      }
      t.AddRow({TextTable::Int(rounds), TextTable::Num(hi - lo, 4)});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Exact agreement is impossible under asynchrony (FLP), but\n"
                "agreement to within epsilon is not a consensus problem at\n"
                "all: the trimmed-midpoint iteration halves the spread each\n"
                "round, deterministically, with a crash fault and arbitrary\n"
                "delays — 'change the problem domain (range of values)'.\n");
  }
  return 0;
}
