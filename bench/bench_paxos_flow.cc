// F1 + F2 — Basic Paxos message-flow figures.
//
// Scenario 1 re-draws the deck's prepare/ack/accept/accepted/decide flow
// as a trace. Scenario 2 reproduces the leader-crash figure: the value is
// chosen, the leader dies, and the new leader *must* recover v through
// AcceptNum/AcceptVal.

#include <cstdio>
#include <string>

#include "paxos/paxos.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

void TraceRun(sim::Simulation* sim, const char* label) {
  std::printf("---- %s ----\n", label);
  sim->SetTraceFn([](const sim::Envelope& e, sim::Time t) {
    std::printf("  t=%2lldms  %d -> %d  %s\n",
                static_cast<long long>(t / sim::kMillisecond), e.from, e.to,
                e.msg->TypeName());
  });
}

}  // namespace

int main() {
  std::printf("==== F1: Basic Paxos flow (n = 3, fixed 1ms hops) ====\n\n");
  {
    sim::NetworkOptions net;
    net.min_delay = net.max_delay = 1 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(1).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    paxos::PaxosOptions opts;
    opts.n = 3;
    std::vector<paxos::PaxosNode*> nodes;
    for (int i = 0; i < 3; ++i) nodes.push_back(sim.Spawn<paxos::PaxosNode>(opts));
    sim.Start();
    TraceRun(&sim, "node 0 proposes \"v\"");
    nodes[0]->Propose("v");
    sim.RunUntil(
        [&] {
          for (auto* n : nodes) {
            if (!n->decided()) return false;
          }
          return true;
        },
        5 * sim::kSecond);
    std::printf("  => all decided '%s' after %lldms (2 phases + decide)\n\n",
                nodes[2]->decided()->c_str(),
                static_cast<long long>(sim.now() / sim::kMillisecond));
  }

  std::printf("==== F2: leader crash, new leader recovers the chosen value ====\n\n");
  {
    sim::NetworkOptions net;
    net.min_delay = net.max_delay = 1 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(2).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    paxos::PaxosOptions opts;
    opts.n = 5;
    std::vector<paxos::PaxosNode*> nodes;
    for (int i = 0; i < 5; ++i) nodes.push_back(sim.Spawn<paxos::PaxosNode>(opts));
    sim.Start();
    nodes[0]->Propose("v-chosen");
    // Run until a majority accepted, then kill the leader before it can
    // broadcast the decision everywhere.
    sim.RunUntil(
        [&] {
          int acc = 0;
          for (auto* n : nodes) acc += (n->accept_val() ? 1 : 0);
          return acc >= 3;
        },
        5 * sim::kSecond);
    std::printf("majority accepted 'v-chosen'; crashing leader 0\n");
    sim.Crash(0);

    std::printf("acceptor state after crash:\n");
    for (auto* n : nodes) {
      std::printf("  node %d: AcceptNum=%s AcceptVal=%s\n", n->id(),
                  n->accept_num().ToString().c_str(),
                  n->accept_val() ? n->accept_val()->c_str() : "^");
    }

    TraceRun(&sim, "node 1 proposes a DIFFERENT value \"usurper\"");
    nodes[1]->Propose("usurper");
    sim.RunUntil([&] { return nodes[1]->decided().has_value(); },
                 10 * sim::kSecond);
    std::printf(
        "  => node 1 decided '%s' — phase 1 returned the accepted value "
        "with the highest AcceptNum, exactly the deck's recovery rule\n",
        nodes[1]->decided()->c_str());
  }
  return 0;
}
