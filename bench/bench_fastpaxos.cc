// F5 — Fast Paxos: 2 message delays instead of 3, fast quorums of 2f+1
// out of 3f+1, and collision recovery through a classic round.

#include <cstdio>

#include "common/table.h"
#include "paxos/fast_paxos.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

struct FpRun {
  sim::Time leader_learned = -1;
  int classic_rounds = 0;
  bool decided = false;
};

FpRun Run(int n, int clients, sim::Duration spread, uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = 1 * sim::kMillisecond;
  net.max_delay = 1 * sim::kMillisecond + spread;
  auto sim_owner =
      sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  paxos::FastPaxosOptions opts;
  opts.n = n;
  std::vector<paxos::FastPaxosAcceptor*> acceptors;
  for (int i = 0; i < n; ++i) {
    acceptors.push_back(sim.Spawn<paxos::FastPaxosAcceptor>(opts));
  }
  for (int c = 0; c < clients; ++c) {
    sim.Spawn<paxos::FastPaxosClient>(n, "value-" + std::to_string(c),
                                      10 * sim::kMillisecond);
  }
  sim.Start();
  FpRun out;
  out.decided = sim.RunUntil(
      [&] { return acceptors[0]->chosen().has_value(); }, 10 * sim::kSecond);
  out.leader_learned = acceptors[0]->chosen_at();
  out.classic_rounds = acceptors[0]->classic_rounds();
  return out;
}

}  // namespace

int main() {
  std::printf("==== F5: Fast Paxos (n = 3f+1, fast quorum = 2f+1) ====\n\n");

  std::printf("-- fast round: client -> acceptors -> leader (2 delays) --\n");
  TextTable t({"n", "f", "clients", "leader learned after", "classic rounds"});
  for (int n : {4, 7, 10}) {
    FpRun r = Run(n, 1, 0, 1);
    t.AddRow({TextTable::Int(n), TextTable::Int((n - 1) / 3), "1",
              TextTable::Num((r.leader_learned - 10000) / 1000.0, 0) +
                  "ms (= 2 hops)",
              TextTable::Int(r.classic_rounds)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Basic Paxos needs 3 hops for the same journey (client ->\n"
              "leader -> acceptors -> leader). Fast Paxos trades f extra\n"
              "replicas (3f+1, not 2f+1) for the saved delay.\n\n");

  std::printf("-- collisions: concurrent clients force classic recovery --\n");
  TextTable c({"concurrent clients", "runs", "collision rate",
               "avg classic rounds", "all decided"});
  for (int clients : {1, 2, 3, 4}) {
    int collisions = 0, total_classic = 0, decided = 0;
    const int kRuns = 20;
    for (uint64_t seed = 1; seed <= kRuns; ++seed) {
      FpRun r = Run(4, clients, 2 * sim::kMillisecond, seed);
      collisions += (r.classic_rounds > 0);
      total_classic += r.classic_rounds;
      decided += r.decided;
    }
    c.AddRow({TextTable::Int(clients), TextTable::Int(kRuns),
              TextTable::Num(100.0 * collisions / kRuns, 0) + "%",
              TextTable::Num(static_cast<double>(total_classic) / kRuns, 2),
              decided == kRuns ? "yes" : "NO"});
  }
  std::printf("%s\n", c.ToString().c_str());
  std::printf("With one client the fast round always succeeds; concurrent\n"
              "writers split the acceptors ('Collision happens!') and the\n"
              "coordinator picks the majority value — if any — in a classic\n"
              "round, exactly the deck's recovery figure.\n");
  return 0;
}
