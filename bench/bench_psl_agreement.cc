// F10 — Pease–Shostak–Lamport interactive consistency: the deck's Case I
// (N = 4, f = 1: agreement) and Case II (N = 3, f = 1: everything
// UNKNOWN), plus a sweep across n.

#include <cstdio>

#include "agreement/interactive_consistency.h"
#include "common/table.h"

using namespace consensus40;
using namespace consensus40::agreement;

namespace {

std::vector<std::string> Values(int n) {
  std::vector<std::string> values;
  for (int i = 0; i < n; ++i) values.push_back(std::to_string(i + 1));
  return values;
}

std::string Render(const std::string& v) {
  return v == kUnknown ? "UNKNOWN" : v;
}

}  // namespace

int main() {
  std::printf("==== F10: reaching agreement in the presence of faults ====\n\n");

  std::printf("-- Case I: N = 4, f = 1 (process 3 is the liar) --\n");
  {
    auto results = RunInteractiveConsistency(4, Values(4), {3}, DefaultLiar());
    for (int p = 0; p < 3; ++p) {
      std::printf("process %d result vector: (", p + 1);
      for (int i = 0; i < 4; ++i) {
        std::printf("%s%s", Render(results[p][i]).c_str(),
                    i == 3 ? "" : ", ");
      }
      std::printf(")\n");
    }
    std::printf("agree: %s, correct values recovered: %s\n\n",
                VectorsAgree(results, {3}) ? "yes" : "NO",
                CorrectValuesRecovered(results, Values(4), {3}) ? "yes" : "NO");
  }

  std::printf("-- Case II: N = 3, f = 1 --\n");
  {
    auto results = RunInteractiveConsistency(3, Values(3), {2}, DefaultLiar());
    for (int p = 0; p < 2; ++p) {
      std::printf("process %d result vector: (", p + 1);
      for (int i = 0; i < 3; ++i) {
        std::printf("%s%s", Render(results[p][i]).c_str(),
                    i == 2 ? "" : ", ");
      }
      std::printf(")\n");
    }
    std::printf("=> the deck's (UNKNOWN, UNKNOWN, UNKNOWN): n = 3f is not\n"
                "   enough — hence the 3f+1 lower bound.\n\n");
  }

  std::printf("-- sweep: one Byzantine process, n = 3..10 --\n");
  TextTable t({"n", "f", "3f+1 satisfied", "vectors agree",
               "honest values recovered"});
  for (int n = 3; n <= 10; ++n) {
    std::set<int> faulty = {n - 1};
    auto results = RunInteractiveConsistency(n, Values(n), faulty,
                                             DefaultLiar());
    t.AddRow({TextTable::Int(n), "1", n >= 4 ? "yes" : "no",
              VectorsAgree(results, faulty) ? "yes" : "NO",
              CorrectValuesRecovered(results, Values(n), faulty) ? "yes"
                                                                 : "NO"});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Agreement is possible exactly when more than two-thirds of\n"
              "the processes work properly (Pease, Shostak, Lamport 1980).\n");
  return 0;
}
