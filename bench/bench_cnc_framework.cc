// F9 — The C&C (Consensus & Commitment) framework: the paper's claim that
// leader-based agreement protocols decompose into
//   Leader Election -> Value Discovery -> Fault-tolerant Agreement ->
//   Decision.
// We run Basic Paxos and 3PC through the same tracer with their message
// types tagged by phase and print the annotated flows + phase sequences.

#include <cstdio>

#include "commit/three_phase_commit.h"
#include "core/cnc.h"
#include "paxos/paxos.h"
#include "sim/simulation.h"

using namespace consensus40;
using core::CncPhase;
using core::CncPhaseMap;
using core::CncTracer;

namespace {

void PrintPhases(const CncTracer& tracer) {
  std::printf("phase sequence: ");
  for (CncPhase p : tracer.PhaseSequence()) {
    std::printf("[%s] ", core::ToString(p));
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("==== F9: the C&C framework ====\n\n");

  std::printf("-- Basic Paxos through the C&C lens --\n");
  {
    CncPhaseMap map;
    // Phase 1 doubles as leader election and value discovery: the prepare
    // elects, the acks discover previously accepted values.
    map.Tag("prepare", CncPhase::kLeaderElection);
    map.Tag("prepare-ack", CncPhase::kValueDiscovery);
    map.Tag("accept", CncPhase::kFaultTolerantAgreement);
    map.Tag("accepted", CncPhase::kFaultTolerantAgreement);
    map.Tag("decide", CncPhase::kDecision);
    CncTracer tracer(map);

    sim::NetworkOptions net;
    net.min_delay = net.max_delay = 1 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(1).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    tracer.Attach(&sim);
    paxos::PaxosOptions opts;
    opts.n = 3;
    std::vector<paxos::PaxosNode*> nodes;
    for (int i = 0; i < 3; ++i) nodes.push_back(sim.Spawn<paxos::PaxosNode>(opts));
    sim.Start();
    nodes[0]->Propose("v");
    sim.RunUntil([&] { return nodes[2]->decided().has_value(); },
                 5 * sim::kSecond);
    std::printf("%s", tracer.ToString().c_str());
    PrintPhases(tracer);
  }

  std::printf("-- 3PC through the C&C lens --\n");
  {
    CncPhaseMap map;
    // The 3PC coordinator is pre-elected (leader election implicit); the
    // can-commit/vote round discovers the value (the commit/abort verdict),
    // pre-commit replicates it fault-tolerantly, do-commit decides.
    map.Tag("3pc-can-commit", CncPhase::kValueDiscovery);
    map.Tag("3pc-vote", CncPhase::kValueDiscovery);
    map.Tag("3pc-pre-commit", CncPhase::kFaultTolerantAgreement);
    map.Tag("3pc-pre-commit-ack", CncPhase::kFaultTolerantAgreement);
    map.Tag("3pc-do-commit", CncPhase::kDecision);
    map.Tag("3pc-state-req", CncPhase::kLeaderElection);
    CncTracer tracer(map);

    sim::NetworkOptions net;
    net.min_delay = net.max_delay = 1 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(2).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    tracer.Attach(&sim);
    std::vector<commit::ThreePcParticipant*> cohorts;
    for (int i = 0; i < 3; ++i) {
      cohorts.push_back(sim.Spawn<commit::ThreePcParticipant>());
    }
    auto* coord = sim.Spawn<commit::ThreePcCoordinator>();
    sim.Start();
    commit::Transaction tx;
    tx.tx_id = 1;
    tx.ops = {{0, "PUT a 1"}, {1, "PUT b 1"}, {2, "PUT c 1"}};
    coord->Begin(tx);
    sim.RunUntil(
        [&] {
          return cohorts[0]->state(1) == commit::TxState::kCommitted;
        },
        10 * sim::kSecond);
    std::printf("%s", tracer.ToString().c_str());
    PrintPhases(tracer);
  }

  std::printf(
      "Both protocols traverse Value Discovery -> Fault-tolerant Agreement\n"
      "-> Decision; Paxos runs Leader Election explicitly up front while\n"
      "3PC's coordinator is pre-designated (and re-elected only by the\n"
      "termination protocol after a failure) — the deck's C&C point.\n");
  return 0;
}
