// T3 — The empirical fault-tolerance matrix: every SMR protocol in the
// library, every crash count from 0 to n-1, measured verdict. The deck's
// "2f+1 vs 3f+1 vs f+1" arithmetic, checked by actually killing replicas.

#include <cstdio>
#include <functional>
#include <memory>

#include "common/table.h"
#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "minbft/minbft.h"
#include "paxos/multi_paxos.h"
#include "pbft/pbft.h"
#include "raft/raft.h"
#include "sim/simulation.h"
#include "xft/xft.h"

using namespace consensus40;

namespace {

/// Runs a protocol with `crashes` replicas down from the start; returns
/// true if a 6-op workload completes.
using Runner = std::function<bool(int crashes)>;

}  // namespace

int main() {
  std::printf("==== T3: empirical fault-tolerance matrix ====\n\n");
  std::printf("Each cell: crash k replicas from the start, run 6 commands,\n"
              "30 virtual seconds of budget. ok = completed, STALL = not.\n\n");

  struct Row {
    const char* name;
    const char* formula;
    int n;
    Runner run;
  };

  std::vector<Row> rows;

  rows.push_back({"Multi-Paxos", "2f+1 (n=5: f=2)", 5, [](int crashes) {
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    paxos::MultiPaxosOptions opts;
    opts.n = 5;
    for (int i = 0; i < 5; ++i) sim.Spawn<paxos::MultiPaxosReplica>(opts);
    auto* client = sim.Spawn<paxos::MultiPaxosClient>(5, 6);
    for (int k = 0; k < crashes; ++k) sim.Crash(4 - k);
    sim.Start();
    return sim.RunUntil([&] { return client->done(); }, 30 * sim::kSecond);
  }});

  rows.push_back({"Raft", "2f+1 (n=5: f=2)", 5, [](int crashes) {
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    raft::RaftOptions opts;
    opts.n = 5;
    for (int i = 0; i < 5; ++i) sim.Spawn<raft::RaftReplica>(opts);
    auto* client = sim.Spawn<raft::RaftClient>(5, 6);
    for (int k = 0; k < crashes; ++k) sim.Crash(4 - k);
    sim.Start();
    return sim.RunUntil([&] { return client->done(); }, 30 * sim::kSecond);
  }});

  rows.push_back({"PBFT", "3f+1 (n=7: f=2)", 7, [](int crashes) {
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(3, 16);
    pbft::PbftOptions opts;
    opts.n = 7;
    opts.registry = &registry;
    for (int i = 0; i < 7; ++i) sim.Spawn<pbft::PbftReplica>(opts);
    auto* client = sim.Spawn<pbft::PbftClient>(7, &registry, 6);
    for (int k = 0; k < crashes; ++k) sim.Crash(6 - k);
    sim.Start();
    return sim.RunUntil([&] { return client->done(); }, 30 * sim::kSecond);
  }});

  rows.push_back({"MinBFT", "2f+1 (n=5: f=2)", 5, [](int crashes) {
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(3, 16);
    crypto::Usig usig(&registry);
    minbft::MinBftOptions opts;
    opts.n = 5;
    opts.registry = &registry;
    opts.usig = &usig;
    for (int i = 0; i < 5; ++i) sim.Spawn<minbft::MinBftReplica>(opts);
    auto* client = sim.Spawn<minbft::MinBftClient>(5, &registry, 6);
    for (int k = 0; k < crashes; ++k) sim.Crash(4 - k);
    sim.Start();
    return sim.RunUntil([&] { return client->done(); }, 30 * sim::kSecond);
  }});

  rows.push_back({"HotStuff", "3f+1 (n=7: f=2)", 7, [](int crashes) {
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(3, 16);
    hotstuff::HotStuffOptions opts;
    opts.n = 7;
    opts.registry = &registry;
    for (int i = 0; i < 7; ++i) sim.Spawn<hotstuff::HotStuffReplica>(opts);
    auto* client = sim.Spawn<hotstuff::HotStuffClient>(7, &registry, 6);
    for (int k = 0; k < crashes; ++k) sim.Crash(6 - k);
    sim.Start();
    return sim.RunUntil([&] { return client->done(); }, 60 * sim::kSecond);
  }});

  rows.push_back({"XFT", "2f+1 (n=5: f=2)", 5, [](int crashes) {
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(3, 16);
    xft::XftOptions opts;
    opts.n = 5;
    opts.registry = &registry;
    for (int i = 0; i < 5; ++i) sim.Spawn<xft::XftReplica>(opts);
    auto* client = sim.Spawn<xft::XftClient>(5, &registry, 6);
    for (int k = 0; k < crashes; ++k) sim.Crash(4 - k);
    sim.Start();
    return sim.RunUntil([&] { return client->done(); }, 60 * sim::kSecond);
  }});

  int max_n = 7;
  std::vector<std::string> headers = {"protocol", "replicas (formula)"};
  for (int k = 0; k <= max_n - 1; ++k) {
    headers.push_back(std::to_string(k) + " down");
  }
  TextTable t(headers);
  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.name, row.formula};
    for (int k = 0; k <= max_n - 1; ++k) {
      if (k >= row.n) {
        cells.push_back("-");
        continue;
      }
      cells.push_back(row.run(k) ? "ok" : "STALL");
    }
    t.AddRow(cells);
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "The boundaries land exactly on the deck's arithmetic: majority\n"
      "protocols survive f = floor((n-1)/2) crashes; PBFT/HotStuff need\n"
      "2f+1 of 3f+1 alive, so they stall one crash EARLIER than a\n"
      "same-size majority system would — the price of Byzantine quorums.\n"
      "MinBFT's USIG buys the crash-style boundary back. (Safety held in\n"
      "every cell; the matrix is about liveness.)\n");
  return 0;
}
