// F4 — Multi-Paxos steady state and the deck's optimization: "run Phase 1
// only when the leader changes".
//
// The ablation re-runs phase 1 before EVERY command (full Basic Paxos per
// log entry) and shows what the optimization buys: ~2 fewer message delays
// and many fewer messages per command.

#include <cstdio>

#include "common/table.h"
#include "paxos/multi_paxos.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

struct RunResult {
  double ms_per_cmd;
  double msgs_per_cmd;
  int phase1_rounds;
};

RunResult Run(bool skip_phase1, int n, int ops) {
  sim::NetworkOptions net;
  net.min_delay = net.max_delay = 1 * sim::kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(7).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  paxos::MultiPaxosOptions opts;
  opts.n = n;
  opts.skip_phase1_when_stable = skip_phase1;
  std::vector<paxos::MultiPaxosReplica*> replicas;
  for (int i = 0; i < n; ++i) {
    replicas.push_back(sim.Spawn<paxos::MultiPaxosReplica>(opts));
  }
  auto* client = sim.Spawn<paxos::MultiPaxosClient>(n, ops);
  sim.Start();
  // Warm up leadership on the first 20% of ops, measure the rest.
  int warmup = ops / 5;
  sim.RunUntil([&] { return client->completed() >= warmup; },
               120 * sim::kSecond);
  sim.stats().Reset();
  sim::Time t0 = sim.now();
  sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
  double cmds = ops - warmup;
  int phase1 = 0;
  for (auto* r : replicas) phase1 += r->phase1_rounds();
  const auto& types = sim.stats().sent_by_type;
  uint64_t useful = 0;
  for (const char* type :
       {"request", "prepare", "promise", "accept", "accepted", "commit",
        "reply"}) {
    auto it = types.find(type);
    if (it != types.end()) useful += it->second;
  }
  return {static_cast<double>(sim.now() - t0) / sim::kMillisecond / cmds,
          useful / cmds, phase1};
}

}  // namespace

int main() {
  std::printf("==== F4: Multi-Paxos phase-1-skip optimization (n=5) ====\n\n");
  TextTable t({"variant", "latency/cmd (ms)", "msgs/cmd",
               "phase-1 rounds (50 cmds)"});
  RunResult fast = Run(true, 5, 50);
  RunResult slow = Run(false, 5, 50);
  t.AddRow({"phase 1 on leader change only", TextTable::Num(fast.ms_per_cmd, 1),
            TextTable::Num(fast.msgs_per_cmd, 1),
            TextTable::Int(fast.phase1_rounds)});
  t.AddRow({"phase 1 before every command", TextTable::Num(slow.ms_per_cmd, 1),
            TextTable::Num(slow.msgs_per_cmd, 1),
            TextTable::Int(slow.phase1_rounds)});
  std::printf("%s\n", t.ToString().c_str());
  std::printf("The stable-leader fast path runs pure phase 2 (accept +\n"
              "accepted + commit); the ablation pays a fresh prepare/promise\n"
              "round per entry — the deck's motivation for calling phase 1\n"
              "the 'view change / recovery mode'.\n\n");

  std::printf("==== F4b: steady-state scaling with cluster size ====\n\n");
  TextTable scale({"n", "latency/cmd (ms)", "msgs/cmd"});
  for (int n : {3, 5, 7, 9}) {
    RunResult r = Run(true, n, 40);
    scale.AddRow({TextTable::Int(n), TextTable::Num(r.ms_per_cmd, 1),
                  TextTable::Num(r.msgs_per_cmd, 1)});
  }
  std::printf("%s\n", scale.ToString().c_str());
  std::printf("Messages grow linearly with n (accept/accepted/commit fan-out)\n"
              "while latency stays flat — the deck's O(N), 2-phase card.\n");
  return 0;
}
