// Simulator-core micro-benchmark: how fast does the discrete-event engine
// itself run, and how much heap does it burn per event? Every figure in
// EXPERIMENTS.md is produced by this engine, so its events/sec caps the n and
// the virtual horizon every protocol bench can explore.
//
// Three workloads stress the three hot paths:
//   ping-pong storm   — unicast send + delivery + rng delay draw
//   multicast storm   — one sender fanning out to 100 receivers per round
//   timer churn       — SetTimer / CancelTimer / fire cycling
//
// Events are counted at the application level (OnMessage calls + timer
// fires), so the number is identical across engine rewrites: only the wall
// clock and the allocation counters move. Results go to stdout and to
// BENCH_simcore.json in the working directory so later PRs can track the
// trajectory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/simulation.h"

// Global allocation counters. Overriding operator new in the benchmark
// binary counts every heap allocation made by the engine under test without
// external tooling; the steady state of a well-behaved event loop should add
// ~0 bytes/event.
namespace {
uint64_t g_heap_bytes = 0;
uint64_t g_heap_allocs = 0;
bool g_counting = false;
}  // namespace

void* operator new(std::size_t n) {
  if (g_counting) {
    g_heap_bytes += n;
    ++g_heap_allocs;
  }
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace consensus40;

namespace {

uint64_t g_app_events = 0;  // The simulation is single-threaded.

struct Ping : sim::Message {
  const char* TypeName() const override { return "bench-ping"; }
  int ByteSize() const override { return 64; }
};
struct Pong : sim::Message {
  const char* TypeName() const override { return "bench-pong"; }
  int ByteSize() const override { return 64; }
};
struct Blast : sim::Message {
  const char* TypeName() const override { return "bench-blast"; }
  int ByteSize() const override { return 256; }
};
struct Ack : sim::Message {
  const char* TypeName() const override { return "bench-ack"; }
  int ByteSize() const override { return 32; }
};

/// Replies pong to every ping, forever. The reply payload is immutable and
/// built once: the workload measures the engine, not make_shared churn.
class Echoer : public sim::Process {
 public:
  void OnMessage(sim::NodeId from, const sim::Message&) override {
    ++g_app_events;
    Send(from, pong_);
  }

 private:
  sim::MessagePtr pong_ = std::make_shared<Pong>();
};

/// Fires a ping at its echoer on start and again on every pong: a
/// self-sustaining round-trip chain.
class Stormer : public sim::Process {
 public:
  explicit Stormer(sim::NodeId target) : target_(target) {}
  void OnStart() override { Send(target_, ping_); }
  void OnMessage(sim::NodeId, const sim::Message&) override {
    ++g_app_events;
    Send(target_, ping_);
  }

 private:
  sim::NodeId target_;
  sim::MessagePtr ping_ = std::make_shared<Ping>();
};

/// Multicast-storm coordinator: blasts all receivers, waits for every ack,
/// immediately blasts again.
class Blaster : public sim::Process {
 public:
  explicit Blaster(std::vector<sim::NodeId> targets)
      : targets_(std::move(targets)) {}
  void OnStart() override { Blast_(); }
  void OnMessage(sim::NodeId, const sim::Message&) override {
    ++g_app_events;
    if (++acks_ == static_cast<int>(targets_.size())) {
      acks_ = 0;
      Blast_();
    }
  }

 private:
  void Blast_() { Multicast(targets_, blast_); }
  std::vector<sim::NodeId> targets_;
  sim::MessagePtr blast_ = std::make_shared<Blast>();
  int acks_ = 0;
};

/// Multicast-storm receiver: acks every blast.
class Acker : public sim::Process {
 public:
  void OnMessage(sim::NodeId from, const sim::Message&) override {
    ++g_app_events;
    Send(from, ack_);
  }

 private:
  sim::MessagePtr ack_ = std::make_shared<Ack>();
};

/// Timer churn: every firing schedules two successors and cancels one of
/// them, so SetTimer runs twice and CancelTimer once per fire while the live
/// timer population stays constant.
class TimerChurner : public sim::Process {
 public:
  void OnStart() override { Arm_(); }
  void OnMessage(sim::NodeId, const sim::Message&) override {}

 private:
  void Arm_() {
    uint64_t doomed = SetTimer(2 * sim::kMillisecond, [] {});
    SetTimer(1 * sim::kMillisecond, [this] {
      ++g_app_events;
      Arm_();
    });
    CancelTimer(doomed);
  }
};

struct WorkloadResult {
  std::string name;
  uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  double bytes_per_event = 0;
  double allocs_per_event = 0;
  uint64_t messages_sent = 0;
};

constexpr int kRepetitions = 7;

// Runs the workload kRepetitions times (fresh simulation each time — the
// engine is deterministic, so the event counts are identical) and keeps the
// fastest run: best-of-N is the standard guard against scheduler noise in
// throughput microbenchmarks.
template <typename SetupFn>
WorkloadResult RunWorkload(const std::string& name, sim::NetworkOptions net,
                           sim::Duration horizon, SetupFn setup) {
  WorkloadResult best;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto sim_owner =
        sim::Simulation::Builder(/*seed=*/42).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    setup(sim);
    sim.Start();
    // Warm-up: let slabs, queues, and stat tables reach steady-state size
    // before the counters start.
    sim.RunFor(horizon / 10);

    g_app_events = 0;
    g_heap_bytes = 0;
    g_heap_allocs = 0;
    g_counting = true;
    auto t0 = std::chrono::steady_clock::now();
    sim.RunFor(horizon);
    auto t1 = std::chrono::steady_clock::now();
    g_counting = false;

    WorkloadResult r;
    r.name = name;
    r.events = g_app_events;
    r.wall_s = std::chrono::duration<double>(t1 - t0).count();
    r.events_per_sec = r.wall_s > 0 ? r.events / r.wall_s : 0;
    r.bytes_per_event =
        r.events > 0 ? static_cast<double>(g_heap_bytes) / r.events : 0;
    r.allocs_per_event =
        r.events > 0 ? static_cast<double>(g_heap_allocs) / r.events : 0;
    r.messages_sent = sim.stats().messages_sent;
    if (rep == 0 || r.events_per_sec > best.events_per_sec) best = r;
  }
  return best;
}

WorkloadResult PingPongStorm() {
  // 64 sustained round-trip chains under the default 1–5 ms jittered
  // network: unicast path + per-message rng draw.
  return RunWorkload("ping_pong_storm", sim::NetworkOptions(),
                     60 * sim::kSecond, [](sim::Simulation& sim) {
                       for (int i = 0; i < 64; ++i) {
                         auto* echo = sim.Spawn<Echoer>();
                         sim.Spawn<Stormer>(echo->id());
                       }
                     });
}

WorkloadResult MulticastStorm() {
  // One coordinator fanning out to 100 receivers per round over a fixed
  // 1 ms network: the Multicast + per-type accounting path.
  sim::NetworkOptions net;
  net.min_delay = net.max_delay = 1 * sim::kMillisecond;
  return RunWorkload("multicast_storm_100", net, 90 * sim::kSecond,
                     [](sim::Simulation& sim) {
                       std::vector<sim::NodeId> targets;
                       for (int i = 0; i < 100; ++i)
                         targets.push_back(sim.Spawn<Acker>()->id());
                       sim.Spawn<Blaster>(targets);
                     });
}

WorkloadResult TimerChurn() {
  // 256 processes cycling timers: SetTimer x2 + CancelTimer per fire.
  return RunWorkload("timer_churn", sim::NetworkOptions(), 20 * sim::kSecond,
                     [](sim::Simulation& sim) {
                       for (int i = 0; i < 256; ++i) sim.Spawn<TimerChurner>();
                     });
}

void WriteJson(const std::vector<WorkloadResult>& results) {
  FILE* f = std::fopen("BENCH_simcore.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_simcore: cannot write BENCH_simcore.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"simcore\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_s\": %.4f, \"events_per_sec\": %.0f, "
                 "\"bytes_per_event\": %.2f, \"allocs_per_event\": %.3f, "
                 "\"messages_sent\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 r.wall_s, r.events_per_sec, r.bytes_per_event,
                 r.allocs_per_event,
                 static_cast<unsigned long long>(r.messages_sent),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("==== simcore: discrete-event engine micro-benchmark ====\n\n");

  std::vector<WorkloadResult> results = {PingPongStorm(), MulticastStorm(),
                                         TimerChurn()};

  TextTable t({"workload", "events", "events/sec", "bytes/event",
               "allocs/event"});
  for (const WorkloadResult& r : results) {
    t.AddRow({r.name, TextTable::Int(static_cast<int64_t>(r.events)),
              TextTable::Num(r.events_per_sec / 1e6, 2) + "M",
              TextTable::Num(r.bytes_per_event, 1),
              TextTable::Num(r.allocs_per_event, 2)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "events = application-observed deliveries + timer fires; bytes and\n"
      "allocs are heap traffic from the whole process during the measured\n"
      "window (operator-new hook), dominated by the engine's per-event\n"
      "cost plus the protocol-side make_shared per message.\n");

  WriteJson(results);
  std::printf("\nwrote BENCH_simcore.json\n");
  return 0;
}
