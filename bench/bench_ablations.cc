// Ablations over the design knobs DESIGN.md calls out: Raft's randomized
// election timeout spread, HotStuff's batch size, and PBFT's checkpoint
// interval. Each knob is swept with everything else held fixed.

#include <cstdio>

#include "common/table.h"
#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "pbft/pbft.h"
#include "raft/raft.h"
#include "sim/simulation.h"

using namespace consensus40;

int main() {
  std::printf("==== Ablation 1: Raft election timeout randomization ====\n\n");
  {
    // The deck (via Raft): randomized timeouts prevent split votes. We
    // shrink the randomization window and watch elections degrade.
    TextTable t({"timeout window", "runs", "avg elections to settle",
                 "worst case"});
    for (sim::Duration base :
         {150 * sim::kMillisecond, 50 * sim::kMillisecond,
          15 * sim::kMillisecond, 5 * sim::kMillisecond}) {
      int total_elections = 0, worst = 0, settled = 0;
      const int kRuns = 12;
      for (uint64_t seed = 1; seed <= kRuns; ++seed) {
        auto sim_owner =
            sim::Simulation::Builder(seed).AutoStart(false).Build();
        sim::Simulation& sim = *sim_owner;
        raft::RaftOptions opts;
        opts.n = 5;
        opts.election_timeout = base;  // Window = [base, 2*base].
        std::vector<raft::RaftReplica*> replicas;
        for (int i = 0; i < 5; ++i) {
          replicas.push_back(sim.Spawn<raft::RaftReplica>(opts));
        }
        sim.Start();
        bool ok = sim.RunUntil(
            [&] {
              for (auto* r : replicas) {
                if (r->IsLeader()) return true;
              }
              return false;
            },
            60 * sim::kSecond);
        settled += ok;
        int elections = 0;
        for (auto* r : replicas) elections += r->elections_started();
        total_elections += elections;
        worst = std::max(worst, elections);
      }
      t.AddRow({"[" + TextTable::Num(base / 1000.0, 0) + ", " +
                    TextTable::Num(2 * base / 1000.0, 0) + "]ms",
                TextTable::Int(settled) + "/" + TextTable::Int(12),
                TextTable::Num(total_elections / 12.0, 1),
                TextTable::Int(worst)});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("With a wide window, one candidate usually times out alone\n"
                "and wins in a single election. As the window shrinks toward\n"
                "the message delay, candidates collide, split votes pile up,\n"
                "and convergence takes many more terms.\n\n");
  }

  std::printf("==== Ablation 2: HotStuff batch size ====\n\n");
  {
    TextTable t({"batch size", "blocks for 40 cmds", "proto msgs/cmd",
                 "ms/cmd"});
    for (int batch : {1, 4, 8, 16}) {
      sim::NetworkOptions net;
      net.min_delay = net.max_delay = 1 * sim::kMillisecond;
      auto sim_owner =
          sim::Simulation::Builder(5).Network(net).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      crypto::KeyRegistry registry(5, 24);
      hotstuff::HotStuffOptions opts;
      opts.n = 4;
      opts.registry = &registry;
      opts.batch_size = batch;
      std::vector<hotstuff::HotStuffReplica*> replicas;
      for (int i = 0; i < 4; ++i) {
        replicas.push_back(sim.Spawn<hotstuff::HotStuffReplica>(opts));
      }
      std::vector<hotstuff::HotStuffClient*> clients;
      for (int c = 0; c < 8; ++c) {
        clients.push_back(sim.Spawn<hotstuff::HotStuffClient>(
            4, &registry, 5, "k" + std::to_string(c)));
      }
      sim.Start();
      sim::Time t0 = sim.now();
      sim.RunUntil(
          [&] {
            for (auto* c : clients) {
              if (!c->done()) return false;
            }
            return true;
          },
          600 * sim::kSecond);
      int blocks = 0;
      for (auto* r : replicas) blocks += r->blocks_proposed();
      const auto& types = sim.stats().sent_by_type;
      uint64_t proto = types.at("hs-proposal") + types.at("hs-vote");
      t.AddRow({TextTable::Int(batch), TextTable::Int(blocks),
                TextTable::Num(proto / 40.0, 1),
                TextTable::Num((sim.now() - t0) / 1000.0 / 40.0, 1)});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Bigger batches amortize one chain slot over many commands:\n"
                "fewer blocks, fewer votes per command. The pipeline depth\n"
                "(3 chained phases) sets the latency floor either way.\n\n");
  }

  std::printf("==== Ablation 3: PBFT checkpoint interval ====\n\n");
  {
    TextTable t({"checkpoint every", "checkpoint msgs", "final log slots",
                 "stable checkpoint"});
    for (uint64_t interval : {4, 16, 64}) {
      auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      crypto::KeyRegistry registry(3, 12);
      pbft::PbftOptions opts;
      opts.n = 4;
      opts.registry = &registry;
      opts.checkpoint_interval = interval;
      std::vector<pbft::PbftReplica*> replicas;
      for (int i = 0; i < 4; ++i) {
        replicas.push_back(sim.Spawn<pbft::PbftReplica>(opts));
      }
      auto* client = sim.Spawn<pbft::PbftClient>(4, &registry, 48);
      sim.Start();
      sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
      sim.RunFor(2 * sim::kSecond);
      uint64_t cp_msgs = sim.stats().sent_by_type.count("checkpoint")
                             ? sim.stats().sent_by_type.at("checkpoint")
                             : 0;
      t.AddRow({TextTable::Int(static_cast<int64_t>(interval)),
                TextTable::Int(static_cast<int64_t>(cp_msgs)),
                TextTable::Int(static_cast<int64_t>(
                    replicas[0]->LogSizeForTest())),
                TextTable::Int(static_cast<int64_t>(
                    replicas[0]->stable_checkpoint()))});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Frequent checkpoints keep the message log tiny but cost a\n"
                "2f+1 signature exchange each time; rare checkpoints invert\n"
                "the trade — the garbage-collection dial from the deck's\n"
                "checkpointing slide.\n\n");
  }

  std::printf("==== Ablation 4: PBFT request batching ====\n\n");
  {
    TextTable t({"batch (size, delay)", "agreement instances for 36 cmds",
                 "protocol msgs/cmd", "ms/cmd"});
    struct Cfg {
      int size;
      sim::Duration delay;
    };
    for (Cfg cfg : {Cfg{1, 0}, Cfg{4, 2 * sim::kMillisecond},
                    Cfg{8, 3 * sim::kMillisecond}}) {
      sim::NetworkOptions net;
      net.min_delay = net.max_delay = 1 * sim::kMillisecond;
      auto sim_owner =
          sim::Simulation::Builder(7).Network(net).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      crypto::KeyRegistry registry(7, 24);
      pbft::PbftOptions opts;
      opts.n = 4;
      opts.registry = &registry;
      opts.batch_size = cfg.size;
      opts.batch_delay = cfg.delay;
      for (int i = 0; i < 4; ++i) sim.Spawn<pbft::PbftReplica>(opts);
      std::vector<pbft::PbftClient*> clients;
      for (int c = 0; c < 6; ++c) {
        clients.push_back(sim.Spawn<pbft::PbftClient>(
            4, &registry, 6, "k" + std::to_string(c)));
      }
      sim.Start();
      sim::Time t0 = sim.now();
      sim.RunUntil(
          [&] {
            for (auto* c : clients) {
              if (!c->done()) return false;
            }
            return true;
          },
          240 * sim::kSecond);
      const auto& types = sim.stats().sent_by_type;
      uint64_t instances = types.at("pre-prepare") / 3;  // One per backup.
      uint64_t proto = types.at("pre-prepare") + types.at("prepare") +
                       types.at("commit");
      t.AddRow({"(" + TextTable::Int(cfg.size) + ", " +
                    TextTable::Num(cfg.delay / 1000.0, 0) + "ms)",
                TextTable::Int(static_cast<int64_t>(instances)),
                TextTable::Num(proto / 36.0, 1),
                TextTable::Num((sim.now() - t0) / 1000.0 / 36.0, 1)});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Batching divides the quadratic prepare/commit bill across\n"
                "the batch: 36 commands need a fraction of the instances,\n"
                "at the cost of the batching delay — the standard PBFT\n"
                "throughput knob.\n");
  }
  return 0;
}
