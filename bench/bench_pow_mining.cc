// F20 + F21 — Proof of work: real SHA-256d mining rates, fork rate vs
// propagation delay, difficulty retargeting under hash-power swings,
// mining centralization (hash share -> block share), and the energy proxy.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "blockchain/block.h"
#include "blockchain/chain.h"
#include "blockchain/miner.h"
#include "common/table.h"
#include "sim/simulation.h"

using namespace consensus40;
using namespace consensus40::blockchain;

namespace {

struct World {
  World(const std::vector<double>& powers, sim::Duration propagation,
        uint64_t seed, uint32_t interval_secs = 60,
        uint64_t retarget = 30) {
    sim::NetworkOptions net;
    net.min_delay = propagation / 2;
    net.max_delay = propagation;
    sim = sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
    params.chain.block_interval_secs = interval_secs;
    params.chain.retarget_interval = retarget;
    params.chain.initial_reward = 50;
    params.chain.halving_interval = 1u << 30;
    double total = 0;
    for (double p : powers) total += p;
    params.initial_hash_total = total;
    for (double p : powers) {
      miners.push_back(sim->Spawn<Miner>(&params, (int)powers.size(), p));
    }
    sim->Start();
  }
  std::unique_ptr<sim::Simulation> sim;
  MinerNetworkParams params;
  std::vector<Miner*> miners;
};

}  // namespace

// Micro-benchmark: real double-SHA256 header hashing rate (the unit of
// "work" everything else abstracts).
static void BM_HeaderHash(benchmark::State& state) {
  BlockHeader header;
  header.prev_hash = crypto::Sha256::Hash("prev");
  header.merkle_root = crypto::Sha256::Hash("root");
  uint64_t nonce = 0;
  for (auto _ : state) {
    header.nonce = nonce++;
    benchmark::DoNotOptimize(header.Hash());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeaderHash);

static void BM_MicroMine12Bits(benchmark::State& state) {
  uint32_t stamp = 0;
  for (auto _ : state) {
    BlockHeader header;
    header.timestamp = stamp++;
    header.target = Target::FromLeadingZeroBits(12);
    benchmark::DoNotOptimize(MineNonce(&header, 1u << 24));
  }
}
BENCHMARK(BM_MicroMine12Bits);

int main(int argc, char** argv) {
  std::printf("==== F20: proof-of-work dynamics ====\n\n");

  std::printf("-- fork rate vs block propagation delay (4 equal miners, "
              "60s blocks, 6h) --\n");
  {
    TextTable t({"propagation", "best height", "stale blocks", "stale rate",
                 "reorgs"});
    for (sim::Duration prop :
         {100 * sim::kMillisecond, 2 * sim::kSecond, 10 * sim::kSecond,
          30 * sim::kSecond}) {
      World world({1, 1, 1, 1}, prop, 5);
      world.sim->RunFor(21600 * sim::kSecond);
      const BlockTree& tree = world.miners[0]->tree();
      int stale = tree.StaleBlocks();
      uint64_t height = tree.BestHeight();
      t.AddRow({TextTable::Num(prop / 1.0e6, 1) + "s",
                TextTable::Int(height), TextTable::Int(stale),
                TextTable::Num(100.0 * stale / (stale + height), 1) + "%",
                TextTable::Int(tree.reorgs())});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Forks appear when two miners solve within one propagation\n"
                "delay; the longest-chain rule prunes one branch and its\n"
                "transactions are 'aborted/resubmitted' (the deck's fork\n"
                "figure). Bitcoin keeps stale rates ~1%% by making blocks\n"
                "600x slower than gossip.\n\n");
  }

  std::printf("-- difficulty retarget under a hash-power shock --\n");
  {
    World world({1, 1}, 500 * sim::kMillisecond, 6, 60, 25);
    TextTable t({"simulated hours", "event", "difficulty (vs initial)",
                 "avg block interval (s)"});
    double d0 = world.params.chain.initial_target.Difficulty();
    uint64_t last_height = 0;
    sim::Time last_time = 0;
    auto snapshot = [&](const char* label) {
      const BlockTree& tree = world.miners[0]->tree();
      double d =
          tree.NextTarget(tree.BestTip()).Difficulty() / d0;
      uint64_t height = tree.BestHeight();
      double span_blocks = static_cast<double>(height - last_height);
      double span_secs =
          static_cast<double>(world.sim->now() - last_time) / 1e6;
      t.AddRow({TextTable::Num(world.sim->now() / 3.6e9, 1), label,
                TextTable::Num(d, 2) + "x",
                span_blocks > 0 ? TextTable::Num(span_secs / span_blocks, 0)
                                : "-"});
      last_height = height;
      last_time = world.sim->now();
    };
    world.sim->RunFor(5000 * sim::kSecond);
    snapshot("baseline (2 miners x1)");
    for (Miner* m : world.miners) m->SetHashPower(4 * m->hash_power());
    world.sim->RunFor(3000 * sim::kSecond);
    snapshot("hash power x4: blocks rush in");
    world.sim->RunFor(30000 * sim::kSecond);
    snapshot("after retargets");
    std::printf("%s\n", t.ToString().c_str());
    std::printf("The retarget (every 25 blocks here, 2016 on mainnet)\n"
                "raises the difficulty until the interval returns to 60s —\n"
                "the deck's 'difficulty is adjusted every 2016 blocks'.\n\n");
  }

  std::printf("==== F21: centralization + energy proxy ====\n\n");
  {
    // The deck's pie: one pool with ~81% of the hash rate.
    World world({81, 10, 5, 2, 2}, 500 * sim::kMillisecond, 7);
    world.sim->RunFor(40000 * sim::kSecond);
    const BlockTree& tree = world.miners[0]->tree();
    auto rewards = tree.RewardsByMiner();
    int64_t total = 0;
    for (const auto& [m, r] : rewards) total += r;
    TextTable t({"miner", "hash share", "block share", "expected"});
    const char* labels[] = {"mega-pool", "pool B", "pool C", "solo D",
                            "solo E"};
    double powers[] = {81, 10, 5, 2, 2};
    for (int i = 0; i < 5; ++i) {
      int64_t r = rewards.count(i) ? rewards[i] : 0;
      t.AddRow({labels[i], TextTable::Num(powers[i], 0) + "%",
                TextTable::Num(total ? 100.0 * r / total : 0, 1) + "%",
                TextTable::Num(powers[i], 0) + "%"});
    }
    std::printf("%s\n", t.ToString().c_str());

    double hashes = 0;
    for (Miner* m : world.miners) hashes += m->expected_hashes();
    std::printf("energy proxy: %.0f hash-units ground for %llu chained\n"
                "blocks (%.1f per block) — PoW 'replaces communication with\n"
                "computation': the same 40000s of Multi-Paxos ordering would\n"
                "cost ~zero compute and two message rounds per decision.\n\n",
                hashes, static_cast<unsigned long long>(tree.BestHeight()),
                hashes / std::max<uint64_t>(tree.BestHeight(), 1));
  }

  std::printf("==== micro-benchmarks (real SHA-256d) ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
