// F19 — FLP and its circumvention: under the adversarial schedule that
// livelocks deterministic ballot-based consensus forever, Ben-Or's
// randomized consensus terminates with probability 1 (and quickly).

#include <cstdio>

#include "common/table.h"
#include "paxos/paxos.h"
#include "randomized/benor.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

sim::Simulation::DelayFn Adversary() {
  return [](const sim::Envelope& e) -> sim::Duration {
    if (e.from == e.to) return 0;
    std::string type = e.msg->TypeName();
    // Slow down the "second phase" of whatever protocol runs: accepts for
    // Paxos, proposals for Ben-Or.
    if (type == "accept" || type == "benor-propose") {
      return (3 + (e.from * 7 + e.to * 3) % 3) * sim::kMillisecond;
    }
    return 1 * sim::kMillisecond;
  };
}

}  // namespace

int main() {
  std::printf("==== F19: FLP, demonstrated and circumvented ====\n\n");
  std::printf("FLP (Fischer, Lynch, Paterson 1985): no DETERMINISTIC\n"
              "asynchronous consensus protocol tolerates even one crash\n"
              "fault. We exhibit the adversary's power on deterministic\n"
              "dueling Paxos proposers, then run Ben-Or under the same\n"
              "adversary.\n\n");

  std::printf("-- deterministic protocol vs the adversary (2s budget) --\n");
  {
    TextTable t({"seed", "decided?", "ballots burned"});
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      paxos::PaxosOptions opts;
      opts.n = 5;
      opts.randomized_backoff = false;  // Deterministic retry.
      opts.retry_delay = 0;
      auto sim_owner = sim::Simulation::Builder(seed).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      std::vector<paxos::PaxosNode*> nodes;
      for (int i = 0; i < 5; ++i) nodes.push_back(sim.Spawn<paxos::PaxosNode>(opts));
      sim.Start();
      sim.SetDelayFn(Adversary());
      nodes[0]->Propose("zero");
      sim.ScheduleAfter(2500, [&] { nodes[4]->Propose("one"); });
      bool decided = sim.RunUntil(
          [&] { return nodes[0]->decided() || nodes[4]->decided(); },
          2 * sim::kSecond);
      t.AddRow({TextTable::Int(seed), decided ? "yes" : "NO (livelock)",
                TextTable::Int(nodes[0]->prepare_attempts() +
                               nodes[4]->prepare_attempts())});
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  std::printf("-- Ben-Or vs the same adversary --\n");
  {
    TextTable t({"seed", "inputs", "decided?", "rounds", "virtual time"});
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      auto sim_owner = sim::Simulation::Builder(seed).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      randomized::BenOrOptions opts;
      opts.n = 5;
      std::vector<randomized::BenOrNode*> nodes;
      std::string inputs;
      Rng rng(seed);
      for (int i = 0; i < 5; ++i) {
        int v = static_cast<int>(rng.NextBounded(2));
        inputs += std::to_string(v);
        nodes.push_back(sim.Spawn<randomized::BenOrNode>(opts, v));
      }
      sim.SetDelayFn(Adversary());
      sim.Start();
      bool decided = sim.RunUntil(
          [&] {
            for (auto* n : nodes) {
              if (!n->decided()) return false;
            }
            return true;
          },
          60 * sim::kSecond);
      int max_round = 0;
      for (auto* n : nodes) max_round = std::max(max_round, n->round());
      t.AddRow({TextTable::Int(seed), inputs, decided ? "yes" : "NO",
                TextTable::Int(max_round),
                TextTable::Num(sim.now() / 1000.0, 0) + "ms"});
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  std::printf("-- rounds-to-decide distribution (n = 5, split inputs, one "
              "crash) --\n");
  {
    std::map<int, int> histogram;
    const int kRuns = 200;
    for (uint64_t seed = 1; seed <= kRuns; ++seed) {
      auto sim_owner = sim::Simulation::Builder(seed).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      randomized::BenOrOptions opts;
      opts.n = 5;
      std::vector<randomized::BenOrNode*> nodes;
      int inputs[5] = {0, 1, 0, 1, 0};
      for (int i = 0; i < 5; ++i) {
        nodes.push_back(sim.Spawn<randomized::BenOrNode>(opts, inputs[i]));
      }
      sim.Start();
      sim.ScheduleAfter(2 * sim::kMillisecond, [&] { sim.Crash(2); });
      sim.RunUntil(
          [&] {
            for (auto* n : nodes) {
              if (!sim.IsCrashed(n->id()) && !n->decided()) return false;
            }
            return true;
          },
          120 * sim::kSecond);
      int max_round = 1;
      for (auto* n : nodes) max_round = std::max(max_round, n->round());
      histogram[std::min(max_round, 6)]++;
    }
    TextTable t({"rounds", "runs", "fraction"});
    for (const auto& [rounds, count] : histogram) {
      t.AddRow({rounds >= 6 ? "6+" : TextTable::Int(rounds),
                TextTable::Int(count),
                TextTable::Num(100.0 * count / kRuns, 0) + "%"});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Sacrificing determinism (the deck's first circumvention)\n"
                "buys termination with probability 1: the expected number\n"
                "of coin-flip rounds is constant for any fixed adversary.\n");
  }
  return 0;
}
