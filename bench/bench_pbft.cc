// F11 — PBFT: the 3-phase flow, the O(N^2) agreement bill, the O(N^3)
// view change, and checkpoint garbage collection.

#include <cstdio>

#include "common/table.h"
#include "crypto/signatures.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

struct PbftRun {
  double msgs_per_cmd = 0;
  double ms_per_cmd = 0;
  uint64_t vc_messages = 0;
  uint64_t vc_bytes = 0;
};

PbftRun Measure(int n, int ops, bool crash_primary, uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = net.max_delay = 1 * sim::kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  uint64_t vc_bytes = 0;
  sim.SetTraceFn([&vc_bytes](const sim::Envelope& e, sim::Time) {
    std::string type = e.msg->TypeName();
    if (type == "view-change" || type == "new-view") {
      vc_bytes += e.msg->ByteSize();
    }
  });
  crypto::KeyRegistry registry(seed, n + 8);
  pbft::PbftOptions opts;
  opts.n = n;
  opts.registry = &registry;
  std::vector<pbft::PbftReplica*> replicas;
  for (int i = 0; i < n; ++i) {
    replicas.push_back(sim.Spawn<pbft::PbftReplica>(opts));
  }
  auto* client = sim.Spawn<pbft::PbftClient>(n, &registry, ops);
  sim.Start();
  int warmup = ops / 4;
  sim.RunUntil([&] { return client->completed() >= warmup; },
               240 * sim::kSecond);
  sim.stats().Reset();
  sim::Time t0 = sim.now();
  if (crash_primary) sim.Crash(0);
  sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
  PbftRun out;
  double cmds = ops - warmup;
  const auto& types = sim.stats().sent_by_type;
  uint64_t agreement = 0;
  for (const char* type :
       {"pbft-request", "pre-prepare", "prepare", "commit", "pbft-reply"}) {
    auto it = types.find(type);
    if (it != types.end()) agreement += it->second;
  }
  out.msgs_per_cmd = agreement / cmds;
  out.ms_per_cmd = static_cast<double>(sim.now() - t0) / 1000.0 / cmds;
  for (const char* type : {"view-change", "new-view"}) {
    auto it = types.find(type);
    if (it != types.end()) out.vc_messages += it->second;
  }
  out.vc_bytes = vc_bytes;
  return out;
}

}  // namespace

int main() {
  std::printf("==== F11: PBFT ====\n\n");

  std::printf("-- agreement cost vs cluster size (fault-free) --\n");
  TextTable t({"n", "f", "msgs/cmd", "vs n=4", "(n/4)^2", "ms/cmd"});
  double base = 0;
  for (int n : {4, 7, 10, 13}) {
    PbftRun r = Measure(n, 20, false, 1);
    if (n == 4) base = r.msgs_per_cmd;
    t.AddRow({TextTable::Int(n), TextTable::Int((n - 1) / 3),
              TextTable::Num(r.msgs_per_cmd, 1),
              TextTable::Num(r.msgs_per_cmd / base, 2) + "x",
              TextTable::Num(n * n / 16.0, 2) + "x",
              TextTable::Num(r.ms_per_cmd, 1)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("msgs/cmd tracks (n/4)^2: the all-to-all prepare and commit\n"
              "phases are the deck's O(N^2).\n\n");

  std::printf("-- view change cost vs cluster size (primary crash) --\n");
  TextTable vc({"n", "view-change msgs", "msg growth", "view-change bytes",
                "byte growth", "(n/4)^3"});
  double vc_base = 0, byte_base = 0;
  for (int n : {4, 7, 10}) {
    PbftRun r = Measure(n, 16, true, 2);
    if (n == 4) {
      vc_base = static_cast<double>(r.vc_messages);
      byte_base = static_cast<double>(r.vc_bytes);
    }
    vc.AddRow({TextTable::Int(n), TextTable::Int(r.vc_messages),
               TextTable::Num(r.vc_messages / vc_base, 1) + "x",
               TextTable::Int(static_cast<int64_t>(r.vc_bytes)),
               TextTable::Num(r.vc_bytes / byte_base, 1) + "x",
               TextTable::Num(n * n * n / 64.0, 1) + "x"});
  }
  std::printf("%s\n", vc.ToString().c_str());
  std::printf("~n^2 view-change messages, each carrying prepared\n"
              "certificates of O(n) signatures: bytes grow strictly faster\n"
              "than the message count (8.1x vs 6.2x at n=10 here). With a\n"
              "full window of in-flight requests every message carries O(n)\n"
              "certificates and the total reaches the deck's O(N^3).\n\n");

  std::printf("-- checkpoint garbage collection --\n");
  {
    auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(3, 12);
    pbft::PbftOptions opts;
    opts.n = 4;
    opts.registry = &registry;
    opts.checkpoint_interval = 8;
    std::vector<pbft::PbftReplica*> replicas;
    for (int i = 0; i < 4; ++i) {
      replicas.push_back(sim.Spawn<pbft::PbftReplica>(opts));
    }
    auto* client = sim.Spawn<pbft::PbftClient>(4, &registry, 40);
    sim.Start();
    sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
    sim.RunFor(2 * sim::kSecond);
    TextTable gc({"replica", "executed", "stable checkpoint", "slots in log"});
    for (auto* r : replicas) {
      gc.AddRow({TextTable::Int(r->id()), TextTable::Int(r->last_executed()),
                 TextTable::Int(r->stable_checkpoint()),
                 TextTable::Int(static_cast<int64_t>(r->LogSizeForTest()))});
    }
    std::printf("%s\n", gc.ToString().c_str());
    std::printf("40 requests executed but only the tail since the last\n"
                "stable checkpoint (every 8 requests, proven by 2f+1\n"
                "checkpoint signatures) stays in the log.\n");
  }
  return 0;
}
