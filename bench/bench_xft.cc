// F16 — XFT: crash-fault prices for Byzantine-grade protection, plus the
// anarchy boundary map.

#include <cstdio>

#include "common/table.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "xft/xft.h"

using namespace consensus40;

int main() {
  std::printf("==== F16: XFT / XPaxos ====\n\n");

  std::printf("-- common case (n = 5, sg = 3 replicas, fixed 1ms hops) --\n");
  {
    sim::NetworkOptions net;
    net.min_delay = net.max_delay = 1 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(1).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(1, 12);
    xft::XftOptions opts;
    opts.n = 5;
    opts.registry = &registry;
    std::vector<xft::XftReplica*> replicas;
    for (int i = 0; i < 5; ++i) {
      replicas.push_back(sim.Spawn<xft::XftReplica>(opts));
    }
    auto* client = sim.Spawn<xft::XftClient>(5, &registry, 20);
    sim.Start();
    sim::Time t0 = sim.now();
    sim.RunUntil([&] { return client->done(); }, 240 * sim::kSecond);
    const auto& types = sim.stats().sent_by_type;
    TextTable t({"metric", "value"});
    t.AddRow({"replicas", "5 (= 2f+1, not 3f+1)"});
    t.AddRow({"active per request", "3 (the synchronous group)"});
    t.AddRow({"prepares sent", TextTable::Int(types.at("xft-prepare"))});
    t.AddRow({"commits sent", TextTable::Int(types.at("xft-commit"))});
    t.AddRow({"latency per command (ms)",
              TextTable::Num((sim.now() - t0) / 1000.0 / 20.0, 1)});
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Two phases among f+1 replicas — Paxos-grade cost — while\n"
                "signatures keep Byzantine replicas accountable. Passive\n"
                "replicas learn lazily (%llu xft-update messages).\n\n",
                static_cast<unsigned long long>(types.at("xft-update")));
  }

  std::printf("-- view change reconfigures the synchronous group --\n");
  {
    auto sim_owner = sim::Simulation::Builder(2).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(2, 12);
    xft::XftOptions opts;
    opts.n = 5;
    opts.registry = &registry;
    std::vector<xft::XftReplica*> replicas;
    for (int i = 0; i < 5; ++i) {
      replicas.push_back(sim.Spawn<xft::XftReplica>(opts));
    }
    auto* client = sim.Spawn<xft::XftClient>(5, &registry, 16);
    sim.Start();
    sim.RunUntil([&] { return client->completed() >= 5; }, 120 * sim::kSecond);
    std::printf("sg(view 0) = {0,1,2}; crashing member 1...\n");
    sim.Crash(1);
    sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
    int64_t view = 0;
    for (auto* r : replicas) {
      if (r->id() != 1) view = std::max(view, r->view());
    }
    std::printf("new view %lld, sg(view %lld) = {", static_cast<long long>(view),
                static_cast<long long>(view));
    for (sim::NodeId m : replicas[0]->SyncGroup(view)) std::printf("%d ", m);
    std::printf("} — workload completed: %d/16, results in order: %s\n\n",
                client->completed(), [&] {
                  for (int i = 0; i < 16; ++i) {
                    if (client->results()[i] != std::to_string(i + 1)) {
                      return "NO";
                    }
                  }
                  return "yes";
                }());
  }

  std::printf("-- the anarchy map (n = 5): when does XFT lose safety? --\n");
  {
    TextTable t({"crash c", "Byzantine m", "partitioned p", "c+m+p",
                 "in anarchy?"});
    for (int c = 0; c <= 3; ++c) {
      for (int m = 0; m <= 2; ++m) {
        for (int p = 0; p <= 1; ++p) {
          if (c + m + p > 4) continue;
          t.AddRow({TextTable::Int(c), TextTable::Int(m), TextTable::Int(p),
                    TextTable::Int(c + m + p),
                    xft::InAnarchy(5, c, m, p) ? "ANARCHY" : "safe"});
        }
      }
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Anarchy needs BOTH m > 0 and c+m+p > floor((n-1)/2): pure\n"
                "crashes never violate safety, and a minority of mixed\n"
                "faults doesn't either — XFT's bet is that 'Byzantine fault\n"
                "AND network partition at the same time' is rare.\n");
  }
  return 0;
}
