// S2 — sharded-transaction throughput: the deterministic workload driver
// (src/shard/workload.h) replayed over a ShardedStateMachine at several
// read / cross-shard mixes, reporting virtual-time throughput, mean and
// max latency, and abort rate per operation class. The cross-shard
// columns price the full 2PC-over-consensus path (prepare round on every
// participant shard + a decision-group round) against single-shard
// one-phase commits and read-index reads.
//
// The ladder has three rungs:
//   1. the untuned baselines (window 1, one command per log entry) kept
//      for comparability with earlier runs,
//   2. the same mixes with the replication hot path on — windowed
//      clients, leader-side batching with a 1ms linger, and periodic
//      checkpoints — isolating what the optimisations buy per mix,
//   3. one large run (100k ops over a 1M-key space) showing the tuned
//      path at a scale the serialized client could not touch,
//   4. a migrate row: the same tuned mix with a live shard move (shard
//      0's whole range to a spare group) fired mid-run — pricing what an
//      elastic resharding costs the workload (MOVED bounces, routing
//      refetches, retried transactions) while the bench gates that every
//      operation still completes and the move finishes under load,
//   5. read-mix rows: the typed-transaction op classes — multi-key
//      lock-free snapshot reads, write transactions carrying a leading
//      GET, reason-aware abort retries — priced untuned and with the
//      hot path on. The rows gate that snapshots commit and that the
//      lock-free path never aborts.
//
// Results go to stdout and to BENCH_shard.json in the working directory
// (same convention as bench_checker / BENCH_checker.json). All numbers
// are virtual-time (simulated microseconds), so they are deterministic
// per (seed, config) and comparable across machines and PRs; wall_s is
// the only host-dependent field. `--smoke` runs two tiny tuned configs
// (the plain mix and its read-mix twin) and writes BENCH_shard_smoke.json
// instead (CI-sized; does not clobber the committed ladder).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "shard/reshard.h"
#include "shard/shard.h"
#include "shard/workload.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

constexpr uint64_t kSeed = 2020;

struct Config {
  const char* name;
  int shards;
  double read_fraction;
  double cross_fraction;
  int ops = 600;
  int concurrency = 8;
  int key_space = 400;   // Miss-heavy: reads mostly hit keys that were
  int write_space = 100;  // never written.
  // Hot-path tuning (defaults = the untuned baseline).
  int window = 1;
  int batch_size = 1;
  sim::Duration batch_delay = 0;
  uint64_t snapshot_threshold = 0;
  /// Fire a live shard move (shard 0's whole range -> a spare group)
  /// 200 ms into the run; the row gates on the move completing AND every
  /// workload op still resolving.
  bool migrate = false;
  // Read-mix knobs (the typed-transaction API): snapshot_fraction of the
  // read ops go through the coordinator's lock-free multi-key snapshot
  // path, txn_read_fraction of the write transactions carry a leading
  // GET (shared lock + prepare-time evaluation), and reason_retry turns
  // on the driver's reason-aware abort handling.
  double snapshot_fraction = 0;
  double txn_read_fraction = 0;
  bool reason_retry = false;
};

// The mix ladder: from read-heavy single-shard to write-heavy
// cross-shard. Every row satisfies the S2 floor (>= 4 shards, >= 20%
// cross-shard) except the 2-shard baseline kept for scaling contrast.
const Config kBaselines[] = {
    {"2sh-baseline", 2, 0.50, 0.20},
    {"4sh-read-heavy", 4, 0.70, 0.20},
    {"4sh-mixed", 4, 0.50, 0.30},
    {"4sh-cross-heavy", 4, 0.30, 0.60},
    {"6sh-mixed", 6, 0.50, 0.30},
};

Config Tuned(Config c, const char* name) {
  c.name = name;
  c.window = 8;
  c.batch_size = 8;
  c.batch_delay = 1 * sim::kMillisecond;
  c.snapshot_threshold = 256;
  return c;
}

Config BigConfig() {
  Config c{"4sh-mixed-100k", 4, 0.50, 0.30};
  c.ops = 100000;
  c.concurrency = 64;
  c.key_space = 1000000;
  c.write_space = 250000;
  c.window = 16;
  c.batch_size = 16;
  c.batch_delay = 1 * sim::kMillisecond;
  c.snapshot_threshold = 1024;
  return c;
}

Config MigrateConfig() {
  Config c{"2sh-mixed-migrate", 2, 0.50, 0.30};
  c.ops = 2000;
  c.concurrency = 16;
  c.window = 8;
  c.batch_size = 8;
  c.batch_delay = 1 * sim::kMillisecond;
  c.snapshot_threshold = 256;
  c.migrate = true;
  return c;
}

/// Read-mix rows: the tuned 4-shard mix with 40% of reads upgraded to
/// 2-key snapshot transactions, half the write transactions carrying a
/// leading GET, and reason-aware retries on. The untuned twin keeps the
/// speedup comparison honest for the new op classes.
Config ReadMixConfig() {
  Config c{"4sh-readmix", 4, 0.50, 0.30};
  c.snapshot_fraction = 0.4;
  c.txn_read_fraction = 0.5;
  c.reason_retry = true;
  return c;
}

Config SmokeConfig() {
  Config c{"2sh-smoke", 2, 0.50, 0.30};
  c.ops = 150;
  c.window = 8;
  c.batch_size = 8;
  c.batch_delay = 1 * sim::kMillisecond;
  c.snapshot_threshold = 64;
  return c;
}

Config SmokeReadMixConfig() {
  Config c = SmokeConfig();
  c.name = "2sh-readmix-smoke";
  c.snapshot_fraction = 0.4;
  c.txn_read_fraction = 0.5;
  c.reason_retry = true;
  return c;
}

struct Result {
  Config config;
  shard::WorkloadStats stats;
  sim::Time virtual_us = 0;  ///< Virtual time consumed by the run.
  double wall_s = 0;
  int moves_done = 0;  ///< Migrate rows: completed live moves.
};

Result RunOne(const Config& config) {
  shard::ShardOptions options;
  options.shards = config.shards;
  options.spare_groups = config.migrate ? 1 : 0;
  options.client_window = config.window;
  options.batch_size = config.batch_size;
  options.batch_delay = config.batch_delay;
  options.snapshot_threshold = config.snapshot_threshold;

  shard::WorkloadOptions wl;
  wl.ops = config.ops;
  wl.concurrency = config.concurrency;
  wl.read_fraction = config.read_fraction;
  wl.cross_shard_fraction = config.cross_fraction;
  wl.key_space = config.key_space;
  wl.write_space = config.write_space;
  wl.snapshot_fraction = config.snapshot_fraction;
  wl.txn_read_fraction = config.txn_read_fraction;
  wl.reason_aware_retry = config.reason_retry;

  auto t0 = std::chrono::steady_clock::now();
  auto ssm = std::make_unique<shard::ShardedStateMachine>(options);
  shard::WorkloadDriver* driver = nullptr;
  auto sim = sim::Simulation::Builder(kSeed)
                 .Setup([&](sim::Simulation& s) { ssm->Build(&s); })
                 .Setup([&](sim::Simulation& s) {
                   driver = shard::SpawnWorkload(&s, ssm.get(), wl);
                 })
                 .Build();
  sim->RunFor(500 * sim::kMillisecond);  // Leader elections settle.
  sim::Time start = sim->now();
  if (config.migrate) {
    // Let traffic build, then live-move shard 0's whole range to the
    // spare group while the workload keeps running.
    sim->RunFor(200 * sim::kMillisecond);
    shard::MoveSpec spec;
    spec.lo = 0;
    spec.hi = ssm->InitialTable().entries()[1].lo;
    spec.to = config.shards;  // The spare group.
    ssm->mover()->StartMove(spec);
  }
  // Horizon scales with the workload (the 100k-op run needs more than
  // the 600-op rows even at tuned throughput).
  sim::Time horizon = std::max<sim::Time>(600, config.ops / 50);
  sim->RunUntil(
      [&] {
        return driver->done() &&
               (!config.migrate || ssm->mover()->moves_done() >= 1);
      },
      start + horizon * sim::kSecond);

  Result r;
  r.config = config;
  r.stats = driver->stats();
  r.moves_done = config.migrate ? ssm->mover()->moves_done() : 0;
  r.virtual_us = sim->now() - start;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  return r;
}

double Throughput(const Result& r) {
  return r.virtual_us == 0
             ? 0.0
             : r.stats.completed() * 1e6 / static_cast<double>(r.virtual_us);
}

double AbortRate(const shard::OpStats& s) {
  int resolved = s.committed + s.aborted;
  return resolved == 0 ? 0.0 : 100.0 * s.aborted / resolved;
}

void WriteJson(const std::vector<Result>& results, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_shard: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"shard\",\n  \"seed\": %llu,\n"
               "  \"configs\": [\n",
               static_cast<unsigned long long>(kSeed));
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"shards\": %d, \"read_fraction\": %.2f,\n"
        "     \"cross_fraction\": %.2f, \"ops\": %d, \"concurrency\": %d,\n"
        "     \"key_space\": %d, \"window\": %d, \"batch_size\": %d,\n"
        "     \"batch_delay_ms\": %.1f, \"snapshot_threshold\": %llu,\n"
        "     \"throughput_ops_per_vsec\": %.1f, \"virtual_ms\": %.1f,\n"
        "     \"reads\": {\"completed\": %d, \"misses\": %d, "
        "\"mean_ms\": %.2f, \"max_ms\": %.2f},\n"
        "     \"single\": {\"committed\": %d, \"aborted\": %d, "
        "\"abort_pct\": %.2f, \"mean_ms\": %.2f},\n"
        "     \"cross\": {\"committed\": %d, \"aborted\": %d, "
        "\"abort_pct\": %.2f, \"mean_ms\": %.2f},\n"
        "     \"snapshots\": {\"committed\": %d, \"aborted\": %d, "
        "\"mean_ms\": %.2f},\n"
        "     \"reason_retries\": %d, \"aborts_by_reason\": "
        "[%d, %d, %d, %d, %d, %d],\n"
        "     \"retries\": %d, \"moved\": %d, \"table_refreshes\": %d,\n"
        "     \"moves_done\": %d, \"wall_s\": %.2f}%s\n",
        r.config.name, r.config.shards, r.config.read_fraction,
        r.config.cross_fraction, r.stats.completed(), r.config.concurrency,
        r.config.key_space, r.config.window, r.config.batch_size,
        r.config.batch_delay / 1000.0,
        static_cast<unsigned long long>(r.config.snapshot_threshold),
        Throughput(r), r.virtual_us / 1000.0, r.stats.reads.completed,
        r.stats.reads.misses, r.stats.reads.MeanLatencyMs(),
        r.stats.reads.latency_max / 1000.0, r.stats.single.committed,
        r.stats.single.aborted, AbortRate(r.stats.single),
        r.stats.single.MeanLatencyMs(), r.stats.cross.committed,
        r.stats.cross.aborted, AbortRate(r.stats.cross),
        r.stats.cross.MeanLatencyMs(), r.stats.snapshots.committed,
        r.stats.snapshots.aborted, r.stats.snapshots.MeanLatencyMs(),
        r.stats.reason_retries, r.stats.aborts_by_reason[0],
        r.stats.aborts_by_reason[1], r.stats.aborts_by_reason[2],
        r.stats.aborts_by_reason[3], r.stats.aborts_by_reason[4],
        r.stats.aborts_by_reason[5], r.stats.retries, r.stats.moved,
        r.stats.table_refreshes, r.moves_done, r.wall_s,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void PrintTable(const std::vector<Result>& results) {
  TextTable table({"config", "shards", "read%", "cross%", "w/b", "ops/vsec",
                   "read ms", "miss%", "snap ms", "1sh ms", "2pc ms",
                   "abort%", "retries"});
  for (const Result& r : results) {
    const shard::WorkloadStats& s = r.stats;
    double miss_pct = s.reads.completed == 0
                          ? 0.0
                          : 100.0 * s.reads.misses / s.reads.completed;
    std::string wb = std::to_string(r.config.window) + "/" +
                     std::to_string(r.config.batch_size);
    table.AddRow({r.config.name, TextTable::Int(r.config.shards),
                  TextTable::Num(100 * r.config.read_fraction, 0),
                  TextTable::Num(100 * r.config.cross_fraction, 0), wb,
                  TextTable::Num(Throughput(r), 1),
                  TextTable::Num(s.reads.MeanLatencyMs()),
                  TextTable::Num(miss_pct, 1),
                  TextTable::Num(s.snapshots.MeanLatencyMs()),
                  TextTable::Num(s.single.MeanLatencyMs()),
                  TextTable::Num(s.cross.MeanLatencyMs()),
                  TextTable::Num(AbortRate(s.cross)),
                  TextTable::Int(s.retries)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

/// Gates shared by every row: the workload must finish, and the
/// cross-shard path must be exercised and cost more than one-phase.
/// The latency-ordering gate is skipped in smoke mode — at ~150 ops the
/// per-class means are too noisy for a strict ordering to be reliable.
bool SanityCheck(const Result& r, bool check_latency = true) {
  bool ok = true;
  if (r.stats.completed() < r.config.ops) {
    std::printf("FAIL %s: only %d/%d ops completed\n", r.config.name,
                r.stats.completed(), r.config.ops);
    ok = false;
  }
  if (r.stats.cross.committed == 0) {
    std::printf("FAIL %s: no cross-shard transaction committed\n",
                r.config.name);
    ok = false;
  }
  if (check_latency &&
      r.stats.cross.MeanLatencyMs() <= r.stats.single.MeanLatencyMs()) {
    std::printf("FAIL %s: 2PC not costlier than one-phase (%.2f <= %.2f)\n",
                r.config.name, r.stats.cross.MeanLatencyMs(),
                r.stats.single.MeanLatencyMs());
    ok = false;
  }
  if (r.config.migrate) {
    if (r.moves_done < 1) {
      std::printf("FAIL %s: live move never completed under load\n",
                  r.config.name);
      ok = false;
    }
    if (r.stats.moved < 1) {
      std::printf("FAIL %s: no op ever bounced off the routing fence\n",
                  r.config.name);
      ok = false;
    }
  }
  if (r.config.snapshot_fraction > 0) {
    if (r.stats.snapshots.committed == 0) {
      std::printf("FAIL %s: no snapshot transaction committed\n",
                  r.config.name);
      ok = false;
    }
    // The snapshot path takes no locks and writes no decision record —
    // nothing in-bounds can abort it.
    if (r.stats.snapshots.aborted != 0) {
      std::printf("FAIL %s: %d lock-free snapshot(s) aborted\n",
                  r.config.name, r.stats.snapshots.aborted);
      ok = false;
    }
  }
  return ok;
}

int RunSmoke() {
  std::printf(
      "== consensus40: S2 shard bench (smoke) ==\n"
      "seed=%llu, tiny tuned configs (plain + read-mix), virtual-time "
      "metrics\n\n",
      static_cast<unsigned long long>(kSeed));
  std::vector<Result> results{RunOne(SmokeConfig()),
                              RunOne(SmokeReadMixConfig())};
  PrintTable(results);
  bool ok = true;
  for (const Result& r : results) ok &= SanityCheck(r, /*check_latency=*/false);
  WriteJson(results, "BENCH_shard_smoke.json");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }

  std::printf(
      "== consensus40: S2 sharded 2PC-over-consensus workload bench ==\n"
      "seed=%llu, baseline + batched ladder + 100k-op large run,\n"
      "virtual-time metrics\n\n",
      static_cast<unsigned long long>(kSeed));

  std::vector<std::string> tuned_names;  // Stable storage for config.name.
  for (const Config& config : kBaselines) {
    tuned_names.push_back(std::string(config.name) + "-batched");
  }

  std::vector<Result> results;
  std::vector<size_t> baseline_idx, tuned_idx;
  for (const Config& config : kBaselines) {
    baseline_idx.push_back(results.size());
    results.push_back(RunOne(config));
  }
  for (size_t i = 0; i < std::size(kBaselines); ++i) {
    tuned_idx.push_back(results.size());
    results.push_back(RunOne(Tuned(kBaselines[i], tuned_names[i].c_str())));
  }
  size_t big_idx = results.size();
  results.push_back(RunOne(BigConfig()));
  size_t mig_idx = results.size();
  results.push_back(RunOne(MigrateConfig()));
  // Read-mix rows: the typed-transaction op classes, untuned and with
  // the hot path on.
  results.push_back(RunOne(ReadMixConfig()));
  results.push_back(RunOne(Tuned(ReadMixConfig(), "4sh-readmix-batched")));

  PrintTable(results);
  const Result& mig = results[mig_idx];
  std::printf(
      "migrate row: %d live move(s), %d MOVED bounce(s), %d table "
      "refresh(es), %d retried tx(s)\n",
      mig.moves_done, mig.stats.moved, mig.stats.table_refreshes,
      mig.stats.retries);
  const Result& rm = results.back();
  std::printf(
      "readmix row: %d snapshot(s) committed (mean %.2f ms), %d "
      "reason-aware retry(ies), aborts by reason "
      "[conflict %d, frozen %d, cas %d, moved %d, timeout %d]\n\n",
      rm.stats.snapshots.committed, rm.stats.snapshots.MeanLatencyMs(),
      rm.stats.reason_retries, rm.stats.aborts_by_reason[1],
      rm.stats.aborts_by_reason[2], rm.stats.aborts_by_reason[3],
      rm.stats.aborts_by_reason[4], rm.stats.aborts_by_reason[5]);

  bool ok = true;
  for (const Result& r : results) ok &= SanityCheck(r);

  // The tentpole gate: batching + windowing must buy at least 3x
  // virtual-time throughput on some mix (the large run counts against
  // the matching 4sh-mixed baseline).
  double best = 0;
  const char* best_name = "";
  double mixed_baseline = 1;
  for (size_t i = 0; i < tuned_idx.size(); ++i) {
    double base = Throughput(results[baseline_idx[i]]);
    double tuned = Throughput(results[tuned_idx[i]]);
    double ratio = base == 0 ? 0 : tuned / base;
    std::printf("speedup %-16s %6.1f -> %7.1f ops/vsec (%.2fx)\n",
                kBaselines[i].name, base, tuned, ratio);
    if (std::string(kBaselines[i].name) == "4sh-mixed") mixed_baseline = base;
    if (ratio > best) {
      best = ratio;
      best_name = results[tuned_idx[i]].config.name;
    }
  }
  const Result& big = results[big_idx];
  double big_ratio = Throughput(big) / mixed_baseline;
  std::printf("speedup %-16s %6.1f -> %7.1f ops/vsec (%.2fx)\n",
              big.config.name, mixed_baseline, Throughput(big), big_ratio);
  if (big_ratio > best) {
    best = big_ratio;
    best_name = big.config.name;
  }
  if (best < 3.0) {
    std::printf("FAIL: best batched speedup %.2fx (%s) < 3x\n", best,
                best_name);
    ok = false;
  } else {
    std::printf("best batched speedup: %.2fx (%s)\n", best, best_name);
  }

  WriteJson(results, "BENCH_shard.json");
  return ok ? 0 : 1;
}
