// S2 — sharded-transaction throughput: the deterministic workload driver
// (src/shard/workload.h) replayed over a ShardedStateMachine at several
// read / cross-shard mixes, reporting virtual-time throughput, mean and
// max latency, and abort rate per operation class. The cross-shard
// columns price the full 2PC-over-consensus path (prepare round on every
// participant shard + a decision-group round) against single-shard
// one-phase commits and read-index reads.
//
// Results go to stdout and to BENCH_shard.json in the working directory
// (same convention as bench_checker / BENCH_checker.json). All numbers
// are virtual-time (simulated microseconds), so they are deterministic
// per (seed, config) and comparable across machines and PRs; wall_s is
// the only host-dependent field.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "shard/shard.h"
#include "shard/workload.h"
#include "sim/simulation.h"

using namespace consensus40;

namespace {

constexpr uint64_t kSeed = 2020;

struct Config {
  const char* name;
  int shards;
  double read_fraction;
  double cross_fraction;
};

// The mix ladder: from read-heavy single-shard to write-heavy
// cross-shard. Every row satisfies the S2 floor (>= 4 shards, >= 20%
// cross-shard) except the 2-shard baseline kept for scaling contrast.
const Config kConfigs[] = {
    {"2sh-baseline", 2, 0.50, 0.20},
    {"4sh-read-heavy", 4, 0.70, 0.20},
    {"4sh-mixed", 4, 0.50, 0.30},
    {"4sh-cross-heavy", 4, 0.30, 0.60},
    {"6sh-mixed", 6, 0.50, 0.30},
};

struct Result {
  Config config;
  shard::WorkloadStats stats;
  sim::Time virtual_us = 0;  ///< Virtual time consumed by the run.
  double wall_s = 0;
};

Result RunOne(const Config& config) {
  shard::ShardOptions options;
  options.shards = config.shards;

  shard::WorkloadOptions wl;
  wl.ops = 600;
  wl.concurrency = 8;
  wl.read_fraction = config.read_fraction;
  wl.cross_shard_fraction = config.cross_fraction;
  wl.key_space = 400;   // Miss-heavy: reads mostly hit keys that were
  wl.write_space = 100;  // never written.

  auto t0 = std::chrono::steady_clock::now();
  auto ssm = std::make_unique<shard::ShardedStateMachine>(options);
  shard::WorkloadDriver* driver = nullptr;
  auto sim = sim::Simulation::Builder(kSeed)
                 .Setup([&](sim::Simulation& s) { ssm->Build(&s); })
                 .Setup([&](sim::Simulation& s) {
                   driver = shard::SpawnWorkload(&s, ssm.get(), wl);
                 })
                 .Build();
  sim->RunFor(500 * sim::kMillisecond);  // Leader elections settle.
  sim::Time start = sim->now();
  sim->RunUntil([&] { return driver->done(); }, start + 600 * sim::kSecond);

  Result r;
  r.config = config;
  r.stats = driver->stats();
  r.virtual_us = sim->now() - start;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  return r;
}

double Throughput(const Result& r) {
  return r.virtual_us == 0
             ? 0.0
             : r.stats.completed() * 1e6 / static_cast<double>(r.virtual_us);
}

double AbortRate(const shard::OpStats& s) {
  int resolved = s.committed + s.aborted;
  return resolved == 0 ? 0.0 : 100.0 * s.aborted / resolved;
}

void WriteJson(const std::vector<Result>& results) {
  FILE* f = std::fopen("BENCH_shard.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_shard: cannot write BENCH_shard.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"shard\",\n  \"seed\": %llu,\n"
               "  \"configs\": [\n",
               static_cast<unsigned long long>(kSeed));
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"shards\": %d, \"read_fraction\": %.2f,\n"
        "     \"cross_fraction\": %.2f, \"ops\": %d,\n"
        "     \"throughput_ops_per_vsec\": %.1f, \"virtual_ms\": %.1f,\n"
        "     \"reads\": {\"completed\": %d, \"misses\": %d, "
        "\"mean_ms\": %.2f, \"max_ms\": %.2f},\n"
        "     \"single\": {\"committed\": %d, \"aborted\": %d, "
        "\"abort_pct\": %.2f, \"mean_ms\": %.2f},\n"
        "     \"cross\": {\"committed\": %d, \"aborted\": %d, "
        "\"abort_pct\": %.2f, \"mean_ms\": %.2f},\n"
        "     \"retries\": %d, \"wall_s\": %.2f}%s\n",
        r.config.name, r.config.shards, r.config.read_fraction,
        r.config.cross_fraction, r.stats.completed(), Throughput(r),
        r.virtual_us / 1000.0, r.stats.reads.completed, r.stats.reads.misses,
        r.stats.reads.MeanLatencyMs(), r.stats.reads.latency_max / 1000.0,
        r.stats.single.committed, r.stats.single.aborted,
        AbortRate(r.stats.single), r.stats.single.MeanLatencyMs(),
        r.stats.cross.committed, r.stats.cross.aborted, AbortRate(r.stats.cross),
        r.stats.cross.MeanLatencyMs(), r.stats.retries, r.wall_s,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_shard.json\n");
}

}  // namespace

int main() {
  std::printf(
      "== consensus40: S2 sharded 2PC-over-consensus workload bench ==\n"
      "seed=%llu, 600 ops/config, concurrency 8, virtual-time metrics\n\n",
      static_cast<unsigned long long>(kSeed));

  std::vector<Result> results;
  for (const Config& config : kConfigs) results.push_back(RunOne(config));

  TextTable table({"config", "shards", "read%", "cross%", "ops/vsec",
                   "read ms", "miss%", "1sh ms", "2pc ms", "abort%",
                   "retries"});
  for (const Result& r : results) {
    const shard::WorkloadStats& s = r.stats;
    double miss_pct = s.reads.completed == 0
                          ? 0.0
                          : 100.0 * s.reads.misses / s.reads.completed;
    table.AddRow({r.config.name, TextTable::Int(r.config.shards),
                  TextTable::Num(100 * r.config.read_fraction, 0),
                  TextTable::Num(100 * r.config.cross_fraction, 0),
                  TextTable::Num(Throughput(r), 1),
                  TextTable::Num(s.reads.MeanLatencyMs()),
                  TextTable::Num(miss_pct, 1),
                  TextTable::Num(s.single.MeanLatencyMs()),
                  TextTable::Num(s.cross.MeanLatencyMs()),
                  TextTable::Num(AbortRate(s.cross)),
                  TextTable::Int(s.retries)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Sanity gates: every config must finish its workload, and the
  // cross-shard path must actually be exercised and cost more than the
  // one-phase path (it adds a prepare round plus a decision round).
  bool ok = true;
  for (const Result& r : results) {
    if (r.stats.completed() < 600) {
      std::printf("FAIL %s: only %d/600 ops completed\n", r.config.name,
                  r.stats.completed());
      ok = false;
    }
    if (r.stats.cross.committed == 0) {
      std::printf("FAIL %s: no cross-shard transaction committed\n",
                  r.config.name);
      ok = false;
    }
    if (r.stats.cross.MeanLatencyMs() <= r.stats.single.MeanLatencyMs()) {
      std::printf("FAIL %s: 2PC not costlier than one-phase (%.2f <= %.2f)\n",
                  r.config.name, r.stats.cross.MeanLatencyMs(),
                  r.stats.single.MeanLatencyMs());
      ok = false;
    }
  }

  WriteJson(results);
  return ok ? 0 : 1;
}
