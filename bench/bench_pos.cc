// F22 — Proof of stake: stake-proportional randomized selection and the
// coin-age variant (30-day eligibility, 90-day saturation, winner resets).

#include <cstdio>

#include "blockchain/pos.h"
#include "common/table.h"

using namespace consensus40;
using namespace consensus40::blockchain;

int main() {
  std::printf("==== F22: proof of stake ====\n\n");

  std::printf("-- randomized selection: win rate tracks stake --\n");
  {
    std::vector<StakeAccount> accounts = {{50, 0}, {25, 0}, {15, 0}, {10, 0}};
    Rng rng(11);
    int wins[4] = {0, 0, 0, 0};
    const int kRounds = 50000;
    for (int i = 0; i < kRounds; ++i) {
      ++wins[SelectRandomized(accounts, &rng)];
    }
    TextTable t({"account", "stake share", "win share"});
    for (int i = 0; i < 4; ++i) {
      t.AddRow({"validator " + std::to_string(i),
                TextTable::Num(accounts[i].stake, 0) + "%",
                TextTable::Num(100.0 * wins[i] / kRounds, 1) + "%"});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("'A stakeholder who has p fraction of the coins creates a\n"
                "new block with p probability' — verified to ~0.3%%.\n\n");
  }

  std::printf("-- the rich-get-richer loop, with and without coin-age --\n");
  {
    std::vector<StakeAccount> initial = {{60, 30}, {30, 30}, {10, 30}};
    PosSimulator randomized(initial, PosSimulator::Mode::kRandomized,
                            CoinAgeOptions{}, 21);
    PosSimulator coinage(initial, PosSimulator::Mode::kCoinAge,
                         CoinAgeOptions{}, 21);
    const int kDays = 5000;
    int rwins[3] = {0, 0, 0}, cwins[3] = {0, 0, 0};
    for (int day = 0; day < kDays; ++day) {
      int r = randomized.Step(1.0);  // Each block mints 1 coin of reward.
      if (r >= 0) ++rwins[r];
      int c = coinage.Step(1.0);
      if (c >= 0) ++cwins[c];
    }
    TextTable t({"account", "initial stake", "randomized: wins / final stake",
                 "coin-age: wins / final stake"});
    for (int i = 0; i < 3; ++i) {
      t.AddRow({"validator " + std::to_string(i),
                TextTable::Num(initial[i].stake, 0),
                TextTable::Int(rwins[i]) + " / " +
                    TextTable::Num(randomized.accounts()[i].stake, 0),
                TextTable::Int(cwins[i]) + " / " +
                    TextTable::Num(coinage.accounts()[i].stake, 0)});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Pure stake-weighted selection compounds: the 60%% whale\n"
                "collects ~60%% of all rewards forever. Coin-age selection\n"
                "(eligible after 30 days, weight saturates at 90, winners'\n"
                "age resets to zero) spreads wins almost evenly — the\n"
                "deck's answer to 'don't the rich get richer?'.\n\n");
  }

  std::printf("-- coin-age eligibility window in action --\n");
  {
    TextTable t({"day", "whale age", "minnow age", "eligible", "winner"});
    PosSimulator pos({{90, 29}, {10, 29}}, PosSimulator::Mode::kCoinAge,
                     CoinAgeOptions{}, 5);
    for (int day = 0; day < 8; ++day) {
      const auto& a = pos.accounts();
      std::string eligible;
      if (a[0].age_days >= 30) eligible += "whale ";
      if (a[1].age_days >= 30) eligible += "minnow";
      if (eligible.empty()) eligible = "nobody";
      int age0 = a[0].age_days, age1 = a[1].age_days;
      int w = pos.Step(0);
      t.AddRow({TextTable::Int(day), TextTable::Int(age0),
                TextTable::Int(age1), eligible,
                w < 0 ? "-" : (w == 0 ? "whale" : "minnow")});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("'Coins that have been unspent for at least 30 days begin\n"
                "competing for the next block' — after a win the clock\n"
                "restarts, benching the winner.\n");
  }
  return 0;
}
