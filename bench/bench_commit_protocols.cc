// F8 — Atomic commitment: 2PC commit/abort flows, the blocking window,
// 3PC's extra phase, and FT-3PC's termination protocol.

#include <cstdio>

#include "commit/three_phase_commit.h"
#include "commit/two_phase_commit.h"
#include "common/table.h"
#include "sim/simulation.h"

using namespace consensus40;
using commit::Transaction;
using commit::TxState;

namespace {

Transaction Tx(uint64_t id, int participants, bool fail_one) {
  Transaction tx;
  tx.tx_id = id;
  for (int p = 0; p < participants; ++p) {
    tx.ops.push_back(
        {p, fail_one && p == 1 ? "FAIL" : "PUT k" + std::to_string(p) + " 1"});
  }
  return tx;
}

}  // namespace

int main() {
  std::printf("==== F8: 2PC vs 3PC ====\n\n");

  std::printf("-- happy paths (3 participants, fixed 1ms hops) --\n");
  {
    TextTable t({"protocol", "outcome", "phases", "msgs", "decision at"});
    {
      sim::NetworkOptions net;
      net.min_delay = net.max_delay = 1 * sim::kMillisecond;
      auto sim_owner =
          sim::Simulation::Builder(1).Network(net).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      std::vector<commit::TwoPcParticipant*> cohorts;
      for (int i = 0; i < 3; ++i) {
        cohorts.push_back(sim.Spawn<commit::TwoPcParticipant>());
      }
      auto* coord = sim.Spawn<commit::TwoPcCoordinator>();
      sim.Start();
      coord->Begin(Tx(1, 3, false));
      sim.RunUntil([&] { return coord->Finished(1); }, 10 * sim::kSecond);
      t.AddRow({"2PC commit", "COMMIT", "2 (prepare, decide)",
                TextTable::Int(sim.stats().messages_sent),
                "2ms (coordinator)"});

      sim.stats().Reset();
      coord->Begin(Tx(2, 3, true));
      sim.RunUntil([&] { return coord->outcome(2).has_value(); },
                   10 * sim::kSecond);
      sim.RunFor(1 * sim::kSecond);
      t.AddRow({"2PC with one No vote", "ABORT (atomic)", "2",
                TextTable::Int(sim.stats().messages_sent), "2ms"});
    }
    {
      sim::NetworkOptions net;
      net.min_delay = net.max_delay = 1 * sim::kMillisecond;
      auto sim_owner =
          sim::Simulation::Builder(2).Network(net).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      std::vector<commit::ThreePcParticipant*> cohorts;
      for (int i = 0; i < 3; ++i) {
        cohorts.push_back(sim.Spawn<commit::ThreePcParticipant>());
      }
      auto* coord = sim.Spawn<commit::ThreePcCoordinator>();
      sim.Start();
      coord->Begin(Tx(1, 3, false));
      sim.RunUntil(
          [&] {
            for (auto* c : cohorts) {
              if (c->state(1) != TxState::kCommitted) return false;
            }
            return true;
          },
          10 * sim::kSecond);
      t.AddRow({"3PC commit", "COMMIT",
                "3 (can-commit, pre-commit, do-commit)",
                TextTable::Int(sim.stats().messages_sent), "4ms"});
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  std::printf("-- coordinator crash in the decision window --\n");
  {
    TextTable t({"protocol", "cohort states 30s after crash", "blocked?"});
    {
      auto sim_owner = sim::Simulation::Builder(3).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      std::vector<commit::TwoPcParticipant*> cohorts;
      for (int i = 0; i < 3; ++i) {
        cohorts.push_back(sim.Spawn<commit::TwoPcParticipant>());
      }
      auto* coord = sim.Spawn<commit::TwoPcCoordinator>();
      sim.Start();
      coord->Begin(Tx(1, 3, false));
      sim.RunUntil(
          [&] { return cohorts[0]->state(1) == TxState::kPrepared; },
          10 * sim::kSecond);
      sim.Crash(coord->id());
      sim.RunFor(30 * sim::kSecond);
      std::string states;
      for (auto* c : cohorts) {
        states += std::string(commit::ToString(c->state(1))) + " ";
      }
      t.AddRow({"2PC", states, "YES - uncertainty window is forever"});
    }
    {
      auto sim_owner = sim::Simulation::Builder(4).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      std::vector<commit::ThreePcParticipant*> cohorts;
      for (int i = 0; i < 3; ++i) {
        cohorts.push_back(sim.Spawn<commit::ThreePcParticipant>());
      }
      auto* coord = sim.Spawn<commit::ThreePcCoordinator>();
      sim.Start();
      coord->Begin(Tx(1, 3, false));
      sim.RunUntil(
          [&] { return cohorts[0]->state(1) == TxState::kPrepared; },
          10 * sim::kSecond);
      sim.Crash(coord->id());
      sim.RunFor(30 * sim::kSecond);
      std::string states;
      for (auto* c : cohorts) {
        states += std::string(commit::ToString(c->state(1))) + " ";
      }
      t.AddRow({"FT-3PC (crash before pre-commit)", states,
                "no - terminated with ABORT"});
    }
    {
      auto sim_owner = sim::Simulation::Builder(5).AutoStart(false).Build();
      sim::Simulation& sim = *sim_owner;
      std::vector<commit::ThreePcParticipant*> cohorts;
      for (int i = 0; i < 3; ++i) {
        cohorts.push_back(sim.Spawn<commit::ThreePcParticipant>());
      }
      auto* coord = sim.Spawn<commit::ThreePcCoordinator>();
      sim.Start();
      coord->Begin(Tx(1, 3, false));
      sim.RunUntil(
          [&] { return cohorts[2]->state(1) == TxState::kPreCommitted; },
          10 * sim::kSecond);
      sim.Crash(coord->id());
      sim.RunFor(30 * sim::kSecond);
      std::string states;
      for (auto* c : cohorts) {
        states += std::string(commit::ToString(c->state(1))) + " ";
      }
      t.AddRow({"FT-3PC (crash after pre-commit)", states,
                "no - terminated with COMMIT"});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("3PC replicates the decision to the cohorts before anyone\n"
                "commits ('like Paxos', per the deck), so the survivors can\n"
                "always terminate: pre-commit seen anywhere => commit;\n"
                "nowhere => abort is provably safe.\n");
  }
  return 0;
}
