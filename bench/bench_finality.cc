// F23 — Finality: the deck's "weak finality guarantees" bullet, measured.
// A double-spending attacker with hash share alpha tries to revert a
// transaction buried k blocks deep. Monte-Carlo race + Nakamoto's
// analytic bound, side by side — and the contrast with BFT's absolute
// finality.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"

using namespace consensus40;

namespace {

/// Monte Carlo: after the victim's block gets k confirmations, the
/// attacker (who has been mining privately since that block) must ever
/// get ahead of the honest chain. Block discovery alternates by a
/// Bernoulli race with p(attacker) = alpha.
double SimulatedReversalProbability(double alpha, int k, int trials,
                                    Rng* rng) {
  int reversals = 0;
  for (int trial = 0; trial < trials; ++trial) {
    // Phase 1: honest chain accumulates k confirmations; count how many
    // blocks the attacker finds meanwhile (negative binomial).
    int attacker = 0;
    int honest = 0;
    while (honest < k) {
      if (rng->Bernoulli(alpha)) {
        ++attacker;
      } else {
        ++honest;
      }
    }
    // Phase 2: gambler's ruin from deficit d = k - attacker (catch-up
    // probability (alpha/(1-alpha))^d for alpha < 0.5). Simulate with a
    // bounded race for exactness.
    int deficit = honest - attacker + 1;  // Must EXCEED the honest chain.
    if (deficit <= 0) {
      ++reversals;
      continue;
    }
    // Truncated random walk: 4000 steps is plenty below alpha = 0.49.
    int position = -deficit;
    bool caught = false;
    for (int step = 0; step < 4000 && !caught; ++step) {
      position += rng->Bernoulli(alpha) ? 1 : -1;
      if (position >= 0) caught = true;
    }
    reversals += caught;
  }
  return static_cast<double>(reversals) / trials;
}

/// Nakamoto's closed form (2008 whitepaper, Poisson approximation).
double AnalyticReversalProbability(double alpha, int k) {
  if (alpha >= 0.5) return 1.0;
  double q_over_p = alpha / (1 - alpha);
  double lambda = k * q_over_p;
  double sum = 1.0;
  double poisson = std::exp(-lambda);
  for (int i = 0; i <= k; ++i) {
    if (i > 0) poisson *= lambda / i;
    sum -= poisson * (1 - std::pow(q_over_p, k - i));
  }
  return std::min(1.0, std::max(0.0, sum));
}

}  // namespace

int main() {
  std::printf("==== F23: probabilistic finality under a double-spender ====\n\n");
  Rng rng(20260706);
  const int kTrials = 20000;
  for (double alpha : {0.10, 0.25, 0.40}) {
    std::printf("-- attacker with %.0f%% of the hash rate --\n", 100 * alpha);
    TextTable t({"confirmations k", "exact race (Monte Carlo)",
                 "Nakamoto whitepaper bound"});
    for (int k : {1, 2, 4, 6, 10}) {
      double sim_p = SimulatedReversalProbability(alpha, k, kTrials, &rng);
      double formula = AnalyticReversalProbability(alpha, k);
      t.AddRow({TextTable::Int(k),
                TextTable::Num(100 * sim_p, 2) + "%",
                TextTable::Num(100 * formula, 2) + "%"});
    }
    std::printf("%s\n", t.ToString().c_str());
  }
  std::printf(
      "Both columns decay exponentially in the confirmation depth; the\n"
      "whitepaper's Poisson approximation is a conservative upper bound\n"
      "that overshoots the exact race at small k (a well-known property —\n"
      "the Monte Carlo column matches Rosenfeld's exact analysis). Either\n"
      "way PoW finality is only ever probabilistic: against a 40%% attacker\n"
      "a payment stays revertable even 10 blocks deep. Contrast the BFT\n"
      "protocols in this library: a PBFT/HotStuff commit is FINAL the\n"
      "moment the quorum forms — the deck's 'weak finality guarantees'\n"
      "bullet is precisely this gap.\n");
  return 0;
}
