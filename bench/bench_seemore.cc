// F17 — SeeMoRe's three hybrid-cloud modes: message bills, quorums,
// private-cloud load, and latency under an inter-cloud delay gap.

#include <cstdio>

#include "common/table.h"
#include "crypto/signatures.h"
#include "seemore/seemore.h"
#include "sim/simulation.h"

using namespace consensus40;
using namespace consensus40::seemore;

namespace {

struct ModeRun {
  double msgs_per_cmd = 0;
  double ms_per_cmd = 0;
  uint64_t private_load = 0;
  int quorum = 0;
  bool done = false;
};

ModeRun Run(SeeMoReMode mode, sim::Duration cross_cloud_delay, uint64_t seed) {
  SeeMoReOptions opts;
  opts.m = 1;
  opts.c = 1;
  opts.mode = mode;
  auto sim_owner = sim::Simulation::Builder(seed).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(seed, opts.n() + 8);
  opts.registry = &registry;
  std::vector<SeeMoReReplica*> replicas;
  for (int i = 0; i < opts.n(); ++i) {
    replicas.push_back(sim.Spawn<SeeMoReReplica>(opts));
  }
  auto* client = sim.Spawn<SeeMoReClient>(opts, 20);
  // Delay model: 1ms inside a cloud, `cross_cloud_delay` across clouds.
  int private_n = opts.private_n();
  int n = opts.n();
  sim.SetDelayFn([private_n, n, cross_cloud_delay](
                     const sim::Envelope& e) -> sim::Duration {
    if (e.from == e.to) return 0;
    auto side = [private_n, n](sim::NodeId id) {
      if (id >= n) return 2;  // Clients sit outside both clouds.
      return id < private_n ? 0 : 1;
    };
    if (side(e.from) != side(e.to)) return cross_cloud_delay;
    return 1 * sim::kMillisecond;
  });
  sim.Start();
  sim::Time t0 = sim.now();
  ModeRun out;
  out.done = sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
  out.msgs_per_cmd = sim.stats().messages_sent / 20.0;
  out.ms_per_cmd = static_cast<double>(sim.now() - t0) / 1000.0 / 20.0;
  for (auto* r : replicas) {
    if (r->IsPrivate()) out.private_load += r->messages_sent();
  }
  out.quorum = replicas[0]->DecisionQuorum();
  return out;
}

}  // namespace

int main() {
  std::printf("==== F17: SeeMoRe (m = 1 Byzantine public, c = 1 crash "
              "private, n = 6) ====\n\n");

  std::printf("-- mode comparison, uniform 1ms network --\n");
  TextTable t({"mode", "phases", "quorum", "msgs/cmd", "private-cloud msgs",
               "ms/cmd"});
  const char* phase_desc[] = {"2 (propose, accept)",
                              "2 (propose, proxy accept)",
                              "3 (propose, validate, accept)"};
  SeeMoReMode modes[] = {SeeMoReMode::kMode1, SeeMoReMode::kMode2,
                         SeeMoReMode::kMode3};
  for (int i = 0; i < 3; ++i) {
    ModeRun r = Run(modes[i], 1 * sim::kMillisecond, 1);
    t.AddRow({ToString(modes[i]), phase_desc[i],
              i == 0 ? "2m+c+1 = 4" : "2m+1 = 3",
              TextTable::Num(r.msgs_per_cmd, 1),
              TextTable::Int(r.private_load),
              TextTable::Num(r.ms_per_cmd, 1)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Mode 1 is centralized O(n) through the trusted primary;\n"
              "modes 2/3 move decisions to the 3m+1 public proxies (O(n^2)\n"
              "gossip) and slash the private cloud's message load — the\n"
              "deck's 'reduce the load on the private cloud' goal.\n\n");

  std::printf("-- latency under a growing inter-cloud delay gap --\n");
  TextTable gap({"cross-cloud delay", "mode 1 ms/cmd", "mode 2 ms/cmd",
                 "mode 3 ms/cmd"});
  for (sim::Duration d :
       {1 * sim::kMillisecond, 10 * sim::kMillisecond, 40 * sim::kMillisecond}) {
    ModeRun r1 = Run(SeeMoReMode::kMode1, d, 2);
    ModeRun r2 = Run(SeeMoReMode::kMode2, d, 2);
    ModeRun r3 = Run(SeeMoReMode::kMode3, d, 2);
    gap.AddRow({TextTable::Num(d / 1000.0, 0) + "ms",
                TextTable::Num(r1.ms_per_cmd, 1),
                TextTable::Num(r2.ms_per_cmd, 1),
                TextTable::Num(r3.ms_per_cmd, 1)});
  }
  std::printf("%s\n", gap.ToString().c_str());
  std::printf("As the clouds drift apart, mode 3 (everything inside the\n"
              "public cloud, private learns asynchronously) keeps the\n"
              "lowest decision latency — the deck's motivation for the\n"
              "untrusted-primary mode despite its extra validation phase.\n");
  return 0;
}
