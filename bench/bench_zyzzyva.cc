// F12 — Zyzzyva: speculative case 1 (3 message delays) vs case 2 (commit
// certificate), and the linear message bill vs PBFT.

#include <cstdio>

#include "common/table.h"
#include "crypto/signatures.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"
#include "zyzzyva/zyzzyva.h"

using namespace consensus40;

namespace {

struct ZRun {
  double msgs_per_cmd;
  double ms_per_cmd;
  int case1;
  int case2;
};

ZRun RunZyzzyva(int n, int ops, bool crash_backup, uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = net.max_delay = 1 * sim::kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(seed, n + 8);
  zyzzyva::ZyzzyvaOptions opts;
  opts.n = n;
  opts.registry = &registry;
  for (int i = 0; i < n; ++i) sim.Spawn<zyzzyva::ZyzzyvaReplica>(opts);
  auto* client = sim.Spawn<zyzzyva::ZyzzyvaClient>(n, &registry, ops);
  if (crash_backup) sim.Crash(n - 1);
  sim.Start();
  sim::Time t0 = sim.now();
  sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
  return {sim.stats().messages_sent / static_cast<double>(ops),
          static_cast<double>(sim.now() - t0) / 1000.0 / ops,
          client->case1_completions(), client->case2_completions()};
}

double RunPbft(int n, int ops, uint64_t seed) {
  sim::NetworkOptions net;
  net.min_delay = net.max_delay = 1 * sim::kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(seed, n + 8);
  pbft::PbftOptions opts;
  opts.n = n;
  opts.registry = &registry;
  for (int i = 0; i < n; ++i) sim.Spawn<pbft::PbftReplica>(opts);
  auto* client = sim.Spawn<pbft::PbftClient>(n, &registry, ops);
  sim.Start();
  sim.RunUntil([&] { return client->done(); }, 600 * sim::kSecond);
  return sim.stats().messages_sent / static_cast<double>(ops);
}

}  // namespace

int main() {
  std::printf("==== F12: Zyzzyva speculative BFT ====\n\n");

  std::printf("-- case 1 vs case 2 --\n");
  TextTable t({"scenario", "completions", "ms/cmd", "msgs/cmd"});
  {
    ZRun fault_free = RunZyzzyva(4, 20, false, 1);
    t.AddRow({"fault-free (case 1)",
              TextTable::Int(fault_free.case1) + " spec / " +
                  TextTable::Int(fault_free.case2) + " cert",
              TextTable::Num(fault_free.ms_per_cmd, 1),
              TextTable::Num(fault_free.msgs_per_cmd, 1)});
    ZRun degraded = RunZyzzyva(4, 20, true, 1);
    t.AddRow({"one crashed backup (case 2)",
              TextTable::Int(degraded.case1) + " spec / " +
                  TextTable::Int(degraded.case2) + " cert",
              TextTable::Num(degraded.ms_per_cmd, 1),
              TextTable::Num(degraded.msgs_per_cmd, 1)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf("Case 1 completes in 3 one-way delays (request, order-req,\n"
              "spec-response): commitment moved to the client. A single\n"
              "straggler forces the client to assemble a 2f+1 commit\n"
              "certificate — 2 extra delays, the deck's case-2 figure.\n\n");

  std::printf("-- message bill vs PBFT --\n");
  TextTable cmp({"n", "Zyzzyva msgs/cmd", "PBFT msgs/cmd", "ratio"});
  for (int n : {4, 7, 10}) {
    double z = RunZyzzyva(n, 15, false, 2).msgs_per_cmd;
    double p = RunPbft(n, 15, 2);
    cmp.AddRow({TextTable::Int(n), TextTable::Num(z, 1), TextTable::Num(p, 1),
                TextTable::Num(p / z, 1) + "x"});
  }
  std::printf("%s\n", cmp.ToString().c_str());
  std::printf("Zyzzyva's fault-free path is linear (one ordering multicast,\n"
              "one response per replica) while PBFT pays two all-to-all\n"
              "phases — the gap widens with n.\n");
  return 0;
}
