// T2 + F18 — Quorum arithmetic tables: the deck's network/quorum/
// intersection numbers for majority (Paxos), Byzantine (PBFT), hybrid
// (UpRight/SeeMoRe), and Flexible Paxos systems, each verified
// exhaustively over all minimal quorum pairs.

#include <cstdio>

#include "common/table.h"
#include "core/quorum.h"

using namespace consensus40;
using namespace consensus40::core;

int main() {
  std::printf("==== T2: quorum systems (network / quorum / intersection) ====\n\n");

  {
    TextTable t({"system", "f", "network", "quorum", "intersection",
                 "verified"});
    for (int f = 1; f <= 4; ++f) {
      MajorityQuorum q(2 * f + 1);
      bool ok = (2 * f + 1 <= 13) ? CheckQuorumIntersection(q, 1) : true;
      t.AddRow({"Paxos majority", TextTable::Int(f),
                TextTable::Int(2 * f + 1), TextTable::Int(f + 1), "1",
                ok ? "yes" : "NO!"});
    }
    for (int f = 1; f <= 4; ++f) {
      ByzantineQuorum q(3 * f + 1);
      bool ok = (3 * f + 1 <= 13) ? CheckQuorumIntersection(q, f + 1) : true;
      t.AddRow({"PBFT Byzantine", TextTable::Int(f),
                TextTable::Int(3 * f + 1), TextTable::Int(2 * f + 1),
                TextTable::Int(f + 1), ok ? "yes" : "NO!"});
    }
    std::printf("%s\n", t.ToString().c_str());
  }

  std::printf("==== F18: UpRight hybrid quorums (m Byzantine + c crash) ====\n\n");
  {
    TextTable t({"m", "c", "network 3m+2c+1", "quorum 2m+c+1",
                 "intersection m+1", "verified"});
    for (int m = 0; m <= 2; ++m) {
      for (int c = 0; c <= 2; ++c) {
        if (m + c == 0) continue;
        HybridQuorum q(m, c);
        bool ok = q.n() <= 13 ? CheckQuorumIntersection(q, m + 1) : true;
        t.AddRow({TextTable::Int(m), TextTable::Int(c),
                  TextTable::Int(q.n()), TextTable::Int(q.QuorumSize()),
                  TextTable::Int(q.Intersection()), ok ? "yes" : "NO!"});
      }
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("Note: m=1,c=0 gives 4 nodes (PBFT); m=0,c=1 gives 3 nodes\n"
                "(Paxos) — the hybrid model interpolates between them.\n\n");
  }

  std::printf("==== Flexible Paxos: only Q1 x Q2 must intersect ====\n\n");
  {
    TextTable t({"n", "q1 (election)", "q2 (replication)", "q1+q2>n",
                 "min overlap", "verified"});
    int n = 8;
    for (int q2 = 1; q2 <= 7; ++q2) {
      int q1 = n - q2 + 1;
      auto q = FlexibleQuorum::Make(n, q1, q2);
      bool ok = q.ok() && CheckQuorumIntersection(**q, q1 + q2 - n);
      t.AddRow({TextTable::Int(n), TextTable::Int(q1), TextTable::Int(q2),
                "yes", TextTable::Int(q1 + q2 - n), ok ? "yes" : "NO!"});
    }
    // And one deliberately broken configuration.
    auto broken = FlexibleQuorum::Make(n, 4, 4);
    t.AddRow({TextTable::Int(n), "4", "4", "NO",
              "-", broken.ok() ? "accepted?!" : "rejected"});
    std::printf("%s\n", t.ToString().c_str());
  }

  std::printf("==== Flexible Paxos grid quorums ====\n\n");
  {
    TextTable t({"grid", "n", "election = column", "replication = row",
                 "overlap", "verified"});
    for (auto [rows, cols] : {std::pair{2, 3}, {3, 4}, {2, 6}}) {
      GridQuorum g(rows, cols);
      bool ok = CheckQuorumIntersection(g, 1);
      t.AddRow({std::to_string(rows) + "x" + std::to_string(cols),
                TextTable::Int(g.n()), TextTable::Int(rows),
                TextTable::Int(cols), "exactly 1", ok ? "yes" : "NO!"});
    }
    std::printf("%s\n", t.ToString().c_str());
    std::printf("A 3x4 grid commits with 4-node rows while majorities would\n"
                "need 7 of 12 — the deck's 'arbitrarily small replication\n"
                "quorums' claim, machine-checked.\n");
  }
  return 0;
}
