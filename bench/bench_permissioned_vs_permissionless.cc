// F24 — The tutorial's overarching frame: the same workload ordered by a
// permissioned committee (PBFT, known participants, absolute finality)
// and by a permissionless mining network (PoW, unknown participants,
// probabilistic finality). One table, both worlds.

#include <cstdio>
#include <memory>

#include "blockchain/miner.h"
#include "common/table.h"
#include "crypto/signatures.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"

using namespace consensus40;

int main() {
  std::printf("==== F24: permissioned vs permissionless ordering ====\n\n");
  std::printf("Workload: 48 transactions, 4 ordering nodes, 1ms LAN.\n\n");

  TextTable t({"metric", "PBFT committee", "PoW miners (60s blocks)"});

  // ---- Permissioned: PBFT ---------------------------------------------
  double pbft_secs = 0;
  uint64_t pbft_msgs = 0;
  {
    sim::NetworkOptions net;
    net.min_delay = net.max_delay = 1 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(31).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(31, 24);
    pbft::PbftOptions opts;
    opts.n = 4;
    opts.registry = &registry;
    opts.batch_size = 4;
    opts.batch_delay = 2 * sim::kMillisecond;
    for (int i = 0; i < 4; ++i) sim.Spawn<pbft::PbftReplica>(opts);
    std::vector<pbft::PbftClient*> clients;
    for (int c = 0; c < 6; ++c) {
      clients.push_back(sim.Spawn<pbft::PbftClient>(
          4, &registry, 8, "k" + std::to_string(c)));
    }
    sim.Start();
    sim.RunUntil(
        [&] {
          for (auto* c : clients) {
            if (!c->done()) return false;
          }
          return true;
        },
        600 * sim::kSecond);
    pbft_secs = static_cast<double>(sim.now()) / sim::kSecond;
    pbft_msgs = sim.stats().messages_sent;
  }

  // ---- Permissionless: PoW --------------------------------------------
  double pow_first_conf_secs = 0, pow_six_conf_secs = 0;
  uint64_t pow_msgs = 0;
  double pow_hashes = 0;
  {
    sim::NetworkOptions net;
    net.min_delay = 200 * sim::kMillisecond;
    net.max_delay = 800 * sim::kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(32).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    blockchain::MinerNetworkParams params;
    params.chain.block_interval_secs = 60;
    params.chain.retarget_interval = 1 << 20;
    params.chain.halving_interval = 1u << 30;
    params.initial_hash_total = 4;
    params.block_tx_limit = 16;
    std::vector<blockchain::Miner*> miners;
    for (int i = 0; i < 4; ++i) {
      miners.push_back(sim.Spawn<blockchain::Miner>(&params, 4, 1.0));
    }
    sim.Start();
    std::vector<blockchain::Transaction> txs;
    for (int k = 0; k < 48; ++k) {
      blockchain::Transaction tx;
      tx.payload = "tx" + std::to_string(k);
      tx.amount = k;
      tx.fee = 1;
      txs.push_back(tx);
      miners[k % 4]->SubmitTransaction(tx);
    }
    auto all_confirmed = [&](int min_conf) {
      const blockchain::BlockTree& tree = miners[0]->tree();
      for (const blockchain::Transaction& tx : txs) {
        bool ok = false;
        for (const crypto::Digest& bh : tree.BestChain()) {
          const blockchain::Block* b = tree.GetBlock(bh);
          for (const blockchain::Transaction& btx : b->txs) {
            if (btx.Hash() == tx.Hash() &&
                tree.Confirmations(bh) >= min_conf) {
              ok = true;
            }
          }
        }
        if (!ok) return false;
      }
      return true;
    };
    sim.RunUntil([&] { return all_confirmed(1); }, 40000 * sim::kSecond);
    pow_first_conf_secs = static_cast<double>(sim.now()) / sim::kSecond;
    sim.RunUntil([&] { return all_confirmed(6); }, 80000 * sim::kSecond);
    pow_six_conf_secs = static_cast<double>(sim.now()) / sim::kSecond;
    pow_msgs = sim.stats().messages_sent;
    for (auto* m : miners) pow_hashes += m->expected_hashes();
  }

  t.AddRow({"participants", "4, known & signed", "4, open set (anyone)"});
  t.AddRow({"time to order all 48 tx",
            TextTable::Num(pbft_secs, 2) + " s (final)",
            TextTable::Num(pow_first_conf_secs, 0) + " s (1 conf)"});
  t.AddRow({"time to 'safe' settlement",
            TextTable::Num(pbft_secs, 2) + " s (same: finality is absolute)",
            TextTable::Num(pow_six_conf_secs, 0) + " s (6 conf, still "
            "probabilistic)"});
  t.AddRow({"messages", TextTable::Int(static_cast<int64_t>(pbft_msgs)),
            TextTable::Int(static_cast<int64_t>(pow_msgs))});
  t.AddRow({"compute burned", "~0 (signatures only)",
            TextTable::Num(pow_hashes, 0) + " hash-units"});
  t.AddRow({"tolerates", "f < n/3 Byzantine, known ids",
            "< 50% hash rate, no identities"});
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "The deck's arc in one table: with known participants, 40 years of\n"
      "consensus buys sub-second absolute finality for the price of a few\n"
      "hundred messages; with unknown participants you replace\n"
      "communication with computation and buy open membership for the\n"
      "price of minutes-to-hours of probabilistic settlement and real\n"
      "energy. Hybrid designs (MinBFT, CheapBFT, XFT, SeeMoRe) and\n"
      "committee blockchains (Tendermint/LibraBFT = PBFT/HotStuff with\n"
      "rotation) populate the space between.\n");
  return 0;
}
