#include <gtest/gtest.h>

#include "core/cnc.h"
#include "core/quorum.h"
#include "core/traits.h"

namespace consensus40::core {
namespace {

TEST(TraitsTest, RegistryHasAllDeckProtocols) {
  const auto& all = AllProtocolTraits();
  EXPECT_EQ(all.size(), 13u);
  for (const char* name :
       {"Paxos", "Raft", "Fast Paxos", "Flexible Paxos", "PBFT", "Zyzzyva",
        "HotStuff", "MinBFT", "CheapBFT", "UpRight", "SeeMoRe", "XFT",
        "PoW (Bitcoin)"}) {
    EXPECT_NE(FindProtocolTraits(name), nullptr) << name;
  }
  EXPECT_EQ(FindProtocolTraits("NotAProtocol"), nullptr);
}

TEST(TraitsTest, DeckTaxonomyCards) {
  // Spot-check the cards against the slides.
  const ProtocolTraits* paxos = FindProtocolTraits("Paxos");
  EXPECT_EQ(paxos->synchrony, Synchrony::kPartiallySynchronous);
  EXPECT_EQ(paxos->failure_model, FailureModel::kCrash);
  EXPECT_EQ(paxos->nodes_required(1, 0), 3);
  EXPECT_EQ(paxos->nodes_required(2, 0), 5);
  EXPECT_EQ(paxos->complexity, "O(N)");

  const ProtocolTraits* pbft = FindProtocolTraits("PBFT");
  EXPECT_EQ(pbft->failure_model, FailureModel::kByzantine);
  EXPECT_EQ(pbft->nodes_required(1, 0), 4);
  EXPECT_EQ(pbft->phases, "3");
  EXPECT_EQ(pbft->complexity, "O(N^2)");

  const ProtocolTraits* hotstuff = FindProtocolTraits("HotStuff");
  EXPECT_EQ(hotstuff->phases, "7");
  EXPECT_EQ(hotstuff->complexity, "O(N)");

  const ProtocolTraits* minbft = FindProtocolTraits("MinBFT");
  EXPECT_EQ(minbft->nodes_required(1, 0), 3);  // 2f+1 despite Byzantine.

  const ProtocolTraits* upright = FindProtocolTraits("UpRight");
  EXPECT_EQ(upright->failure_model, FailureModel::kHybrid);
  EXPECT_EQ(upright->nodes_required(2, 3), 3 * 2 + 2 * 3 + 1);

  const ProtocolTraits* pow = FindProtocolTraits("PoW (Bitcoin)");
  EXPECT_EQ(pow->awareness, Awareness::kUnknown);
}

TEST(TraitsTest, ToStringCoversAllEnums) {
  EXPECT_STREQ(ToString(Synchrony::kSynchronous), "synchronous");
  EXPECT_STREQ(ToString(Synchrony::kAsynchronous), "asynchronous");
  EXPECT_STREQ(ToString(Synchrony::kPartiallySynchronous),
               "partially-synchronous");
  EXPECT_STREQ(ToString(FailureModel::kCrash), "crash");
  EXPECT_STREQ(ToString(FailureModel::kByzantine), "Byzantine");
  EXPECT_STREQ(ToString(FailureModel::kHybrid), "hybrid");
  EXPECT_STREQ(ToString(Strategy::kPessimistic), "pessimistic");
  EXPECT_STREQ(ToString(Strategy::kOptimistic), "optimistic");
  EXPECT_STREQ(ToString(Awareness::kKnown), "known");
  EXPECT_STREQ(ToString(Awareness::kUnknown), "unknown");
}

TEST(QuorumTest, MajoritySizes) {
  MajorityQuorum q5(5);
  EXPECT_EQ(q5.ElectionQuorumSize(), 3);
  EXPECT_EQ(q5.MaxFaults(), 2);
  MajorityQuorum q4(4);
  EXPECT_EQ(q4.ElectionQuorumSize(), 3);
  EXPECT_EQ(q4.MaxFaults(), 1);
}

TEST(QuorumTest, MajoritySetPredicate) {
  MajorityQuorum q(5);
  EXPECT_TRUE(q.IsReplicationQuorum({0, 1, 2}));
  EXPECT_FALSE(q.IsReplicationQuorum({0, 1}));
  // Out-of-range ids don't count.
  EXPECT_FALSE(q.IsReplicationQuorum({0, 1, 7}));
}

TEST(QuorumTest, ByzantineArithmetic) {
  // The deck: 3f+1 replicas, quorums of 2f+1, intersection >= f+1.
  for (int f = 1; f <= 4; ++f) {
    ByzantineQuorum q(3 * f + 1);
    EXPECT_EQ(q.MaxFaults(), f);
    EXPECT_EQ(q.QuorumSize(), 2 * f + 1);
    EXPECT_EQ(q.Intersection(), f + 1);
  }
}

TEST(QuorumTest, FlexibleRejectsNonIntersecting) {
  EXPECT_FALSE(FlexibleQuorum::Make(10, 5, 5).ok());
  EXPECT_TRUE(FlexibleQuorum::Make(10, 5, 6).ok());
  EXPECT_FALSE(FlexibleQuorum::Make(10, 0, 11).ok());
  EXPECT_FALSE(FlexibleQuorum::Make(10, 11, 5).ok());
}

TEST(QuorumTest, FlexibleAsymmetricSizes) {
  auto q = FlexibleQuorum::Make(10, 9, 2);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->ElectionQuorumSize(), 9);
  EXPECT_EQ((*q)->ReplicationQuorumSize(), 2);
  EXPECT_TRUE((*q)->IsReplicationQuorum({3, 7}));
  EXPECT_FALSE((*q)->IsElectionQuorum({0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(QuorumTest, GridRowsAndColumns) {
  GridQuorum g(3, 4);  // ids: r*4+c
  EXPECT_EQ(g.n(), 12);
  // Row 1 = {4,5,6,7} is a replication quorum.
  EXPECT_TRUE(g.IsReplicationQuorum({4, 5, 6, 7}));
  EXPECT_FALSE(g.IsReplicationQuorum({4, 5, 6}));
  // Column 2 = {2,6,10} is an election quorum.
  EXPECT_TRUE(g.IsElectionQuorum({2, 6, 10}));
  EXPECT_FALSE(g.IsElectionQuorum({2, 6}));
  // A row is not an election quorum (unless cols==1).
  EXPECT_FALSE(g.IsElectionQuorum({4, 5, 6, 7}));
}

TEST(QuorumTest, HybridUpRightArithmetic) {
  // UpRight: network 3m+2c+1, quorum 2m+c+1, intersection m+1.
  for (int m = 0; m <= 3; ++m) {
    for (int c = 0; c <= 3; ++c) {
      if (m + c == 0) continue;
      HybridQuorum q(m, c);
      EXPECT_EQ(q.n(), 3 * m + 2 * c + 1);
      EXPECT_EQ(q.QuorumSize(), 2 * m + c + 1);
      EXPECT_EQ(q.Intersection(), m + 1);
    }
  }
}

// Property sweep: the intersection guarantees hold for every pair of
// (minimal) quorums, exhaustively.
TEST(QuorumPropertyTest, MajorityIntersectsInOne) {
  for (int n = 3; n <= 9; ++n) {
    EXPECT_TRUE(CheckQuorumIntersection(MajorityQuorum(n), 1)) << "n=" << n;
  }
}

TEST(QuorumPropertyTest, ByzantineIntersectsInFPlusOne) {
  for (int f = 1; f <= 3; ++f) {
    ByzantineQuorum q(3 * f + 1);
    EXPECT_TRUE(CheckQuorumIntersection(q, f + 1)) << "f=" << f;
    // And f+2 must NOT always hold (tightness).
    EXPECT_FALSE(CheckQuorumIntersection(q, f + 2)) << "f=" << f;
  }
}

TEST(QuorumPropertyTest, FlexibleIntersectsInQ1PlusQ2MinusN) {
  int n = 8;
  for (int q1 = 1; q1 <= n; ++q1) {
    for (int q2 = n - q1 + 1; q2 <= n; ++q2) {
      auto q = FlexibleQuorum::Make(n, q1, q2);
      ASSERT_TRUE(q.ok());
      int overlap = q1 + q2 - n;
      EXPECT_TRUE(CheckQuorumIntersection(**q, overlap))
          << "q1=" << q1 << " q2=" << q2;
      EXPECT_FALSE(CheckQuorumIntersection(**q, overlap + 1))
          << "q1=" << q1 << " q2=" << q2;
    }
  }
}

TEST(QuorumPropertyTest, GridRowMeetsEveryColumnExactlyOnce) {
  GridQuorum g(3, 4);
  EXPECT_TRUE(CheckQuorumIntersection(g, 1));
  EXPECT_FALSE(CheckQuorumIntersection(g, 2));
}

TEST(QuorumPropertyTest, HybridIntersectsInMPlusOne) {
  for (int m = 0; m <= 2; ++m) {
    for (int c = 0; c <= 2; ++c) {
      if (m + c == 0 || 3 * m + 2 * c + 1 > 12) continue;
      HybridQuorum q(m, c);
      EXPECT_TRUE(CheckQuorumIntersection(q, m + 1))
          << "m=" << m << " c=" << c;
    }
  }
}

TEST(CncTest, PhaseMapTagsAndDefaults) {
  CncPhaseMap map;
  map.Tag("prepare", CncPhase::kLeaderElection);
  map.Tag("accept", CncPhase::kFaultTolerantAgreement);
  EXPECT_EQ(map.PhaseOf("prepare"), CncPhase::kLeaderElection);
  EXPECT_EQ(map.PhaseOf("unknown"), CncPhase::kOther);
}

TEST(CncTest, ToStringNames) {
  EXPECT_STREQ(ToString(CncPhase::kLeaderElection), "LeaderElection");
  EXPECT_STREQ(ToString(CncPhase::kValueDiscovery), "ValueDiscovery");
  EXPECT_STREQ(ToString(CncPhase::kFaultTolerantAgreement),
               "FaultTolerantAgreement");
  EXPECT_STREQ(ToString(CncPhase::kDecision), "Decision");
}

}  // namespace
}  // namespace consensus40::core
