#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/signatures.h"
#include "minbft/minbft.h"
#include "sim/simulation.h"

namespace consensus40::minbft {
namespace {

using sim::kMillisecond;
using sim::kSecond;

/// Byzantine primary that replays an old UI with a different command —
/// exactly the equivocation the USIG makes impossible.
class UiReplayingPrimary : public MinBftReplica {
 public:
  explicit UiReplayingPrimary(MinBftOptions options) : MinBftReplica(options) {}
  int forgeries = 0;

 protected:
  bool MaybeActMaliciouslyOnRequest(const smr::Command& cmd,
                                    const crypto::Signature& sig) override {
    ++forgeries;
    // Create a legitimate UI for the real command but attach an altered
    // command: VerifyUi must fail at every honest backup.
    crypto::Sha256 h;
    int64_t v = view();
    h.Update(&v, sizeof(v));
    crypto::Digest d = cmd.Hash();
    h.Update(d.data(), d.size());
    crypto::Usig::UI ui = options_.usig->CreateUi(id(), h.Finish());

    auto prepare = std::make_shared<PrepareMsg>();
    prepare->view = view();
    prepare->cmd = cmd;
    prepare->cmd.op = "PUT stolen 666";
    prepare->client_sig = sig;
    prepare->ui = ui;
    for (int r = 0; r < options_.n; ++r) Send(r, prepare);
    return true;
  }
};

struct MinBftCluster {
  explicit MinBftCluster(int n, uint64_t seed = 1, bool byz_primary = false)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner), registry(seed, n + 8), usig(&registry) {
    MinBftOptions opts;
    opts.n = n;
    opts.registry = &registry;
    opts.usig = &usig;
    for (int i = 0; i < n; ++i) {
      if (i == 0 && byz_primary) {
        replicas.push_back(sim.Spawn<UiReplayingPrimary>(opts));
        sim.MarkByzantine(i);
      } else {
        replicas.push_back(sim.Spawn<MinBftReplica>(opts));
      }
    }
  }

  MinBftClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(sim.Spawn<MinBftClient>(
        static_cast<int>(replicas.size()), &registry, ops, key));
    return clients.back();
  }

  void CheckSafety() const {
    for (size_t a = 0; a < replicas.size(); ++a) {
      if (sim.IsByzantine(replicas[a]->id())) continue;
      for (size_t b = a + 1; b < replicas.size(); ++b) {
        if (sim.IsByzantine(replicas[b]->id())) continue;
        const auto& ca = replicas[a]->executed_commands();
        const auto& cb = replicas[b]->executed_commands();
        size_t overlap = std::min(ca.size(), cb.size());
        for (size_t i = 0; i < overlap; ++i) {
          ASSERT_TRUE(ca[i] == cb[i])
              << "replicas " << a << "," << b << " diverge at " << i;
        }
      }
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  crypto::KeyRegistry registry;
  crypto::Usig usig;
  std::vector<MinBftReplica*> replicas;
  std::vector<MinBftClient*> clients;
};

TEST(MinBftTest, CommitsWithTwoFPlusOneReplicas) {
  MinBftCluster cluster(3);  // f = 1: only 3 replicas, not PBFT's 4.
  MinBftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  cluster.CheckSafety();
}

TEST(MinBftTest, TwoPhasesOnly) {
  MinBftCluster cluster(3);
  MinBftClient* client = cluster.AddClient(5);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  // Only prepare + commit protocol messages — no pre-prepare phase.
  const auto& by_type = cluster.sim.stats().sent_by_type;
  EXPECT_GT(by_type.at("minbft-prepare"), 0u);
  EXPECT_GT(by_type.at("minbft-commit"), 0u);
  EXPECT_EQ(by_type.count("pre-prepare"), 0u);
}

TEST(MinBftTest, ReplicasConverge) {
  MinBftCluster cluster(5);  // f = 2.
  cluster.AddClient(10, "a");
  cluster.AddClient(10, "b");
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        for (const MinBftClient* c : cluster.clients) {
          if (!c->done()) return false;
        }
        return true;
      },
      120 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  for (const MinBftReplica* r : cluster.replicas) {
    EXPECT_EQ(r->last_executed(), 20u) << r->id();
    EXPECT_EQ(*r->kv().Get("a"), "10");
    EXPECT_EQ(*r->kv().Get("b"), "10");
  }
}

TEST(MinBftTest, ToleratesBackupCrash) {
  MinBftCluster cluster(3);
  MinBftClient* client = cluster.AddClient(10);
  cluster.sim.Crash(2);  // f = 1 crash fault; quorum f+1 = 2 remains.
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  cluster.CheckSafety();
}

TEST(MinBftTest, ViewChangeOnPrimaryCrash) {
  MinBftCluster cluster(3);
  MinBftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   30 * kSecond));
  cluster.sim.Crash(0);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  cluster.CheckSafety();
  for (const MinBftReplica* r : cluster.replicas) {
    if (r->id() == 0) continue;
    EXPECT_GT(r->view(), 0) << r->id();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(MinBftTest, UiForgeryRejectedAndPrimaryDeposed) {
  MinBftCluster cluster(3, 1, /*byz_primary=*/true);
  MinBftClient* client = cluster.AddClient(6);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.CheckSafety();
  auto* evil = dynamic_cast<UiReplayingPrimary*>(cluster.replicas[0]);
  EXPECT_GT(evil->forgeries, 0);
  for (const MinBftReplica* r : cluster.replicas) {
    if (cluster.sim.IsByzantine(r->id())) continue;
    EXPECT_FALSE(r->kv().Get("stolen").has_value()) << r->id();
    EXPECT_GT(r->view(), 0) << r->id();  // The forger was voted out.
  }
}

}  // namespace
}  // namespace consensus40::minbft
