// Parallel fault-schedule sweep engine (src/check/parallel_sweep.h):
//
//   1. Serial-vs-parallel equivalence: the same roster and seed range must
//      produce a byte-identical merged report on 1 worker and on N — the
//      engine's determinism contract.
//   2. Violation discovery parity: an out-of-bounds roster yields the same
//      violations, repro lines included, at every worker count.
//   3. Parallel ddmin: speculative candidate evaluation returns the exact
//      schedule (and committed-run count) of the serial shrinker.
//
// Under the tsan preset this binary doubles as the audit that nothing in
// the simulator/checker path shares mutable state across concurrent
// Simulation instances (RNG, interner, slabs, registries are per-instance).

#include <gtest/gtest.h>

#include <string>

#include "check/adapters.h"
#include "check/checker.h"
#include "check/parallel_sweep.h"
#include "check/shrink.h"
#include "common/thread_pool.h"

namespace consensus40::check {
namespace {

TEST(ParallelSweep, SerialAndParallelReportsAreByteIdentical) {
  SweepOptions options;
  options.seeds = 50;
  const auto roster = AllInBoundsAdapters();

  SweepReport serial = RunSweep(roster, options, /*pool=*/nullptr);

  ThreadPool pool4(4);
  SweepReport parallel = RunSweep(roster, options, &pool4);
  EXPECT_EQ(serial.ToString(), parallel.ToString());

  ThreadPool pool3(3);
  SweepReport parallel3 = RunSweep(roster, options, &pool3);
  EXPECT_EQ(serial.ToString(), parallel3.ToString());

  // In-bounds sweeps must stay clean, and the totals must add up.
  EXPECT_EQ(serial.total_violations(), 0u);
  EXPECT_EQ(serial.total_schedules(), roster.size() * options.seeds);
}

TEST(ParallelSweep, OutOfBoundsViolationsIdenticalAcrossWorkerCounts) {
  // Out-of-bounds rosters exercise the violating path: shrunk and
  // canonicalized repro lines must also merge identically.
  std::vector<std::pair<const char*, AdapterFactory>> roster = {
      {"paxos-oob", MakePaxosOutOfBoundsAdapter()},
      {"floodset-oob", MakeFloodSetOutOfBoundsAdapter()},
  };
  SweepOptions options;
  options.seeds = 60;

  SweepReport serial = RunSweep(roster, options, nullptr);
  ThreadPool pool(4);
  SweepReport parallel = RunSweep(roster, options, &pool);

  EXPECT_EQ(serial.ToString(), parallel.ToString());
  EXPECT_GT(serial.total_violations(), 0u)
      << "out-of-bounds roster found no violations — sweep lost coverage";
  // Every violating seed carries a repro line.
  for (const ProtocolSweepResult& p : serial.protocols) {
    EXPECT_EQ(p.repros.size(), p.violations);
  }
}

TEST(ParallelSweep, SingleWorkerPoolMatchesNullPool) {
  SweepOptions options;
  options.seeds = 30;
  std::vector<std::pair<const char*, AdapterFactory>> roster = {
      {"paxos", MakePaxosAdapter()}, {"raft", MakeRaftAdapter()}};
  SweepReport inline_run = RunSweep(roster, options, nullptr);
  ThreadPool pool1(1);
  SweepReport pooled = RunSweep(roster, options, &pool1);
  EXPECT_EQ(inline_run.ToString(), pooled.ToString());
}

TEST(ParallelShrink, SpeculativeDdminMatchesSerial) {
  AdapterFactory factory = MakePaxosOutOfBoundsAdapter();
  bool found = false;
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    FaultSchedule schedule;
    if (!RunSeed(factory, seed, &schedule).violated()) continue;
    found = true;

    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    ShrinkStats serial_stats;
    FaultSchedule serial =
        ShrinkSchedule(schedule, bounds, replay, 400, &serial_stats, nullptr);

    ThreadPool pool(4);
    ShrinkStats parallel_stats;
    FaultSchedule parallel =
        ShrinkSchedule(schedule, bounds, replay, 400, &parallel_stats, &pool);

    // The committed decision sequence is serial-identical: same result,
    // same committed-run count; only the discarded speculation differs.
    EXPECT_EQ(serial.ToString(), parallel.ToString());
    EXPECT_EQ(serial_stats.runs, parallel_stats.runs);
    EXPECT_EQ(serial_stats.removed, parallel_stats.removed);
    EXPECT_EQ(serial_stats.speculative, 0);
    break;
  }
  ASSERT_TRUE(found) << "no violating seed in 400 — fixture regressed";
}

TEST(ParallelShrink, BudgetExhaustionMatchesSerial) {
  // A tight max_runs must cut off at the same committed evaluation in
  // both modes, leaving the same partially-shrunk schedule.
  AdapterFactory factory = MakePaxosOutOfBoundsAdapter();
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    FaultSchedule schedule;
    if (!RunSeed(factory, seed, &schedule).violated()) continue;

    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    for (int budget : {1, 2, 3, 5}) {
      ShrinkStats ss, ps;
      FaultSchedule serial =
          ShrinkSchedule(schedule, bounds, replay, budget, &ss);
      ThreadPool pool(4);
      FaultSchedule parallel =
          ShrinkSchedule(schedule, bounds, replay, budget, &ps, &pool);
      EXPECT_EQ(serial.ToString(), parallel.ToString()) << "budget " << budget;
      EXPECT_EQ(ss.runs, ps.runs) << "budget " << budget;
    }
    return;
  }
  FAIL() << "no violating seed in 400 — fixture regressed";
}

}  // namespace
}  // namespace consensus40::check
