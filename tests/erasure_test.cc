#include "smr/erasure.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace consensus40::smr {
namespace {

std::string MakePayload(Rng* rng, size_t len) {
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>(rng->NextBounded(256));
  }
  return s;
}

TEST(Erasure, GfFieldBasics) {
  // Multiplicative inverses really invert, across the whole field.
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(GfMul(static_cast<uint8_t>(a), GfInv(static_cast<uint8_t>(a))),
              1);
  }
  EXPECT_EQ(GfMul(0, 123), 0);
  EXPECT_EQ(GfMul(1, 123), 123);
}

TEST(Erasure, RoundTripAtSeveralGeometries) {
  Rng rng(7);
  const std::string payload = MakePayload(&rng, 1000);
  for (auto [k, n] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 3}, {2, 3}, {3, 5}, {4, 7}, {5, 9}, {7, 12}}) {
    std::vector<std::string> shards = ErasureEncode(payload, k, n);
    ASSERT_EQ(static_cast<int>(shards.size()), n);
    std::map<int, std::string> some;
    for (int i = 0; i < k; ++i) some[i] = shards[static_cast<size_t>(i)];
    auto out = ErasureDecode(some, k, n, payload.size());
    ASSERT_TRUE(out.has_value()) << "k=" << k << " n=" << n;
    EXPECT_EQ(*out, payload) << "k=" << k << " n=" << n;
  }
}

TEST(Erasure, EveryKSubsetReconstructs) {
  Rng rng(11);
  const int k = 3, n = 5;
  const std::string payload = MakePayload(&rng, 257);
  std::vector<std::string> shards = ErasureEncode(payload, k, n);
  // All C(5,3) = 10 subsets.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (int c = b + 1; c < n; ++c) {
        std::map<int, std::string> subset{{a, shards[static_cast<size_t>(a)]},
                                          {b, shards[static_cast<size_t>(b)]},
                                          {c, shards[static_cast<size_t>(c)]}};
        auto out = ErasureDecode(subset, k, n, payload.size());
        ASSERT_TRUE(out.has_value()) << a << b << c;
        EXPECT_EQ(*out, payload) << a << b << c;
      }
    }
  }
}

TEST(Erasure, FewerThanKShardsFails) {
  const std::string payload = "hello erasure world";
  std::vector<std::string> shards = ErasureEncode(payload, 3, 5);
  std::map<int, std::string> two{{1, shards[1]}, {4, shards[4]}};
  EXPECT_FALSE(ErasureDecode(two, 3, 5, payload.size()).has_value());
}

TEST(Erasure, ShardedCommandSubsetsReassemble) {
  Command cmd{42, 7, "PUT key some-longish-value-payload"};
  cmd.acked = 5;
  ShardedCommand sc = ShardCommand(cmd, 3, 5);
  // Three acceptors holding one rotated shard each: windows {1}, {3}, {4}.
  ShardAssembler asm1;
  EXPECT_TRUE(asm1.Add(sc.Subset(1, 1)));
  EXPECT_FALSE(asm1.Complete());
  EXPECT_TRUE(asm1.Add(sc.Subset(3, 1)));
  EXPECT_TRUE(asm1.Add(sc.Subset(4, 1)));
  ASSERT_TRUE(asm1.Complete());
  std::optional<Command> back = asm1.Reconstruct();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->client, 42);
  EXPECT_EQ(back->client_seq, 7u);
  EXPECT_EQ(back->op, cmd.op);
  EXPECT_EQ(back->acked, 5u);
}

TEST(Erasure, CorruptShardDetectedAndSurvived) {
  Command cmd{1, 1, std::string(200, 'x')};
  ShardedCommand sc = ShardCommand(cmd, 3, 5);
  // Corrupt shard 0's bytes inside the framed command: flip the LAST byte
  // of the frame (inside shard 0's payload region for a single-shard set).
  Command corrupted = sc.Subset(0, 1);
  corrupted.op.back() = static_cast<char>(corrupted.op.back() ^ 0x40);
  ShardAssembler assembler;
  EXPECT_TRUE(assembler.Add(corrupted));  // Frame ok, shard dropped.
  EXPECT_EQ(assembler.distinct(), 0);
  EXPECT_EQ(assembler.corrupt(), 1u);
  // Three clean shards still reconstruct around the corrupt one.
  EXPECT_TRUE(assembler.Add(sc.Subset(1, 1)));
  EXPECT_TRUE(assembler.Add(sc.Subset(2, 1)));
  EXPECT_TRUE(assembler.Add(sc.Subset(3, 1)));
  ASSERT_TRUE(assembler.Complete());
  std::optional<Command> back = assembler.Reconstruct();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, cmd.op);
}

TEST(Erasure, MergedFramesForwardFragments) {
  Command cmd{9, 3, "INSTALL 0 0 7 payload-bytes"};
  ShardedCommand sc = ShardCommand(cmd, 3, 5);
  ShardAssembler a;
  ASSERT_TRUE(a.Add(sc.Subset(0, 2)));  // Shards {0, 1}: not enough.
  EXPECT_FALSE(a.Complete());
  // A peer holding only a merged fragment forwards it; combined with one
  // more shard elsewhere it completes.
  ShardAssembler b;
  ASSERT_TRUE(b.Add(a.Merged()));
  ASSERT_TRUE(b.Add(sc.Subset(4, 1)));
  ASSERT_TRUE(b.Complete());
  ASSERT_TRUE(b.Reconstruct().has_value());
  EXPECT_EQ(b.Reconstruct()->op, cmd.op);
}

TEST(Erasure, MismatchedFrameRejected) {
  Command cmd1{1, 1, "PUT a 1"};
  Command cmd2{1, 2, "PUT a 2"};
  ShardedCommand s1 = ShardCommand(cmd1, 2, 3);
  ShardedCommand s2 = ShardCommand(cmd2, 2, 3);
  ShardAssembler a;
  ASSERT_TRUE(a.Add(s1.Subset(0, 1)));
  EXPECT_FALSE(a.Add(s2.Subset(1, 1)));  // Different command identity.
  EXPECT_FALSE(a.Add(Command{kShardClient, 1, "garbage"}));
  EXPECT_FALSE(a.Add(Command{1, 1, "PUT a 1"}));  // Not a shard command.
  EXPECT_EQ(a.distinct(), 1);
}

TEST(Erasure, PropertyRandomPayloadSizes) {
  Rng rng(2024);
  // Random sizes including the degenerate 0 and 1-byte payloads, random
  // geometries, reconstruction from a random k-subset every time.
  std::vector<size_t> sizes{0, 1, 2, 3};
  for (int i = 0; i < 20; ++i) {
    sizes.push_back(static_cast<size_t>(rng.NextBounded(5000)));
  }
  for (size_t len : sizes) {
    const int n = 2 + static_cast<int>(rng.NextBounded(8));  // 2..9
    const int k = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n)));
    const std::string payload = MakePayload(&rng, len);
    Command cmd{5, 99, payload};
    ShardedCommand sc = ShardCommand(cmd, k, n);
    // Feed single-shard subsets in a random rotation until complete.
    ShardAssembler assembler;
    const int start = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n)));
    for (int j = 0; j < n && !assembler.Complete(); ++j) {
      ASSERT_TRUE(assembler.Add(sc.Subset((start + j) % n, 1)));
    }
    ASSERT_TRUE(assembler.Complete()) << "len=" << len << " k=" << k;
    std::optional<Command> back = assembler.Reconstruct();
    ASSERT_TRUE(back.has_value()) << "len=" << len << " k=" << k << " n=" << n;
    EXPECT_EQ(back->op, payload) << "len=" << len << " k=" << k << " n=" << n;
  }
}

}  // namespace
}  // namespace consensus40::smr
