// Raft membership reconfiguration — the deck's "Group Membership" entry in
// the equivalent-problems slide: configuration changes flow through the
// same replicated log as ordinary commands (single-server-change rule,
// effective when appended).

#include <gtest/gtest.h>

#include <vector>
#include <memory>

#include "raft/raft.h"
#include "sim/simulation.h"

namespace consensus40::raft {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct World {
  explicit World(uint64_t seed = 1) : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {}

  RaftReplica* SpawnReplica(const std::vector<sim::NodeId>& config,
                            bool passive) {
    RaftOptions opts;
    opts.n = static_cast<int>(config.size());
    opts.initial_config = config;
    opts.join_passive = passive;
    replicas.push_back(sim.Spawn<RaftReplica>(opts));
    return replicas.back();
  }

  RaftReplica* Leader() {
    for (RaftReplica* r : replicas) {
      if (r->IsLeader() && !sim.IsCrashed(r->id())) return r;
    }
    return nullptr;
  }

  bool WaitForLeader() {
    return sim.RunUntil([&] { return Leader() != nullptr; }, 30 * kSecond);
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<RaftReplica*> replicas;
};

TEST(RaftMembershipTest, ConfigCommandRoundTrips) {
  smr::Command cmd = RaftReplica::MakeConfigCommand({0, 2, 5});
  auto parsed = RaftReplica::ParseConfig(cmd);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, (std::vector<sim::NodeId>{0, 2, 5}));
  // Ordinary commands don't parse as configs.
  EXPECT_FALSE(RaftReplica::ParseConfig(smr::Command{1, 1, "PUT x 1"}));
}

TEST(RaftMembershipTest, GrowThreeToFive) {
  World w;
  std::vector<sim::NodeId> initial = {0, 1, 2};
  for (int i = 0; i < 3; ++i) w.SpawnReplica(initial, false);
  // The two future members exist from the start but stay passive.
  std::vector<sim::NodeId> full = {0, 1, 2, 3, 4};
  w.SpawnReplica(initial, true);  // id 3: passive until contacted.
  w.SpawnReplica(initial, true);  // id 4.
  auto* client = w.sim.Spawn<RaftClient>(3, 20);
  w.sim.Start();

  ASSERT_TRUE(w.sim.RunUntil([&] { return client->completed() >= 5; },
                             60 * kSecond));
  // Add servers one at a time (the single-server-change rule).
  ASSERT_TRUE(w.WaitForLeader());
  ASSERT_TRUE(w.Leader()->ChangeConfig({0, 1, 2, 3}).ok());
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        RaftReplica* leader = w.Leader();
        return leader != nullptr && leader->config().size() == 4 &&
               leader->commit_index() > 0 &&
               leader->ChangeConfig({0, 1, 2, 3, 4}).ok();
      },
      60 * kSecond));

  ASSERT_TRUE(w.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  w.sim.RunFor(2 * kSecond);
  // All five replicas converged on the config and the data.
  for (RaftReplica* r : w.replicas) {
    EXPECT_EQ(r->config().size(), 5u) << r->id();
    EXPECT_EQ(*r->kv().Get("x"), "20") << r->id();
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
}

TEST(RaftMembershipTest, GrownClusterUsesNewMajority) {
  // After growing 3 -> 5, two crashes must still be tolerated (the old
  // 3-node cluster would have stalled).
  World w(3);
  std::vector<sim::NodeId> initial = {0, 1, 2};
  for (int i = 0; i < 3; ++i) w.SpawnReplica(initial, false);
  w.SpawnReplica(initial, true);
  w.SpawnReplica(initial, true);
  auto* client = w.sim.Spawn<RaftClient>(5, 25);
  w.sim.Start();
  ASSERT_TRUE(w.sim.RunUntil([&] { return client->completed() >= 3; },
                             60 * kSecond));
  ASSERT_TRUE(w.WaitForLeader());
  ASSERT_TRUE(w.Leader()->ChangeConfig({0, 1, 2, 3}).ok());
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        RaftReplica* leader = w.Leader();
        return leader != nullptr &&
               leader->ChangeConfig({0, 1, 2, 3, 4}).ok();
      },
      60 * kSecond));
  ASSERT_TRUE(w.sim.RunUntil([&] { return client->completed() >= 10; },
                             120 * kSecond));
  // Kill two of the ORIGINAL members.
  sim::NodeId leader_id = w.Leader()->id();
  int killed = 0;
  for (sim::NodeId victim : {0, 1, 2}) {
    if (victim != leader_id && killed < 2) {
      w.sim.Crash(victim);
      ++killed;
    }
  }
  if (killed < 2) w.sim.Crash(leader_id);
  ASSERT_TRUE(w.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(RaftMembershipTest, RemoveServerShrinksQuorum) {
  World w(5);
  std::vector<sim::NodeId> initial = {0, 1, 2, 3, 4};
  for (int i = 0; i < 5; ++i) w.SpawnReplica(initial, false);
  auto* client = w.sim.Spawn<RaftClient>(5, 20);
  w.sim.Start();
  ASSERT_TRUE(w.sim.RunUntil([&] { return client->completed() >= 3; },
                             60 * kSecond));
  // Remove two followers, one at a time.
  ASSERT_TRUE(w.WaitForLeader());
  sim::NodeId leader_id = w.Leader()->id();
  std::vector<sim::NodeId> still = initial;
  std::vector<sim::NodeId> removed;
  for (sim::NodeId candidate : initial) {
    if (candidate != leader_id && removed.size() < 2) {
      removed.push_back(candidate);
    }
  }
  std::vector<sim::NodeId> after_first;
  for (sim::NodeId m : initial) {
    if (m != removed[0]) after_first.push_back(m);
  }
  std::vector<sim::NodeId> after_second;
  for (sim::NodeId m : after_first) {
    if (m != removed[1]) after_second.push_back(m);
  }
  ASSERT_TRUE(w.Leader()->ChangeConfig(after_first).ok());
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        RaftReplica* leader = w.Leader();
        return leader != nullptr && leader->ChangeConfig(after_second).ok();
      },
      60 * kSecond));
  // The removed servers can even be shut off entirely.
  w.sim.Crash(removed[0]);
  w.sim.Crash(removed[1]);
  ASSERT_TRUE(w.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
  // The survivors agree on the 3-member config.
  for (sim::NodeId m : after_second) {
    EXPECT_EQ(w.replicas[m]->config().size(), 3u) << m;
  }
}

TEST(RaftMembershipTest, OnlyOneChangeInFlight) {
  World w(7);
  std::vector<sim::NodeId> initial = {0, 1, 2};
  for (int i = 0; i < 3; ++i) w.SpawnReplica(initial, false);
  w.SpawnReplica(initial, true);
  w.sim.Start();
  ASSERT_TRUE(w.WaitForLeader());
  RaftReplica* leader = w.Leader();
  ASSERT_TRUE(leader->ChangeConfig({0, 1, 2, 3}).ok());
  // Immediately trying another change must fail until the first commits.
  EXPECT_TRUE(leader->ChangeConfig({0, 1, 2}).IsFailedPrecondition());
  // Non-leaders cannot reconfigure.
  for (RaftReplica* r : w.replicas) {
    if (r != leader) {
      EXPECT_TRUE(r->ChangeConfig({0, 1}).IsFailedPrecondition());
    }
  }
  EXPECT_TRUE(leader->ChangeConfig({}).IsInvalidArgument());
}

}  // namespace
}  // namespace consensus40::raft
