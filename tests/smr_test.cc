#include <gtest/gtest.h>

#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::smr {
namespace {

Command Cmd(int client, uint64_t seq, const std::string& op) {
  return Command{client, seq, op};
}

TEST(CommandTest, HashDistinguishesFields) {
  Command a = Cmd(1, 1, "PUT x 1");
  EXPECT_EQ(a.Hash(), Cmd(1, 1, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(2, 1, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(1, 2, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(1, 1, "PUT x 2").Hash());
}

TEST(CommandTest, ToStringFormat) {
  EXPECT_EQ(Cmd(3, 7, "GET k").ToString(), "c3#7:GET k");
}

TEST(KvStoreTest, PutGetDel) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "PUT a 1")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "GET a")), "1");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "DEL a")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 4, "GET a")), "NIL");
  EXPECT_EQ(kv.Apply(Cmd(0, 5, "DEL a")), "NIL");
}

TEST(KvStoreTest, CasSemantics) {
  KvStore kv;
  kv.Apply(Cmd(0, 1, "PUT a 1"));
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "CAS a 2 3")), "FAIL");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "CAS a 1 3")), "OK");
  EXPECT_EQ(*kv.Get("a"), "3");
}

TEST(KvStoreTest, SetnxIsWriteOnce) {
  KvStore kv;
  // First proposal wins; every later proposal reads the established
  // value back — the write-once primitive behind replicated transaction
  // commit records (a recovering participant proposing "A" against an
  // already-decided "C" must learn "C", not overwrite it).
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "SETNX d C")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "SETNX d A")), "C");
  EXPECT_EQ(kv.Apply(Cmd(1, 1, "SETNX d A")), "C");
  EXPECT_EQ(*kv.Get("d"), "C");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "SETNX")), "ERR");
}

TEST(KvStoreTest, IncCountsFromZero) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "INC ctr")), "1");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "INC ctr")), "2");
}

TEST(KvStoreTest, MalformedOpsError) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "")), "ERR");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "FROB x")), "ERR");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "PUT onlykey")), "ERR");
}

TEST(KvStoreTest, StateDigestReflectsContents) {
  KvStore a, b;
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  a.Apply(Cmd(0, 1, "PUT x 1"));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  b.Apply(Cmd(0, 1, "PUT x 1"));
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(KvStoreTest, SameCommandsSameOrderSameState) {
  // The SMR property from the deck: identical logs => identical replicas.
  KvStore a, b;
  std::vector<Command> cmds = {
      Cmd(0, 1, "PUT x 1"), Cmd(1, 1, "INC y"),  Cmd(0, 2, "CAS x 1 2"),
      Cmd(2, 1, "DEL z"),   Cmd(1, 2, "PUT z 9"),
  };
  for (const Command& c : cmds) a.Apply(c);
  for (const Command& c : cmds) b.Apply(c);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(BatchCommandTest, EncodeDecodeRoundTrip) {
  // Ops with spaces must survive: the framing is length-prefixed, not
  // delimiter-based.
  std::vector<Command> cmds = {Cmd(1, 1, "PUT k hello world"),
                               Cmd(2, 7, "INC ctr"), Cmd(1, 2, "GET k")};
  Command batch = EncodeBatch(cmds);
  EXPECT_TRUE(IsBatch(batch));
  EXPECT_EQ(batch.client, kBatchClient);
  EXPECT_EQ(DecodeBatch(batch), cmds);
}

TEST(BatchCommandTest, FlattenExpandsBatchesAndPassesSinglesThrough) {
  Command single = Cmd(3, 4, "INC y");
  std::vector<Command> flat = FlattenCommand(single);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0], single);

  std::vector<Command> cmds = {Cmd(1, 1, "INC a"), Cmd(2, 1, "INC b")};
  EXPECT_EQ(FlattenCommand(EncodeBatch(cmds)), cmds);
}

TEST(BatchCommandTest, MalformedBatchDecodesEmpty) {
  EXPECT_TRUE(DecodeBatch(Cmd(1, 1, "not a batch")).empty());
  Command garbage;
  garbage.client = kBatchClient;
  garbage.op = "3 7 999 short";  // Length prefix overruns the payload.
  EXPECT_TRUE(DecodeBatch(garbage).empty());
}

TEST(DedupingExecutorTest, OutOfOrderWindowArrivalsExecuteExactlyOnce) {
  // A windowed client's seqs can reach the log out of order; the session
  // floor/above split must neither drop nor double-apply them.
  KvStore kv;
  DedupingExecutor dedup;
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 2, "INC x")), "1");  // Ahead of seq 1.
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 1, "INC x")), "2");  // Fills the gap.
  // Retries of both return cached results without re-execution.
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 2, "INC x")), "1");
  EXPECT_EQ(*kv.Get("x"), "2");
  // The gap filled, so the floor advanced and `above` was pruned: memory
  // stays bounded by the client's window.
  const DedupingExecutor::Session& s = dedup.sessions().at(1);
  EXPECT_EQ(s.floor, 2u);
  EXPECT_TRUE(s.above.empty());
}

TEST(DedupingExecutorTest, LookupIsTheDuplicateFastPath) {
  KvStore kv;
  DedupingExecutor dedup;
  EXPECT_EQ(dedup.Lookup(1, 1), nullptr);
  dedup.Apply(&kv, Cmd(1, 1, "INC x"));
  dedup.Apply(&kv, Cmd(1, 3, "INC x"));  // Out of order: above the floor.
  ASSERT_NE(dedup.Lookup(1, 1), nullptr);
  EXPECT_EQ(*dedup.Lookup(1, 1), "1");
  ASSERT_NE(dedup.Lookup(1, 3), nullptr);
  EXPECT_EQ(*dedup.Lookup(1, 3), "2");
  EXPECT_EQ(dedup.Lookup(1, 2), nullptr);  // The gap is not executed.
  EXPECT_EQ(dedup.Lookup(9, 1), nullptr);  // Unknown client.
}

TEST(ReplicatedLogTest, OutOfOrderFillThenApply) {
  ReplicatedLog log;
  KvStore kv;
  log.Set(1, Cmd(0, 2, "PUT b 2"));
  log.CommitThrough(1);
  // Gap at index 0 blocks application.
  EXPECT_TRUE(log.ApplyCommitted(&kv).empty());
  EXPECT_EQ(log.applied_frontier(), 0u);

  log.Set(0, Cmd(0, 1, "PUT a 1"));
  std::vector<std::string> out = log.ApplyCommitted(&kv);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(log.applied_frontier(), 2u);
  EXPECT_EQ(*kv.Get("a"), "1");
  EXPECT_EQ(*kv.Get("b"), "2");
}

TEST(ReplicatedLogTest, CommitFrontierMonotone) {
  ReplicatedLog log;
  log.CommitThrough(5);
  log.CommitThrough(2);
  EXPECT_EQ(log.commit_frontier(), 6u);
}

TEST(ReplicatedLogTest, CommittedPrefixStopsAtGap) {
  ReplicatedLog log;
  log.Set(0, Cmd(0, 1, "a"));
  log.Set(2, Cmd(0, 3, "c"));
  log.CommitThrough(2);
  std::vector<Command> prefix = log.CommittedPrefix();
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0].op, "a");
}

TEST(ReplicatedLogTest, BatchEntriesFlattenInPrefixAndCallbackApply) {
  ReplicatedLog log;
  KvStore kv;
  DedupingExecutor dedup;
  log.Set(0, Cmd(1, 1, "INC x"));
  log.Set(1, EncodeBatch({Cmd(1, 2, "INC x"), Cmd(2, 1, "INC x")}));
  log.CommitThrough(1);

  // The callback fires once per CLIENT command (3, not 2), reporting the
  // batch's slot index for its sub-commands.
  std::vector<std::pair<uint64_t, std::string>> applied;
  log.ApplyCommitted(&kv, &dedup,
                     [&](uint64_t index, const Command&,
                         const std::string& result) {
                       applied.push_back({index, result});
                     });
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0], (std::pair<uint64_t, std::string>{0, "1"}));
  EXPECT_EQ(applied[1], (std::pair<uint64_t, std::string>{1, "2"}));
  EXPECT_EQ(applied[2], (std::pair<uint64_t, std::string>{1, "3"}));

  // CommittedPrefix sees the same per-command view.
  std::vector<Command> prefix = log.CommittedPrefix();
  ASSERT_EQ(prefix.size(), 3u);
  EXPECT_EQ(prefix[1], Cmd(1, 2, "INC x"));
  EXPECT_EQ(prefix[2], Cmd(2, 1, "INC x"));
}

TEST(ReplicatedLogTest, TruncatePrefixDropsSlotsAndIgnoresStaleWrites) {
  ReplicatedLog log;
  KvStore kv;
  for (uint64_t i = 0; i < 4; ++i) {
    log.Set(i, Cmd(1, i + 1, "INC x"));
  }
  log.CommitThrough(3);
  log.ApplyCommitted(&kv);
  log.TruncatePrefix(3);

  EXPECT_EQ(log.start(), 3u);
  EXPECT_EQ(log.Get(1), nullptr);  // Folded into the checkpoint.
  ASSERT_NE(log.Get(3), nullptr);
  // A late write below start() (e.g. a straggler Chosen) is a no-op, not
  // a violation.
  log.Set(1, Cmd(9, 9, "INC y"));
  EXPECT_EQ(log.Get(1), nullptr);
  // The retained prefix restarts at start().
  std::vector<Command> prefix = log.CommittedPrefix();
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0].client_seq, 4u);
}

TEST(ReplicatedLogTest, ResetToSnapshotRebasesALaggingLog) {
  ReplicatedLog log;
  log.Set(0, Cmd(1, 1, "INC x"));
  log.CommitThrough(0);
  log.ResetToSnapshot(5);  // Snapshot covers [0, 5).
  EXPECT_EQ(log.start(), 5u);
  EXPECT_EQ(log.commit_frontier(), 5u);
  EXPECT_EQ(log.applied_frontier(), 5u);
  EXPECT_TRUE(log.CommittedPrefix().empty());
  // Replication resumes above the snapshot.
  KvStore kv;
  log.Set(5, Cmd(1, 6, "INC x"));
  log.CommitThrough(5);
  EXPECT_EQ(log.ApplyCommitted(&kv).size(), 1u);
}

TEST(PrefixConsistencyTest, DetectsDivergence) {
  ReplicatedLog a, b;
  a.Set(0, Cmd(0, 1, "PUT x 1"));
  b.Set(0, Cmd(0, 1, "PUT x 1"));
  a.Set(1, Cmd(0, 2, "PUT y 1"));
  b.Set(1, Cmd(9, 9, "PUT y 666"));
  a.CommitThrough(1);
  b.CommitThrough(1);
  std::string err = CheckPrefixConsistency({&a, &b});
  EXPECT_NE(err.find("diverge at index 1"), std::string::npos) << err;
}

TEST(PrefixConsistencyTest, AcceptsLaggingReplica) {
  ReplicatedLog a, b;
  a.Set(0, Cmd(0, 1, "PUT x 1"));
  a.Set(1, Cmd(0, 2, "PUT y 1"));
  a.CommitThrough(1);
  b.Set(0, Cmd(0, 1, "PUT x 1"));
  b.CommitThrough(0);
  EXPECT_EQ(CheckPrefixConsistency({&a, &b}), "");
}

}  // namespace
}  // namespace consensus40::smr
