#include <gtest/gtest.h>

#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::smr {
namespace {

Command Cmd(int client, uint64_t seq, const std::string& op) {
  return Command{client, seq, op};
}

TEST(CommandTest, HashDistinguishesFields) {
  Command a = Cmd(1, 1, "PUT x 1");
  EXPECT_EQ(a.Hash(), Cmd(1, 1, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(2, 1, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(1, 2, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(1, 1, "PUT x 2").Hash());
}

TEST(CommandTest, ToStringFormat) {
  EXPECT_EQ(Cmd(3, 7, "GET k").ToString(), "c3#7:GET k");
}

TEST(KvStoreTest, PutGetDel) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "PUT a 1")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "GET a")), "1");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "DEL a")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 4, "GET a")), "NIL");
  EXPECT_EQ(kv.Apply(Cmd(0, 5, "DEL a")), "NIL");
}

TEST(KvStoreTest, CasSemantics) {
  KvStore kv;
  kv.Apply(Cmd(0, 1, "PUT a 1"));
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "CAS a 2 3")), "FAIL");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "CAS a 1 3")), "OK");
  EXPECT_EQ(*kv.Get("a"), "3");
}

TEST(KvStoreTest, SetnxIsWriteOnce) {
  KvStore kv;
  // First proposal wins; every later proposal reads the established
  // value back — the write-once primitive behind replicated transaction
  // commit records (a recovering participant proposing "A" against an
  // already-decided "C" must learn "C", not overwrite it).
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "SETNX d C")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "SETNX d A")), "C");
  EXPECT_EQ(kv.Apply(Cmd(1, 1, "SETNX d A")), "C");
  EXPECT_EQ(*kv.Get("d"), "C");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "SETNX")), "ERR");
}

TEST(KvStoreTest, IncCountsFromZero) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "INC ctr")), "1");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "INC ctr")), "2");
}

TEST(KvStoreTest, MalformedOpsError) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "")), "ERR");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "FROB x")), "ERR");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "PUT onlykey")), "ERR");
}

TEST(KvStoreTest, StateDigestReflectsContents) {
  KvStore a, b;
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  a.Apply(Cmd(0, 1, "PUT x 1"));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  b.Apply(Cmd(0, 1, "PUT x 1"));
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(KvStoreTest, SameCommandsSameOrderSameState) {
  // The SMR property from the deck: identical logs => identical replicas.
  KvStore a, b;
  std::vector<Command> cmds = {
      Cmd(0, 1, "PUT x 1"), Cmd(1, 1, "INC y"),  Cmd(0, 2, "CAS x 1 2"),
      Cmd(2, 1, "DEL z"),   Cmd(1, 2, "PUT z 9"),
  };
  for (const Command& c : cmds) a.Apply(c);
  for (const Command& c : cmds) b.Apply(c);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(ReplicatedLogTest, OutOfOrderFillThenApply) {
  ReplicatedLog log;
  KvStore kv;
  log.Set(1, Cmd(0, 2, "PUT b 2"));
  log.CommitThrough(1);
  // Gap at index 0 blocks application.
  EXPECT_TRUE(log.ApplyCommitted(&kv).empty());
  EXPECT_EQ(log.applied_frontier(), 0u);

  log.Set(0, Cmd(0, 1, "PUT a 1"));
  std::vector<std::string> out = log.ApplyCommitted(&kv);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(log.applied_frontier(), 2u);
  EXPECT_EQ(*kv.Get("a"), "1");
  EXPECT_EQ(*kv.Get("b"), "2");
}

TEST(ReplicatedLogTest, CommitFrontierMonotone) {
  ReplicatedLog log;
  log.CommitThrough(5);
  log.CommitThrough(2);
  EXPECT_EQ(log.commit_frontier(), 6u);
}

TEST(ReplicatedLogTest, CommittedPrefixStopsAtGap) {
  ReplicatedLog log;
  log.Set(0, Cmd(0, 1, "a"));
  log.Set(2, Cmd(0, 3, "c"));
  log.CommitThrough(2);
  std::vector<Command> prefix = log.CommittedPrefix();
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0].op, "a");
}

TEST(PrefixConsistencyTest, DetectsDivergence) {
  ReplicatedLog a, b;
  a.Set(0, Cmd(0, 1, "PUT x 1"));
  b.Set(0, Cmd(0, 1, "PUT x 1"));
  a.Set(1, Cmd(0, 2, "PUT y 1"));
  b.Set(1, Cmd(9, 9, "PUT y 666"));
  a.CommitThrough(1);
  b.CommitThrough(1);
  std::string err = CheckPrefixConsistency({&a, &b});
  EXPECT_NE(err.find("diverge at index 1"), std::string::npos) << err;
}

TEST(PrefixConsistencyTest, AcceptsLaggingReplica) {
  ReplicatedLog a, b;
  a.Set(0, Cmd(0, 1, "PUT x 1"));
  a.Set(1, Cmd(0, 2, "PUT y 1"));
  a.CommitThrough(1);
  b.Set(0, Cmd(0, 1, "PUT x 1"));
  b.CommitThrough(0);
  EXPECT_EQ(CheckPrefixConsistency({&a, &b}), "");
}

}  // namespace
}  // namespace consensus40::smr
