#include <gtest/gtest.h>

#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::smr {
namespace {

Command Cmd(int client, uint64_t seq, const std::string& op,
            uint64_t acked = 0) {
  Command cmd{client, seq, op};
  cmd.acked = acked;
  return cmd;
}

TEST(CommandTest, HashDistinguishesFields) {
  Command a = Cmd(1, 1, "PUT x 1");
  EXPECT_EQ(a.Hash(), Cmd(1, 1, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(2, 1, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(1, 2, "PUT x 1").Hash());
  EXPECT_NE(a.Hash(), Cmd(1, 1, "PUT x 2").Hash());
}

TEST(CommandTest, ToStringFormat) {
  EXPECT_EQ(Cmd(3, 7, "GET k").ToString(), "c3#7:GET k");
}

TEST(KvStoreTest, PutGetDel) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "PUT a 1")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "GET a")), "1");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "DEL a")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 4, "GET a")), "NIL");
  EXPECT_EQ(kv.Apply(Cmd(0, 5, "DEL a")), "NIL");
}

TEST(KvStoreTest, CasSemantics) {
  KvStore kv;
  kv.Apply(Cmd(0, 1, "PUT a 1"));
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "CAS a 2 3")), "FAIL");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "CAS a 1 3")), "OK");
  EXPECT_EQ(*kv.Get("a"), "3");
}

TEST(KvStoreTest, SetnxIsWriteOnce) {
  KvStore kv;
  // First proposal wins; every later proposal reads the established
  // value back — the write-once primitive behind replicated transaction
  // commit records (a recovering participant proposing "A" against an
  // already-decided "C" must learn "C", not overwrite it).
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "SETNX d C")), "OK");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "SETNX d A")), "C");
  EXPECT_EQ(kv.Apply(Cmd(1, 1, "SETNX d A")), "C");
  EXPECT_EQ(*kv.Get("d"), "C");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "SETNX")), "ERR");
}

TEST(KvStoreTest, IncCountsFromZero) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "INC ctr")), "1");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "INC ctr")), "2");
}

TEST(KvStoreTest, MalformedOpsError) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(Cmd(0, 1, "")), "ERR");
  EXPECT_EQ(kv.Apply(Cmd(0, 2, "FROB x")), "ERR");
  EXPECT_EQ(kv.Apply(Cmd(0, 3, "PUT onlykey")), "ERR");
}

TEST(KvStoreTest, StateDigestReflectsContents) {
  KvStore a, b;
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  a.Apply(Cmd(0, 1, "PUT x 1"));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  b.Apply(Cmd(0, 1, "PUT x 1"));
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(KvStoreTest, SameCommandsSameOrderSameState) {
  // The SMR property from the deck: identical logs => identical replicas.
  KvStore a, b;
  std::vector<Command> cmds = {
      Cmd(0, 1, "PUT x 1"), Cmd(1, 1, "INC y"),  Cmd(0, 2, "CAS x 1 2"),
      Cmd(2, 1, "DEL z"),   Cmd(1, 2, "PUT z 9"),
  };
  for (const Command& c : cmds) a.Apply(c);
  for (const Command& c : cmds) b.Apply(c);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(BatchCommandTest, EncodeDecodeRoundTrip) {
  // Ops with spaces must survive: the framing is length-prefixed, not
  // delimiter-based.
  std::vector<Command> cmds = {Cmd(1, 1, "PUT k hello world"),
                               Cmd(2, 7, "INC ctr", 6), Cmd(1, 2, "GET k", 1)};
  Command batch = EncodeBatch(cmds);
  EXPECT_TRUE(IsBatch(batch));
  EXPECT_EQ(batch.client, kBatchClient);
  std::optional<std::vector<Command>> decoded = DecodeBatch(batch);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cmds);
  // The piggybacked ack frontier survives the framing too (it drives
  // deterministic session pruning on apply, so it must ride in the log).
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].acked, 0u);
  EXPECT_EQ((*decoded)[1].acked, 6u);
  EXPECT_EQ((*decoded)[2].acked, 1u);
}

TEST(BatchCommandTest, FlattenExpandsBatchesAndPassesSinglesThrough) {
  Command single = Cmd(3, 4, "INC y");
  std::vector<Command> flat = FlattenCommand(single);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0], single);

  std::vector<Command> cmds = {Cmd(1, 1, "INC a"), Cmd(2, 1, "INC b")};
  EXPECT_EQ(FlattenCommand(EncodeBatch(cmds)), cmds);
}

TEST(BatchCommandTest, MalformedBatchIsDistinctFromEmpty) {
  // Non-batch and unparseable inputs are errors (nullopt), NOT empty
  // batches — so a framing bug cannot masquerade as "nothing to apply".
  EXPECT_FALSE(DecodeBatch(Cmd(1, 1, "not a batch")).has_value());
  Command garbage;
  garbage.client = kBatchClient;
  garbage.op = "3 7 0 999 short";  // Length prefix overruns the payload.
  EXPECT_FALSE(DecodeBatch(garbage).has_value());
  // The (never leader-cut) empty batch stays valid.
  std::optional<std::vector<Command>> empty = DecodeBatch(EncodeBatch({}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(DedupingExecutorTest, OutOfOrderWindowArrivalsExecuteExactlyOnce) {
  // A windowed client's seqs can reach the log out of order; the session
  // must neither drop them as "duplicates" nor double-apply them.
  KvStore kv;
  DedupingExecutor dedup;
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 2, "INC x")), "1");  // Ahead of seq 1.
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 1, "INC x")), "2");  // Fills the gap.
  // Retries of both return their own cached results without re-execution.
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 2, "INC x")), "1");
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 1, "INC x")), "2");
  EXPECT_EQ(*kv.Get("x"), "2");
  // Results are retained until the client ACKS them (nothing is pruned
  // on mere contiguity: any unacked seq may still be retried). A later
  // command piggybacking acked=2 prunes both and advances the floor.
  EXPECT_EQ(dedup.sessions().at(1).above.size(), 2u);
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 3, "INC x", /*acked=*/2)), "3");
  const DedupingExecutor::Session& s = dedup.sessions().at(1);
  EXPECT_EQ(s.floor, 2u);
  EXPECT_EQ(s.above.size(), 1u);  // Only the unacked seq 3 remains.
}

TEST(DedupingExecutorTest, ReplyLostRetryGetsItsOwnResultNotANeighbours) {
  // THE windowed-dedup regression: client window > 1, seq 1's reply is
  // lost while seqs 2..5 complete and are acked. The late retry of seq 1
  // must return seq 1's own result — under the old contiguous-floor
  // scheme it returned the highest contiguous op's cached result (seq
  // 5's), handing the client a different operation's outcome.
  KvStore kv;
  DedupingExecutor dedup;
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 1, "INC x")), "1");
  // Seq 1 stays unacked (its reply never arrived), so later commands
  // piggyback acked=0 even as their own replies are consumed.
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 2, "INC x")), "2");
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 3, "SETNX d C")), "OK");
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 4, "INC x")), "3");
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 5, "INC x")), "4");
  // Retry of the reply-lost op: exact result, both paths.
  ASSERT_NE(dedup.Lookup(1, 1), nullptr);
  EXPECT_EQ(*dedup.Lookup(1, 1), "1");
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 1, "INC x")), "1");
  // Same for a 2PC-decision-style SETNX mid-window.
  EXPECT_EQ(*dedup.Lookup(1, 3), "OK");
  EXPECT_EQ(*kv.Get("x"), "4");  // Nothing re-executed.
}

TEST(DedupingExecutorTest, FloorSkipsOffLogSeqsOnceAcked) {
  // Read-index reads consume seqs without ever reaching the log. The
  // acked frontier still advances the floor past them, so one off-log
  // seq cannot pin the session's memory forever.
  KvStore kv;
  DedupingExecutor dedup;
  dedup.Apply(&kv, Cmd(1, 1, "INC x"));
  // Seq 2 was a read-index read (never applied); seq 3 acks both.
  dedup.Apply(&kv, Cmd(1, 3, "INC x", /*acked=*/2));
  const DedupingExecutor::Session& s = dedup.sessions().at(1);
  EXPECT_EQ(s.floor, 2u);
  ASSERT_EQ(s.above.size(), 1u);
  EXPECT_EQ(s.above.count(3), 1u);
}

TEST(DedupingExecutorTest, LookupIsTheDuplicateFastPath) {
  KvStore kv;
  DedupingExecutor dedup;
  EXPECT_EQ(dedup.Lookup(1, 1), nullptr);
  dedup.Apply(&kv, Cmd(1, 1, "INC x"));
  dedup.Apply(&kv, Cmd(1, 3, "INC x"));  // Out of order: unacked window.
  ASSERT_NE(dedup.Lookup(1, 1), nullptr);
  EXPECT_EQ(*dedup.Lookup(1, 1), "1");
  ASSERT_NE(dedup.Lookup(1, 3), nullptr);
  EXPECT_EQ(*dedup.Lookup(1, 3), "2");
  EXPECT_EQ(dedup.Lookup(1, 2), nullptr);  // The gap is not executed.
  EXPECT_EQ(dedup.Lookup(9, 1), nullptr);  // Unknown client.
  // Acked seqs keep answering non-null (the leader must not re-propose)
  // but with a placeholder: the exact result was discarded and the
  // client, having acked, can never consume the reply.
  dedup.Apply(&kv, Cmd(1, 4, "INC x", /*acked=*/3));
  ASSERT_NE(dedup.Lookup(1, 1), nullptr);
  EXPECT_EQ(*dedup.Lookup(1, 1), "");
}

TEST(DedupingExecutorTest, DedupCacheAnswersRetriesAcrossAMigrateFence) {
  // The exactly-once contract a live shard move rests on: an op that
  // executed BEFORE the range was fenced away must keep answering its
  // retries from the dedup cache — the cache is consulted before the
  // store, so the fence never converts an executed op's retry into a
  // MOVED bounce (which the client would treat as "not executed" and
  // re-issue at the new owner: a double-apply).
  KvStore kv;
  DedupingExecutor dedup;
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 1, "INC x")), "1");
  // MIGRATE fences the whole space (lo 0, hi 0 = 2^64) at epoch 2 and
  // returns the snapshot payload containing the counter.
  std::string payload = dedup.Apply(&kv, Cmd(2, 1, "MIGRATE 0 0 2"));
  auto pairs = DecodeKvPairs(payload);
  ASSERT_TRUE(pairs.has_value());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0].first, "x");
  EXPECT_EQ((*pairs)[0].second, "1");
  // The pre-fence op's retry: cached result, not MOVED, and no
  // re-execution behind the fence.
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 1, "INC x")), "1");
  EXPECT_EQ(*kv.Get("x"), "1");
  // A NEW op on the fenced key bounces with the flip epoch.
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 2, "INC x")), "MOVED 2");
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 3, "GET x")), "MOVED 2");
  // Internal "__" keys (decision records, fences) are never fenced.
  EXPECT_EQ(dedup.Apply(&kv, Cmd(1, 4, "SETNX __d.1 C")), "OK");
  // Installing the payload at the (unfenced) destination restores the
  // exact pre-fence state.
  KvStore dest;
  DedupingExecutor dest_dedup;
  EXPECT_EQ(dest_dedup.Apply(&dest, Cmd(2, 2, "INSTALL 0 0 2 " + payload)),
            "OK 1");
  EXPECT_EQ(*dest.Get("x"), "1");
  EXPECT_EQ(dest_dedup.Apply(&dest, Cmd(1, 5, "INC x")), "2");
}

TEST(KvStoreTest, InstallOutranksStaleFenceOnRoundTripMove) {
  // A -> B -> A: the range leaves A (fence stamped epoch 2) and comes
  // back (INSTALL stamped epoch 3). The returning INSTALL's ownership
  // record must outrank the stale fence, or A bounces every op on the
  // range with "MOVED 2" forever — a livelock, since clients' tables
  // route the range straight back to A.
  KvStore a;
  EXPECT_EQ(a.Apply(Cmd(1, 1, "PUT x 1")), "OK");
  std::string payload = a.Apply(Cmd(2, 1, "MIGRATE 0 0 2"));
  EXPECT_EQ(a.Apply(Cmd(1, 2, "GET x")), "MOVED 2");
  EXPECT_EQ(a.Apply(Cmd(2, 2, "INSTALL 0 0 3 " + payload)), "OK 1");
  EXPECT_EQ(a.Apply(Cmd(1, 3, "GET x")), "1");
  // Moving away AGAIN re-fences at a higher epoch: newest stamp wins.
  a.Apply(Cmd(2, 3, "MIGRATE 0 0 4"));
  EXPECT_EQ(a.Apply(Cmd(1, 4, "GET x")), "MOVED 4");
}

TEST(KvStoreTest, InstallReownsOnlyTheInstalledSubrange) {
  // Only the installed [lo, hi) is re-owned: hashes under the fence but
  // outside the returning range keep bouncing.
  std::string low, high;  // One key hashing into each half of the space.
  for (int i = 0; low.empty() || high.empty(); ++i) {
    std::string k = "k" + std::to_string(i);
    std::string& slot = KeyHash(k) < (1ull << 63) ? low : high;
    if (slot.empty()) slot = k;
  }
  KvStore a;
  a.Apply(Cmd(2, 1, "DISOWN 0 0 2"));  // Whole space fenced at epoch 2.
  // The low half returns at epoch 3 (empty payload).
  a.Apply(Cmd(2, 2, "INSTALL 0 9223372036854775808 3 "));
  EXPECT_EQ(a.Apply(Cmd(1, 1, "GET " + low)), "NIL");
  EXPECT_EQ(a.Apply(Cmd(1, 2, "GET " + high)), "MOVED 2");
}

TEST(KvStoreTest, InstallRejectsMalformedHeader) {
  KvStore a;
  EXPECT_EQ(a.Apply(Cmd(1, 1, "INSTALL ")), "ERR");
  EXPECT_EQ(a.Apply(Cmd(1, 2, "INSTALL 0 0")), "ERR");
  EXPECT_EQ(a.Apply(Cmd(1, 3, "INSTALL 0 x 2 ")), "ERR");
}

TEST(ReplicatedLogTest, OutOfOrderFillThenApply) {
  ReplicatedLog log;
  KvStore kv;
  log.Set(1, Cmd(0, 2, "PUT b 2"));
  log.CommitThrough(1);
  // Gap at index 0 blocks application.
  EXPECT_TRUE(log.ApplyCommitted(&kv).empty());
  EXPECT_EQ(log.applied_frontier(), 0u);

  log.Set(0, Cmd(0, 1, "PUT a 1"));
  std::vector<std::string> out = log.ApplyCommitted(&kv);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(log.applied_frontier(), 2u);
  EXPECT_EQ(*kv.Get("a"), "1");
  EXPECT_EQ(*kv.Get("b"), "2");
}

TEST(ReplicatedLogTest, CommitFrontierMonotone) {
  ReplicatedLog log;
  log.CommitThrough(5);
  log.CommitThrough(2);
  EXPECT_EQ(log.commit_frontier(), 6u);
}

TEST(ReplicatedLogTest, CommittedPrefixStopsAtGap) {
  ReplicatedLog log;
  log.Set(0, Cmd(0, 1, "a"));
  log.Set(2, Cmd(0, 3, "c"));
  log.CommitThrough(2);
  std::vector<Command> prefix = log.CommittedPrefix();
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0].op, "a");
}

TEST(ReplicatedLogTest, BatchEntriesFlattenInPrefixAndCallbackApply) {
  ReplicatedLog log;
  KvStore kv;
  DedupingExecutor dedup;
  log.Set(0, Cmd(1, 1, "INC x"));
  log.Set(1, EncodeBatch({Cmd(1, 2, "INC x"), Cmd(2, 1, "INC x")}));
  log.CommitThrough(1);

  // The callback fires once per CLIENT command (3, not 2), reporting the
  // batch's slot index for its sub-commands.
  std::vector<std::pair<uint64_t, std::string>> applied;
  log.ApplyCommitted(&kv, &dedup,
                     [&](uint64_t index, const Command&,
                         const std::string& result) {
                       applied.push_back({index, result});
                     });
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0], (std::pair<uint64_t, std::string>{0, "1"}));
  EXPECT_EQ(applied[1], (std::pair<uint64_t, std::string>{1, "2"}));
  EXPECT_EQ(applied[2], (std::pair<uint64_t, std::string>{1, "3"}));

  // CommittedPrefix sees the same per-command view.
  std::vector<Command> prefix = log.CommittedPrefix();
  ASSERT_EQ(prefix.size(), 3u);
  EXPECT_EQ(prefix[1], Cmd(1, 2, "INC x"));
  EXPECT_EQ(prefix[2], Cmd(2, 1, "INC x"));
}

TEST(ReplicatedLogTest, MalformedBatchEntrySurfacesAsViolation) {
  // A committed batch entry that fails to decode must not silently apply
  // zero commands: the apply loop records a safety violation (and still
  // advances, so the replica does not wedge).
  ReplicatedLog log;
  KvStore kv;
  DedupingExecutor dedup;
  Command garbage;
  garbage.client = kBatchClient;
  garbage.op = "1 1 0 999 short";  // Length prefix overruns the payload.
  log.Set(0, garbage);
  log.Set(1, Cmd(1, 1, "INC x"));
  log.CommitThrough(1);
  std::vector<std::string> out = log.ApplyCommitted(&kv, &dedup);
  ASSERT_EQ(out.size(), 1u);  // Only the well-formed command applied.
  EXPECT_EQ(log.applied_frontier(), 2u);
  ASSERT_EQ(log.violations().size(), 1u);
  EXPECT_NE(log.violations()[0].find("malformed batch"), std::string::npos);
  EXPECT_NE(log.violations()[0].find("slot 0"), std::string::npos);
}

TEST(ReplicatedLogTest, TruncatePrefixDropsSlotsAndIgnoresStaleWrites) {
  ReplicatedLog log;
  KvStore kv;
  for (uint64_t i = 0; i < 4; ++i) {
    log.Set(i, Cmd(1, i + 1, "INC x"));
  }
  log.CommitThrough(3);
  log.ApplyCommitted(&kv);
  log.TruncatePrefix(3);

  EXPECT_EQ(log.start(), 3u);
  EXPECT_EQ(log.Get(1), nullptr);  // Folded into the checkpoint.
  ASSERT_NE(log.Get(3), nullptr);
  // A late write below start() (e.g. a straggler Chosen) is a no-op, not
  // a violation.
  log.Set(1, Cmd(9, 9, "INC y"));
  EXPECT_EQ(log.Get(1), nullptr);
  // The retained prefix restarts at start().
  std::vector<Command> prefix = log.CommittedPrefix();
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0].client_seq, 4u);
}

TEST(ReplicatedLogTest, ResetToSnapshotRebasesALaggingLog) {
  ReplicatedLog log;
  log.Set(0, Cmd(1, 1, "INC x"));
  log.CommitThrough(0);
  log.ResetToSnapshot(5);  // Snapshot covers [0, 5).
  EXPECT_EQ(log.start(), 5u);
  EXPECT_EQ(log.commit_frontier(), 5u);
  EXPECT_EQ(log.applied_frontier(), 5u);
  EXPECT_TRUE(log.CommittedPrefix().empty());
  // Replication resumes above the snapshot.
  KvStore kv;
  log.Set(5, Cmd(1, 6, "INC x"));
  log.CommitThrough(5);
  EXPECT_EQ(log.ApplyCommitted(&kv).size(), 1u);
}

TEST(PrefixConsistencyTest, DetectsDivergence) {
  ReplicatedLog a, b;
  a.Set(0, Cmd(0, 1, "PUT x 1"));
  b.Set(0, Cmd(0, 1, "PUT x 1"));
  a.Set(1, Cmd(0, 2, "PUT y 1"));
  b.Set(1, Cmd(9, 9, "PUT y 666"));
  a.CommitThrough(1);
  b.CommitThrough(1);
  std::string err = CheckPrefixConsistency({&a, &b});
  EXPECT_NE(err.find("diverge at index 1"), std::string::npos) << err;
}

TEST(PrefixConsistencyTest, AcceptsLaggingReplica) {
  ReplicatedLog a, b;
  a.Set(0, Cmd(0, 1, "PUT x 1"));
  a.Set(1, Cmd(0, 2, "PUT y 1"));
  a.CommitThrough(1);
  b.Set(0, Cmd(0, 1, "PUT x 1"));
  b.CommitThrough(0);
  EXPECT_EQ(CheckPrefixConsistency({&a, &b}), "");
}

}  // namespace
}  // namespace consensus40::smr
