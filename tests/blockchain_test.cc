#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "blockchain/block.h"
#include "blockchain/chain.h"
#include "blockchain/miner.h"
#include "blockchain/pos.h"
#include "sim/simulation.h"

namespace consensus40::blockchain {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(TargetTest, LeadingZeroBitsConstruction) {
  Target t = Target::FromLeadingZeroBits(8);
  EXPECT_EQ(t.value[0], 0x00);
  EXPECT_EQ(t.value[1], 0x80);
  crypto::Digest meets{};  // All zeros: certainly below the target.
  EXPECT_TRUE(t.IsMetBy(meets));
  crypto::Digest misses{};
  misses[0] = 0x01;
  EXPECT_FALSE(t.IsMetBy(misses));
}

TEST(TargetTest, ScalingAdjustsDifficulty) {
  Target t = Target::FromLeadingZeroBits(16);
  // Blocks came twice as fast as expected -> halve the target, which
  // doubles the difficulty.
  Target harder = t.Scaled(1, 2);
  EXPECT_NEAR(harder.Difficulty() / t.Difficulty(), 2.0, 0.05);
  // Blocks too slow -> double the target -> half the difficulty.
  Target easier = t.Scaled(2, 1);
  EXPECT_NEAR(easier.Difficulty() / t.Difficulty(), 0.5, 0.05);
}

TEST(TargetTest, ScaleSaturatesAtMax) {
  Target nearly_max = Target::FromLeadingZeroBits(1);
  Target scaled = nearly_max.Scaled(1000, 1);
  EXPECT_EQ(scaled, Target::Max());
}

TEST(BlockRewardTest, HalvingSchedule) {
  EXPECT_EQ(BlockReward(0, 50, 210000), 50);
  EXPECT_EQ(BlockReward(209999, 50, 210000), 50);
  EXPECT_EQ(BlockReward(210000, 50, 210000), 25);
  EXPECT_EQ(BlockReward(420000, 50, 210000), 12);
  EXPECT_EQ(BlockReward(210000ull * 64, 50, 210000), 0);
}

TEST(MiningTest, RealSha256MiningFindsValidNonce) {
  BlockHeader header;
  header.prev_hash = crypto::Sha256::Hash("genesis");
  header.merkle_root = crypto::Sha256::Hash("txs");
  header.timestamp = 12345;
  header.target = Target::FromLeadingZeroBits(12);
  auto nonce = MineNonce(&header, 1u << 22);
  ASSERT_TRUE(nonce.has_value());
  // The found header really meets the target under double SHA-256.
  EXPECT_TRUE(header.target.IsMetBy(header.Hash()));
  EXPECT_GE(crypto::LeadingZeroBits(header.Hash()), 12);
}

TEST(MiningTest, HarderTargetNeedsMoreWorkOnAverage) {
  // Statistical sanity: average nonce count grows ~2x per extra bit.
  auto average_tries = [](int bits) {
    double total = 0;
    for (int i = 0; i < 8; ++i) {
      BlockHeader header;
      header.timestamp = 1000 + i;
      header.target = Target::FromLeadingZeroBits(bits);
      auto nonce = MineNonce(&header, 1u << 24);
      EXPECT_TRUE(nonce.has_value());
      total += static_cast<double>(*nonce) + 1;
    }
    return total / 8;
  };
  EXPECT_GT(average_tries(12), average_tries(6));
}

Block MakeBlock(const BlockTree& tree, const crypto::Digest& parent,
                int32_t miner, uint32_t timestamp) {
  Block block;
  block.header.prev_hash = parent;
  block.header.timestamp = timestamp;
  block.header.target = tree.NextTarget(parent);
  block.miner = miner;
  block.reward = tree.RewardAt(tree.HeightOf(parent) + 1);
  block.header.merkle_root = block.ComputeMerkleRoot();
  return block;
}

ChainOptions TestChain() {
  ChainOptions opts;
  opts.verify_pow = false;
  opts.block_interval_secs = 10;
  opts.retarget_interval = 8;
  opts.initial_reward = 50;
  opts.halving_interval = 16;
  return opts;
}

TEST(BlockTreeTest, AppendsAndTracksHeight) {
  BlockTree tree(TestChain());
  crypto::Digest tip{};
  for (int i = 1; i <= 5; ++i) {
    Block b = MakeBlock(tree, tip, 0, i * 10);
    ASSERT_TRUE(tree.AddBlock(b).ok()) << i;
    tip = b.Hash();
  }
  EXPECT_EQ(tree.BestHeight(), 5u);
  EXPECT_EQ(tree.BestChain().size(), 5u);
  EXPECT_EQ(tree.StaleBlocks(), 0);
}

TEST(BlockTreeTest, RejectsBadBlocks) {
  BlockTree tree(TestChain());
  Block b = MakeBlock(tree, crypto::Digest{}, 0, 10);
  ASSERT_TRUE(tree.AddBlock(b).ok());
  EXPECT_TRUE(tree.AddBlock(b).IsAlreadyExists());

  Block orphan = MakeBlock(tree, crypto::Sha256::Hash("nowhere"), 0, 20);
  orphan.header.target = tree.options().initial_target;
  EXPECT_TRUE(tree.AddBlock(orphan).IsNotFound());

  Block bad_merkle = MakeBlock(tree, b.Hash(), 0, 20);
  bad_merkle.header.merkle_root = crypto::Sha256::Hash("lies");
  EXPECT_TRUE(tree.AddBlock(bad_merkle).IsCorruption());

  Block bad_reward = MakeBlock(tree, b.Hash(), 0, 20);
  bad_reward.reward += 1;
  bad_reward.header.merkle_root = bad_reward.ComputeMerkleRoot();
  EXPECT_TRUE(tree.AddBlock(bad_reward).IsInvalidArgument());
}

TEST(BlockTreeTest, PowEnforcedWhenEnabled) {
  ChainOptions opts = TestChain();
  opts.verify_pow = true;
  opts.initial_target = Target::FromLeadingZeroBits(8);
  BlockTree tree(opts);
  Block b = MakeBlock(tree, crypto::Digest{}, 0, 10);
  // Unmined block: almost surely fails the target.
  Status s = tree.AddBlock(b);
  if (s.ok()) GTEST_SKIP() << "freak hash met the target";
  EXPECT_TRUE(s.IsInvalidArgument());
  // Mine it for real.
  auto nonce = MineNonce(&b.header, 1u << 20);
  ASSERT_TRUE(nonce.has_value());
  EXPECT_TRUE(tree.AddBlock(b).ok());
}

TEST(BlockTreeTest, ForkResolutionByLongestChain) {
  BlockTree tree(TestChain());
  Block a1 = MakeBlock(tree, crypto::Digest{}, 1, 10);
  ASSERT_TRUE(tree.AddBlock(a1).ok());
  // A competing fork at the same height (different miner => different hash).
  Block b1 = MakeBlock(tree, crypto::Digest{}, 2, 10);
  ASSERT_TRUE(tree.AddBlock(b1).ok());
  EXPECT_EQ(tree.BestTip(), a1.Hash());  // First seen wins at equal work.
  EXPECT_EQ(tree.StaleBlocks(), 1);

  // Extend the b-branch: it becomes the longest chain -> reorg.
  Block b2 = MakeBlock(tree, b1.Hash(), 2, 20);
  ASSERT_TRUE(tree.AddBlock(b2).ok());
  EXPECT_EQ(tree.BestTip(), b2.Hash());
  EXPECT_EQ(tree.reorgs(), 1);
  EXPECT_TRUE(tree.OnBestChain(b1.Hash()));
  EXPECT_FALSE(tree.OnBestChain(a1.Hash()));
  // The deck: "transactions in this block are aborted/resubmitted".
  EXPECT_EQ(tree.StaleBlocks(), 1);
  EXPECT_EQ(tree.Confirmations(b1.Hash()), 2);
  EXPECT_EQ(tree.Confirmations(a1.Hash()), 0);
}

TEST(BlockTreeTest, RetargetRaisesDifficultyWhenBlocksTooFast) {
  ChainOptions opts = TestChain();  // interval 10s, retarget every 8.
  BlockTree tree(opts);
  crypto::Digest tip{};
  // Mine 8 blocks only 1 second apart (10x too fast).
  for (int i = 1; i <= 8; ++i) {
    Block b = MakeBlock(tree, tip, 0, i);
    ASSERT_TRUE(tree.AddBlock(b).ok());
    tip = b.Hash();
  }
  Target next = tree.NextTarget(tip);
  double initial_difficulty = opts.initial_target.Difficulty();
  // Clamped at 4x per retarget, like Bitcoin.
  EXPECT_NEAR(next.Difficulty() / initial_difficulty, 4.0, 0.5);
}

TEST(BlockTreeTest, RetargetLowersDifficultyWhenBlocksTooSlow) {
  ChainOptions opts = TestChain();
  BlockTree tree(opts);
  crypto::Digest tip{};
  for (int i = 1; i <= 8; ++i) {
    Block b = MakeBlock(tree, tip, 0, i * 100);  // 10x too slow.
    ASSERT_TRUE(tree.AddBlock(b).ok());
    tip = b.Hash();
  }
  Target next = tree.NextTarget(tip);
  EXPECT_NEAR(opts.initial_target.Difficulty() / next.Difficulty(), 4.0, 0.5);
}

TEST(BlockTreeTest, RewardsByMinerFollowBestChain) {
  BlockTree tree(TestChain());
  crypto::Digest tip{};
  for (int i = 1; i <= 4; ++i) {
    Block b = MakeBlock(tree, tip, i % 2, i * 10);
    ASSERT_TRUE(tree.AddBlock(b).ok());
    tip = b.Hash();
  }
  auto rewards = tree.RewardsByMiner();
  EXPECT_EQ(rewards[0], 100);
  EXPECT_EQ(rewards[1], 100);
}

// ---------------------------------------------------------------------------
// Mining network simulation
// ---------------------------------------------------------------------------

struct MiningWorld {
  MiningWorld(const std::vector<double>& powers, uint64_t seed = 1,
              sim::Duration propagation = 500 * kMillisecond) {
    sim::NetworkOptions net;
    net.min_delay = propagation / 2;
    net.max_delay = propagation;
    sim = sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
    params.chain = TestChain();
    params.chain.block_interval_secs = 60;
    params.chain.retarget_interval = 20;
    double total = 0;
    for (double p : powers) total += p;
    params.initial_hash_total = total;
    for (double p : powers) {
      miners.push_back(sim->Spawn<Miner>(&params, (int)powers.size(), p));
    }
    sim->Start();
  }

  std::unique_ptr<sim::Simulation> sim;
  MinerNetworkParams params;
  std::vector<Miner*> miners;
};

TEST(MiningNetworkTest, ChainsConvergeToCommonPrefix) {
  MiningWorld world({1, 1, 1, 1});
  world.sim->RunFor(3600 * kSecond);  // One simulated hour.
  // Quiesce: stop after propagation settles.
  uint64_t best = 0;
  for (const Miner* m : world.miners) {
    best = std::max(best, m->tree().BestHeight());
  }
  EXPECT_GT(best, 30u);  // ~60 blocks expected at 60s interval.
  // All miners share the best chain except possibly the last block or two
  // still propagating.
  auto chain0 = world.miners[0]->tree().BestChain();
  for (const Miner* m : world.miners) {
    auto chain = m->tree().BestChain();
    size_t overlap = std::min(chain.size(), chain0.size());
    ASSERT_GE(overlap + 2, std::max(chain.size(), chain0.size()));
    for (size_t i = 0; i + 2 < overlap; ++i) {
      EXPECT_EQ(chain[i], chain0[i]) << "prefix diverges at " << i;
    }
  }
}

TEST(MiningNetworkTest, HashShareDeterminesBlockShare) {
  // The deck's centralization figure: a pool with 80% of the hash rate
  // wins ~80% of the blocks.
  MiningWorld world({8, 1, 1});
  world.sim->RunFor(20000 * kSecond);
  auto rewards = world.miners[0]->tree().RewardsByMiner();
  double total = 0;
  for (const auto& [miner, reward] : rewards) total += reward;
  ASSERT_GT(total, 0);
  EXPECT_NEAR(rewards[0] / total, 0.8, 0.1);
}

TEST(MiningNetworkTest, SlowPropagationCausesMoreForks) {
  MiningWorld fast({1, 1, 1, 1}, 7, /*propagation=*/100 * kMillisecond);
  fast.sim->RunFor(7200 * kSecond);
  MiningWorld slow({1, 1, 1, 1}, 7, /*propagation=*/20 * kSecond);
  slow.sim->RunFor(7200 * kSecond);
  int fast_stale = fast.miners[0]->tree().StaleBlocks();
  int slow_stale = slow.miners[0]->tree().StaleBlocks();
  EXPECT_GT(slow_stale, fast_stale);
}

TEST(MiningNetworkTest, RetargetTracksHashPowerChange) {
  MiningWorld world({1, 1});
  // After a while, quadruple everyone's hash power.
  world.sim->RunFor(4000 * kSecond);
  for (Miner* m : world.miners) m->SetHashPower(4 * m->hash_power());
  world.sim->RunFor(30000 * kSecond);
  // Difficulty must have risen well above the initial one.
  double d0 = world.params.chain.initial_target.Difficulty();
  double d_now = world.miners[0]
                     ->tree()
                     .NextTarget(world.miners[0]->tree().BestTip())
                     .Difficulty();
  EXPECT_GT(d_now / d0, 2.0);
}

// ---------------------------------------------------------------------------
// Proof of stake
// ---------------------------------------------------------------------------

TEST(PosTest, RandomizedSelectionProportionalToStake) {
  std::vector<StakeAccount> accounts = {{10, 0}, {30, 0}, {60, 0}};
  Rng rng(5);
  std::map<size_t, int> wins;
  for (int i = 0; i < 30000; ++i) wins[SelectRandomized(accounts, &rng)]++;
  EXPECT_NEAR(wins[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(wins[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(wins[2] / 30000.0, 0.6, 0.02);
}

TEST(PosTest, CoinAgeRequiresThirtyDays) {
  std::vector<StakeAccount> accounts = {{100, 5}, {1, 45}};
  Rng rng(5);
  // Only the aged small account is eligible despite the big young stake.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SelectByCoinAge(accounts, CoinAgeOptions{}, &rng), 1);
  }
  // Nobody eligible -> -1.
  std::vector<StakeAccount> young = {{100, 0}, {50, 29}};
  EXPECT_EQ(SelectByCoinAge(young, CoinAgeOptions{}, &rng), -1);
}

TEST(PosTest, CoinAgeSaturatesAtNinetyDays) {
  // Two equal stakes at age 90 and age 900 must win equally often.
  std::vector<StakeAccount> accounts = {{50, 90}, {50, 900}};
  Rng rng(5);
  std::map<int, int> wins;
  for (int i = 0; i < 20000; ++i) {
    wins[SelectByCoinAge(accounts, CoinAgeOptions{}, &rng)]++;
  }
  EXPECT_NEAR(wins[0] / 20000.0, 0.5, 0.02);
}

TEST(PosTest, SimulatorResetsWinnersAge) {
  PosSimulator pos({{50, 40}, {50, 40}}, PosSimulator::Mode::kCoinAge,
                   CoinAgeOptions{}, 3);
  int winner = pos.Step(10);
  ASSERT_GE(winner, 0);
  EXPECT_EQ(pos.accounts()[winner].age_days, 0);
  EXPECT_EQ(pos.accounts()[winner].stake, 60);
  EXPECT_EQ(pos.accounts()[1 - winner].age_days, 41);
}

TEST(PosTest, CoinAgeGivesSmallHoldersTurns) {
  // The deck's "don't the rich get richer?" mitigation: with coin-age and
  // winner-age resets, a 10%-stake account ends up winning about as many
  // blocks as a 90%-stake whale — each win benches the winner for 30 days,
  // during which the other account's age (eventually) makes it win.
  PosSimulator pos({{90, 30}, {10, 30}}, PosSimulator::Mode::kCoinAge,
                   CoinAgeOptions{}, 9);
  int wins[2] = {0, 0};
  for (int day = 0; day < 3000; ++day) {
    int w = pos.Step(0);
    if (w >= 0) ++wins[w];
  }
  EXPECT_GT(wins[1], 0);
  // Near-parity despite the 9x stake imbalance.
  EXPECT_GT(wins[1], wins[0] * 7 / 10);

  // Contrast: pure randomized selection IS stake-proportional.
  PosSimulator rich({{90, 0}, {10, 0}}, PosSimulator::Mode::kRandomized,
                    CoinAgeOptions{}, 9);
  int rwins[2] = {0, 0};
  for (int day = 0; day < 3000; ++day) ++rwins[rich.Step(0)];
  EXPECT_LT(rwins[1], rwins[0]);
}

}  // namespace
}  // namespace consensus40::blockchain
