#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/signatures.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"

namespace consensus40::pbft {
namespace {

using sim::kMillisecond;
using sim::kSecond;

/// Byzantine primary that assigns the SAME sequence number to DIFFERENT
/// commands for different halves of the cluster — the attack PBFT's prepare
/// phase exists to stop.
/// Byzantine primary that (a) tries to forge a client command (invalid
/// client signature — rejected outright by honest replicas) and (b)
/// equivocates by sending the real command to half the cluster and the
/// forgery to the other half for the same sequence number.
class EquivocatingPrimary : public PbftReplica {
 public:
  explicit EquivocatingPrimary(PbftOptions options) : PbftReplica(options) {}

  int equivocations = 0;

 protected:
  bool MaybeActMaliciouslyOnRequest(const smr::Command& cmd,
                                    const crypto::Signature& sig) override {
    ++equivocations;
    uint64_t seq = next_equivocation_seq_++;
    smr::Command evil = cmd;
    evil.op = "PUT stolen 666";  // Forgery: sig does not cover this op.

    for (int r = 0; r < options_.n; ++r) {
      auto pp = std::make_shared<PrePrepareMsg>();
      pp->view = view();
      pp->seq = seq;
      pp->cmds = {(r % 2 == 0) ? cmd : evil};
      pp->client_sigs = {sig};
      pp->digest = BatchDigest(pp->cmds);
      crypto::Sha256 h;
      int64_t v = pp->view;
      h.Update(&v, sizeof(v));
      h.Update(&seq, sizeof(seq));
      h.Update(pp->digest.data(), pp->digest.size());
      pp->sig = options_.registry->Sign(id(), h.Finish());
      Send(r, pp);
    }
    return true;  // Skip honest processing.
  }

 private:
  uint64_t next_equivocation_seq_ = 1;
};

struct PbftCluster {
  explicit PbftCluster(int n, uint64_t seed = 1, int byzantine_primary = -1)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner), registry(seed, n + 8) {  // Replicas + up to 8 clients.
    PbftOptions opts;
    opts.n = n;
    opts.registry = &registry;
    for (int i = 0; i < n; ++i) {
      if (i == byzantine_primary) {
        replicas.push_back(sim.Spawn<EquivocatingPrimary>(opts));
        sim.MarkByzantine(i);
      } else {
        replicas.push_back(sim.Spawn<PbftReplica>(opts));
      }
    }
  }

  PbftClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(sim.Spawn<PbftClient>(
        static_cast<int>(replicas.size()), &registry, ops, key));
    return clients.back();
  }

  void CheckSafety() const {
    // Executed command sequences of correct replicas must be prefixes of
    // each other.
    for (size_t a = 0; a < replicas.size(); ++a) {
      if (sim.IsByzantine(replicas[a]->id())) continue;
      for (size_t b = a + 1; b < replicas.size(); ++b) {
        if (sim.IsByzantine(replicas[b]->id())) continue;
        const auto& ca = replicas[a]->executed_commands();
        const auto& cb = replicas[b]->executed_commands();
        size_t overlap = std::min(ca.size(), cb.size());
        for (size_t i = 0; i < overlap; ++i) {
          ASSERT_TRUE(ca[i] == cb[i])
              << "replicas " << a << "," << b << " diverge at " << i;
        }
      }
    }
    for (const PbftReplica* r : replicas) {
      if (sim.IsByzantine(r->id())) continue;
      EXPECT_TRUE(r->violations().empty())
          << "replica " << r->id() << ": " << r->violations()[0];
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  crypto::KeyRegistry registry;
  std::vector<PbftReplica*> replicas;
  std::vector<PbftClient*> clients;
};

TEST(PbftTest, FaultFreeCaseCommits) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  cluster.CheckSafety();
  // No view change was needed.
  for (const PbftReplica* r : cluster.replicas) {
    EXPECT_EQ(r->view(), 0) << r->id();
  }
}

TEST(PbftTest, ReplicasConvergeAndCheckpoint) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(40);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  for (const PbftReplica* r : cluster.replicas) {
    EXPECT_EQ(r->last_executed(), 40u);
    EXPECT_EQ(*r->kv().Get("x"), "40");
    // Checkpoints every 16: stable checkpoint advanced and log collected.
    EXPECT_GE(r->stable_checkpoint(), 32u);
    EXPECT_LE(r->LogSizeForTest(), 16u);
  }
}

TEST(PbftTest, ToleratesFCrashedBackups) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(10);
  cluster.sim.Crash(2);  // One backup down: f=1 tolerated.
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  cluster.CheckSafety();
}

TEST(PbftTest, CannotProgressBeyondF) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(5);
  cluster.sim.Crash(2);
  cluster.sim.Crash(3);  // Two faults with f=1: no quorum of 3.
  cluster.sim.Start();
  EXPECT_FALSE(
      cluster.sim.RunUntil([&] { return client->done(); }, 10 * kSecond));
  EXPECT_EQ(client->completed(), 0);
  cluster.CheckSafety();
}

TEST(PbftTest, ViewChangeOnPrimaryCrash) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(12);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   30 * kSecond));
  cluster.sim.Crash(0);  // Primary of view 0.
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  cluster.CheckSafety();
  // The cluster moved to a view led by someone else.
  for (const PbftReplica* r : cluster.replicas) {
    if (r->id() == 0) continue;
    EXPECT_GT(r->view(), 0) << r->id();
  }
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(PbftTest, EquivocatingPrimaryCannotSplitState) {
  PbftCluster cluster(4, 1, /*byzantine_primary=*/0);
  PbftClient* client = cluster.AddClient(8);
  cluster.sim.Start();
  // Progress requires deposing the equivocator via view change.
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.CheckSafety();
  auto* evil = dynamic_cast<EquivocatingPrimary*>(cluster.replicas[0]);
  EXPECT_GT(evil->equivocations, 0);
  // The evil command never committed anywhere.
  for (const PbftReplica* r : cluster.replicas) {
    if (cluster.sim.IsByzantine(r->id())) continue;
    EXPECT_FALSE(r->kv().Get("stolen").has_value()) << r->id();
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(PbftTest, MessageComplexityIsQuadratic) {
  // The deck: PBFT agreement is O(N^2) per request.
  auto messages_per_request = [](int n) {
    PbftCluster cluster(n);
    PbftClient* client = cluster.AddClient(10);
    cluster.sim.Start();
    cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond);
    EXPECT_TRUE(client->done()) << "n=" << n;
    uint64_t prepares = cluster.sim.stats().sent_by_type.at("prepare");
    uint64_t commits = cluster.sim.stats().sent_by_type.at("commit");
    return (prepares + commits) / 10.0;
  };
  double at4 = messages_per_request(4);
  double at7 = messages_per_request(7);
  double at10 = messages_per_request(10);
  // Quadratic growth: (n=10)/(n=4) messages should scale ~ (10/4)^2 = 6.25,
  // far beyond linear 2.5.
  EXPECT_GT(at7, at4 * 2.0);
  EXPECT_GT(at10 / at4, 4.0);
}

// A replica that slept through several checkpoints catches up by state
// transfer (f+1 matching histories) instead of replaying garbage-collected
// agreement messages.
TEST(PbftTest, RestartedReplicaCatchesUpViaStateTransfer) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(40);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 5; },
                                   60 * kSecond));
  cluster.sim.Crash(2);  // A backup sleeps...
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 35; },
                                   240 * kSecond));
  // ...through at least one checkpoint (interval 16), past GC.
  EXPECT_GE(cluster.replicas[0]->stable_checkpoint(), 16u);
  cluster.sim.Restart(2);
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        return client->done() &&
               cluster.replicas[2]->last_executed() >= 40u;
      },
      240 * kSecond));
  cluster.CheckSafety();
  EXPECT_EQ(*cluster.replicas[2]->kv().Get("x"), "40");
}

// A replica that missed a view change re-synchronizes via the relayed
// NewView proof.
TEST(PbftTest, RestartedReplicaLearnsNewView) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(20);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   60 * kSecond));
  cluster.sim.Crash(3);  // Backup down...
  cluster.sim.Crash(0);  // ...and the primary dies: view change to 1.
  cluster.sim.RunFor(2 * kSecond);
  cluster.sim.Restart(3);  // Restarted node still believes view 0.
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  EXPECT_GT(cluster.replicas[3]->view(), 0);
}

TEST(PbftTest, BatchingFoldsConcurrentRequests) {
  PbftCluster cluster(4);
  // Rebuild with batching enabled: a fresh cluster (options differ).
  auto sim_owner = sim::Simulation::Builder(21).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(21, 16);
  pbft::PbftOptions opts;
  opts.n = 4;
  opts.registry = &registry;
  opts.batch_size = 8;
  opts.batch_delay = 3 * kMillisecond;
  std::vector<PbftReplica*> replicas;
  for (int i = 0; i < 4; ++i) replicas.push_back(sim.Spawn<PbftReplica>(opts));
  std::vector<PbftClient*> clients;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(
        sim.Spawn<PbftClient>(4, &registry, 6, "k" + std::to_string(c)));
  }
  sim.Start();
  ASSERT_TRUE(sim.RunUntil(
      [&] {
        for (auto* c : clients) {
          if (!c->done()) return false;
        }
        return true;
      },
      240 * kSecond));
  // 36 commands needed far fewer than 36 agreement instances.
  uint64_t preprepares = sim.stats().sent_by_type.at("pre-prepare");
  EXPECT_LT(preprepares / 4, 30u);  // Instances = pre-prepares / (n-1)... /4.
  // Every replica executed all 36 commands in an identical order.
  for (size_t a = 1; a < replicas.size(); ++a) {
    ASSERT_EQ(replicas[a]->executed_commands().size(), 36u);
    for (size_t i = 0; i < 36; ++i) {
      ASSERT_TRUE(replicas[a]->executed_commands()[i] ==
                  replicas[0]->executed_commands()[i]);
    }
  }
}

TEST(PbftTest, MultipleClientsInterleaveSafely) {
  PbftCluster cluster(7);  // f = 2.
  cluster.AddClient(8, "a");
  cluster.AddClient(8, "b");
  cluster.AddClient(8, "c");
  cluster.sim.Crash(5);
  cluster.sim.Crash(6);  // Full f = 2 crash faults.
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        for (const PbftClient* c : cluster.clients) {
          if (!c->done()) return false;
        }
        return true;
      },
      240 * kSecond));
  cluster.CheckSafety();
  cluster.sim.RunFor(2 * kSecond);
  for (const PbftReplica* r : cluster.replicas) {
    if (cluster.sim.IsCrashed(r->id())) continue;
    EXPECT_EQ(*r->kv().Get("a"), "8");
    EXPECT_EQ(*r->kv().Get("b"), "8");
    EXPECT_EQ(*r->kv().Get("c"), "8");
  }
}

// Regression pin for a view-change deadlock found by the Byzantine sweep
// (pbft_byz seed 93, shrunk): a partition that strands the cluster
// mid-agreement, plus a crash/restart inside the minority side. Slots
// that lived through the resulting view-change storm held prepare votes
// from several views; one stale vote made a replica's PreparedProof fail
// verification, and ProcessNewView rejected ENTIRE new-view messages the
// builder considered fine — so no view ever installed again and the last
// request could never commit. The fix is vote hygiene per (view, digest)
// plus builder/receiver symmetry (both skip invalid proofs).
TEST(PbftTest, RecoversFromPartitionStraddlingViewChangeStorm) {
  PbftCluster cluster(4, /*seed=*/93);
  PbftClient* client = cluster.AddClient(12);  // Client is process 4.
  cluster.sim.ScheduleAt(155 * kMillisecond,
                         [&] { cluster.sim.Partition({{0, 1, 4}, {2, 3}}); });
  cluster.sim.ScheduleAt(300 * kMillisecond, [&] { cluster.sim.Crash(2); });
  cluster.sim.ScheduleAt(1700 * kMillisecond, [&] { cluster.sim.Heal(); });
  cluster.sim.ScheduleAt(2000 * kMillisecond, [&] { cluster.sim.Restart(2); });
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 22 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
}

// A storm of view changes must not leave per-view bookkeeping behind:
// pending view-change message sets and built-new-view guards are GC'd up
// to the installed view, so their footprint reflects the CURRENT
// negotiation, not the storm's length.
TEST(PbftTest, ViewChangeStormKeepsBookkeepingBounded) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(16);
  // Strand the cluster without a quorum for a while: every replica keeps
  // escalating its pending view, piling up view-change messages for many
  // distinct target views.
  cluster.sim.ScheduleAt(200 * kMillisecond,
                         [&] { cluster.sim.Partition({{0, 1, 4}, {2, 3}}); });
  cluster.sim.ScheduleAt(3200 * kMillisecond, [&] { cluster.sim.Heal(); });
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  for (const PbftReplica* r : cluster.replicas) {
    // A handful of live entries (views above the installed one may still
    // be in flight) — but nothing proportional to the storm.
    EXPECT_LE(r->ViewChangeBookkeepingForTest(), 6u) << r->id();
  }
}

// After a view change installs, the deposed negotiation's escalation
// watchdog must die with it: a stale watchdog firing into the healthy new
// view would depose a perfectly live primary and churn views forever.
TEST(PbftTest, NoViewChurnAfterViewInstalls) {
  PbftCluster cluster(4);
  PbftClient* client = cluster.AddClient(12);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   30 * kSecond));
  cluster.sim.Crash(0);  // Primary of view 0: one view change to view 1.
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  cluster.sim.RunFor(5 * kSecond);
  std::vector<int64_t> views;
  for (const PbftReplica* r : cluster.replicas) {
    if (cluster.sim.IsCrashed(r->id())) continue;
    views.push_back(r->view());
  }
  // Idle cluster, healthy primary: views must be frozen now.
  cluster.sim.RunFor(10 * kSecond);
  size_t i = 0;
  for (const PbftReplica* r : cluster.replicas) {
    if (cluster.sim.IsCrashed(r->id())) continue;
    EXPECT_EQ(r->view(), views[i++]) << "view churned while idle: replica "
                                     << r->id();
  }
  cluster.CheckSafety();
}

}  // namespace
}  // namespace consensus40::pbft
