// The "equivalent problems" slide: consensus and atomic broadcast reduce
// to each other. Reduction 2 is exercised with REAL consensus underneath —
// each instance is a fresh single-decree Paxos cluster in the simulator.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/reductions.h"
#include "paxos/paxos.h"
#include "sim/simulation.h"

namespace consensus40::core {
namespace {

/// Scripted atomic broadcast: a fixed total order, shared by all "nodes".
class ScriptedAb : public AtomicBroadcastService {
 public:
  void Broadcast(const std::string& message) override {
    order_.push_back(message);
  }
  std::vector<std::string> Delivered() override { return order_; }

 private:
  std::vector<std::string> order_;
};

TEST(ReductionTest, ConsensusFromAtomicBroadcastDecidesFirstDelivery) {
  ScriptedAb ab;
  ConsensusFromAtomicBroadcast node1(&ab);
  ConsensusFromAtomicBroadcast node2(&ab);
  std::string d1 = node1.Decide(1, "apple");
  std::string d2 = node2.Decide(1, "banana");
  // Both decide the FIRST delivered message: agreement + validity.
  EXPECT_EQ(d1, "apple");
  EXPECT_EQ(d2, "apple");
}

/// Real consensus service: every instance is a fresh 3-node single-decree
/// Paxos cluster inside one shared simulation. Multiple logical callers of
/// the same instance feed proposals to distinct proposer nodes.
class PaxosConsensusService : public ConsensusService {
 public:
  PaxosConsensusService() : sim_owner(
            sim::Simulation::Builder(99).AutoStart(false).Build()),
        sim_(*sim_owner) {}

  std::string Decide(uint64_t instance, const std::string& proposal) override {
    auto& cluster = instances_[instance];
    if (cluster.nodes.empty()) {
      paxos::PaxosOptions opts;
      // Node ids are global in the simulation; single-decree Paxos
      // hardwires the cluster to ids [0, n). To keep each instance
      // independent we give every instance its own simulation.
      opts.n = 3;
      cluster.sim =
          sim::Simulation::Builder(1000 + instance).AutoStart(false).Build();
      for (int i = 0; i < 3; ++i) {
        cluster.nodes.push_back(cluster.sim->Spawn<paxos::PaxosNode>(opts));
      }
      cluster.sim->Start();
    }
    // Each new caller proposes at the next proposer.
    size_t proposer = cluster.calls++ % cluster.nodes.size();
    cluster.nodes[proposer]->Propose(proposal);
    cluster.sim->RunUntil(
        [&] { return cluster.nodes[proposer]->decided().has_value(); },
        60 * sim::kSecond);
    return cluster.nodes[proposer]->decided().value_or("");
  }

 private:
  struct Instance {
    std::unique_ptr<sim::Simulation> sim;
    std::vector<paxos::PaxosNode*> nodes;
    size_t calls = 0;
  };
  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim_;
  std::map<uint64_t, Instance> instances_;
};

TEST(ReductionTest, AtomicBroadcastFromRealPaxosConsensus) {
  PaxosConsensusService consensus;
  AtomicBroadcastFromConsensus ab(&consensus);
  ab.Broadcast("m3");
  ab.Broadcast("m1");
  ab.Broadcast("m2");
  std::vector<std::string> first = ab.Delivered();
  ASSERT_EQ(first.size(), 3u);
  // Later broadcasts extend (never reorder) the delivered prefix.
  ab.Broadcast("m4");
  std::vector<std::string> second = ab.Delivered();
  ASSERT_EQ(second.size(), 4u);
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(second[i], first[i]);
  EXPECT_EQ(second[3], "m4");
}

TEST(ReductionTest, TwoAbNodesOverSharedConsensusAgreeOnOrder) {
  // Two atomic-broadcast endpoints share the same consensus service (the
  // reduction's whole point: the decided batches force identical delivery
  // orders even when the endpoints' pending sets differ).
  PaxosConsensusService consensus;
  AtomicBroadcastFromConsensus node_a(&consensus);
  AtomicBroadcastFromConsensus node_b(&consensus);
  node_a.Broadcast("x");
  node_a.Broadcast("y");
  node_b.Broadcast("z");  // b has a different pending set.
  std::vector<std::string> da = node_a.Delivered();
  std::vector<std::string> db = node_b.Delivered();
  // Instance 1 decided ONE batch; both sides delivered it first.
  size_t overlap = std::min(da.size(), db.size());
  ASSERT_GT(overlap, 0u);
  for (size_t i = 0; i < overlap; ++i) {
    EXPECT_EQ(da[i], db[i]) << "delivery orders diverge at " << i;
  }
}

TEST(ReductionTest, BatchEncodingRoundTripsViaDelivery) {
  PaxosConsensusService consensus;
  AtomicBroadcastFromConsensus ab(&consensus);
  // Messages containing the delimiter characters survive encoding.
  ab.Broadcast("weird:message:with:colons");
  ab.Broadcast("12:34");
  std::vector<std::string> delivered = ab.Delivered();
  ASSERT_EQ(delivered.size(), 2u);
  std::set<std::string> got(delivered.begin(), delivered.end());
  EXPECT_TRUE(got.count("weird:message:with:colons"));
  EXPECT_TRUE(got.count("12:34"));
}

}  // namespace
}  // namespace consensus40::core
