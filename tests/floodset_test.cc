#include <gtest/gtest.h>

#include "agreement/floodset.h"

namespace consensus40::agreement {
namespace {

CrashPlan NoCrashes(int n) {
  CrashPlan plan;
  plan.crash_round.assign(n, 1 << 20);
  plan.reach.assign(n, n);
  return plan;
}

std::vector<std::string> Values(int n) {
  std::vector<std::string> values;
  for (int i = 0; i < n; ++i) values.push_back("v" + std::to_string(i));
  return values;
}

TEST(FloodSetTest, FaultFreeOneRoundSuffices) {
  auto result = RunFloodSet(Values(5), NoCrashes(5), 1);
  EXPECT_TRUE(FloodSetAgreement(result, NoCrashes(5), 1));
  for (const auto& decision : result.decisions) EXPECT_EQ(decision, "v0");
}

TEST(FloodSetTest, FPlusOneRoundsBeatAdversarialCrashes) {
  // f = 2 crashers, each disrupting one round with partial delivery.
  int n = 6;
  CrashPlan plan = NoCrashes(n);
  plan.crash_round[0] = 1;  // v0's owner dies mid-broadcast in round 1...
  plan.reach[0] = 2;        // ...reaching only process 1.
  plan.crash_round[1] = 2;  // The only holder of v0 dies in round 2...
  plan.reach[1] = 3;        // ...reaching only process 2.
  auto result = RunFloodSet(Values(n), plan, /*rounds=*/3);  // f+1 = 3.
  EXPECT_TRUE(FloodSetAgreement(result, plan, 3));
  // Process 2 relayed v0 in the clean third round: everyone decides v0.
  for (int i = 2; i < n; ++i) EXPECT_EQ(result.decisions[i], "v0");
}

TEST(FloodSetTest, TooFewRoundsCanDisagree) {
  // The same adversary with only f = 2 rounds: process 2 knows v0 but
  // others do not -> disagreement. This is WHY the bound is f+1.
  int n = 6;
  CrashPlan plan = NoCrashes(n);
  plan.crash_round[0] = 1;
  plan.reach[0] = 2;
  plan.crash_round[1] = 2;
  plan.reach[1] = 3;
  auto result = RunFloodSet(Values(n), plan, /*rounds=*/2);
  EXPECT_FALSE(FloodSetAgreement(result, plan, 2));
}

class FloodSetSweep : public ::testing::TestWithParam<int> {};

TEST_P(FloodSetSweep, ChainedCrashersNeedExactlyFPlusOneRounds) {
  // f crashers hand the minimum value down a chain, one per round.
  int f = GetParam();
  int n = f + 4;
  CrashPlan plan = NoCrashes(n);
  for (int i = 0; i < f; ++i) {
    plan.crash_round[i] = i + 1;
    plan.reach[i] = i + 2;  // Deliver only to the next crasher.
  }
  auto good = RunFloodSet(Values(n), plan, f + 1);
  EXPECT_TRUE(FloodSetAgreement(good, plan, f + 1)) << "f=" << f;
  if (f >= 1) {
    auto bad = RunFloodSet(Values(n), plan, f);
    EXPECT_FALSE(FloodSetAgreement(bad, plan, f)) << "f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FloodSetSweep, ::testing::Values(1, 2, 3, 4));

TEST(FloodSetTest, ValidityDecisionWasSomeonesInput) {
  int n = 5;
  CrashPlan plan = NoCrashes(n);
  plan.crash_round[3] = 1;
  plan.reach[3] = 0;
  auto result = RunFloodSet(Values(n), plan, 2);
  for (int i = 0; i < n; ++i) {
    if (plan.crash_round[i] <= 2) continue;
    bool found = false;
    for (const std::string& v : Values(n)) found |= (v == result.decisions[i]);
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace consensus40::agreement
