#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "common/slab.h"
#include "common/status.h"
#include "common/table.h"

namespace consensus40 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("f must be >= 0");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "f must be >= 0");
  EXPECT_EQ(s.ToString(), "InvalidArgument: f must be >= 0");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad = Status::NotFound("missing");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

// Modulo-bias regression: with bound = 1.5 * 2^63, a naive `Next() % bound`
// maps the wrapped range [bound, 2^64) back onto [0, 2^62), making the low
// quarter of the range twice as likely (~50% of draws instead of ~33%).
// Rejection sampling must keep the distribution flat.
TEST(RngTest, BoundedHasNoModuloBiasAtLargeBounds) {
  constexpr uint64_t kBound = 0xC000000000000000ull;   // 1.5 * 2^63.
  constexpr uint64_t kQuarter = 0x4000000000000000ull; // 2^62.
  Rng rng(19);
  const int kTrials = 20000;
  int low = 0;
  for (int i = 0; i < kTrials; ++i) {
    low += rng.NextBounded(kBound) < kQuarter;
  }
  double freq = static_cast<double>(low) / kTrials;
  EXPECT_NEAR(freq, 1.0 / 3.0, 0.02);  // Biased modulo lands near 0.5.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3);
  double freq = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / kTrials, 10.0, 0.5);
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::map<size_t, int> counts;
  const int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kTrials), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kTrials), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kTrials), 0.6, 0.02);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(23);
  Rng fork1 = a.Fork();
  Rng b(23);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "n"});
  t.AddRow({"paxos", "5"});
  t.AddRow({"pbft", "10"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | n  |"), std::string::npos);
  EXPECT_NE(s.find("| paxos | 5  |"), std::string::npos);
  EXPECT_NE(s.find("| pbft  | 10 |"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| x | "), std::string::npos);
}

TEST(SlabTest, ReusesFreedSlotsLifoWithoutGrowing) {
  Slab<int> slab;
  const uint32_t a = slab.Allocate();
  const uint32_t b = slab.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(slab.live(), 2u);
  slab.Free(b);
  slab.Free(a);
  EXPECT_EQ(slab.live(), 0u);
  // LIFO recycling: the most recently freed slot comes back first, and the
  // high-water mark does not move.
  EXPECT_EQ(slab.Allocate(), a);
  EXPECT_EQ(slab.Allocate(), b);
  EXPECT_EQ(slab.capacity(), 2u);
}

TEST(SlabTest, HandleGoesStaleWhenSlotIsFreed) {
  Slab<int> slab;
  const uint32_t index = slab.Allocate();
  slab[index] = 41;
  const Slab<int>::Handle h = slab.HandleFor(index);
  ASSERT_NE(h, 0u);
  ASSERT_NE(slab.Resolve(h), nullptr);
  *slab.Resolve(h) = 42;
  EXPECT_EQ(slab[index], 42);

  slab.Free(index);
  EXPECT_EQ(slab.Resolve(h), nullptr);

  // Reusing the slot mints a new generation: the old handle stays dead and
  // the new one resolves.
  const uint32_t again = slab.Allocate();
  EXPECT_EQ(again, index);
  EXPECT_EQ(slab.Resolve(h), nullptr);
  EXPECT_NE(slab.HandleFor(again), h);
  EXPECT_NE(slab.Resolve(slab.HandleFor(again)), nullptr);
}

TEST(SlabTest, ResolveRejectsGarbageHandles) {
  Slab<int> slab;
  EXPECT_EQ(slab.Resolve(0), nullptr);
  EXPECT_EQ(slab.Resolve(~0ull), nullptr);
  const uint32_t index = slab.Allocate();
  const Slab<int>::Handle h = slab.HandleFor(index);
  EXPECT_EQ(slab.Resolve(h + (1ull << 32)), nullptr);  // Wrong generation.
  EXPECT_EQ(slab.Resolve(h + 1), nullptr);             // Wrong index.
}

TEST(InternerTest, SameContentSameId) {
  StringInterner interner;
  const char a[] = "prepare";
  const std::string b = "prepare";  // Distinct pointer, same content.
  const TypeId id = interner.Intern(a);
  EXPECT_EQ(interner.Intern(a), id);        // Pointer fast path.
  EXPECT_EQ(interner.Intern(b.c_str()), id);  // Content path.
  EXPECT_EQ(interner.NameOf(id), "prepare");
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, IdsAreDenseInFirstInternOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("a"), 0);
  EXPECT_EQ(interner.Intern("b"), 1);
  EXPECT_EQ(interner.Intern("a"), 0);
  EXPECT_EQ(interner.Intern("c"), 2);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.NameOf(1), "b");
}

}  // namespace
}  // namespace consensus40
