#include <gtest/gtest.h>

#include <string>
#include <vector>
#include <memory>

#include "randomized/benor.h"
#include "sim/simulation.h"

namespace consensus40::randomized {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct BenOrCluster {
  BenOrCluster(const std::vector<int>& initial, uint64_t seed = 1)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {
    BenOrOptions opts;
    opts.n = static_cast<int>(initial.size());
    for (int v : initial) nodes.push_back(sim.Spawn<BenOrNode>(opts, v));
  }

  bool AllDecided() const {
    for (const BenOrNode* node : nodes) {
      if (!sim.IsCrashed(node->id()) && !node->decided()) return false;
    }
    return true;
  }

  int DecidedValue() const {
    int value = -1;
    for (const BenOrNode* node : nodes) {
      if (!node->decided()) continue;
      if (value == -1) {
        value = *node->decided();
      } else {
        EXPECT_EQ(value, *node->decided()) << "agreement violated";
      }
    }
    EXPECT_NE(value, -1);
    return value;
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<BenOrNode*> nodes;
};

TEST(BenOrTest, UnanimousInputDecidesThatValueInOneRound) {
  BenOrCluster cluster({1, 1, 1, 1, 1});
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return cluster.AllDecided(); }, 30 * kSecond));
  EXPECT_EQ(cluster.DecidedValue(), 1);
  for (const BenOrNode* node : cluster.nodes) {
    EXPECT_EQ(node->round(), 1) << "unanimity should decide in round 1";
  }
}

TEST(BenOrTest, ValidityZero) {
  BenOrCluster cluster({0, 0, 0, 0, 0});
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return cluster.AllDecided(); }, 30 * kSecond));
  EXPECT_EQ(cluster.DecidedValue(), 0);
}

TEST(BenOrTest, SplitInputsEventuallyDecide) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    BenOrCluster cluster({0, 1, 0, 1, 0}, seed);
    cluster.sim.Start();
    ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                     60 * kSecond))
        << "seed " << seed;
    cluster.DecidedValue();
  }
}

TEST(BenOrTest, ToleratesMinorityCrashes) {
  BenOrCluster cluster({0, 1, 1, 0, 1});
  cluster.sim.Crash(0);
  cluster.sim.Crash(3);  // f = 2 = (n-1)/2 tolerated.
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return cluster.AllDecided(); }, 60 * kSecond));
  cluster.DecidedValue();
}

TEST(BenOrTest, CrashDuringExecutionStillTerminates) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    BenOrCluster cluster({0, 1, 0, 1, 1}, seed);
    cluster.sim.Start();
    cluster.sim.ScheduleAfter(3 * kMillisecond,
                              [&] { cluster.sim.Crash(2); });
    ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                     60 * kSecond))
        << "seed " << seed;
    cluster.DecidedValue();
  }
}

// The FLP circumvention: an adversarial delay schedule that livelocks
// deterministic proposers (see PaxosLivenessTest.DuelingProposersLivelock)
// cannot stop Ben-Or — randomization breaks every adversarial schedule
// with probability 1.
TEST(BenOrTest, AdversarialDelaysCannotPreventTermination) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    BenOrCluster cluster({0, 1, 0, 1, 0}, seed);
    // Adversary: deliver proposals slowly and reports fast, trying to keep
    // the cluster split.
    cluster.sim.SetDelayFn([&](const sim::Envelope& e) -> sim::Duration {
      if (e.from == e.to) return 0;
      std::string type = e.msg->TypeName();
      if (type == "benor-propose") {
        return (3 + (e.from + e.to) % 3) * kMillisecond;
      }
      return 1 * kMillisecond;
    });
    cluster.sim.Start();
    ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                     120 * kSecond))
        << "seed " << seed;
    cluster.DecidedValue();
  }
}

TEST(BenOrTest, AgreementHoldsAcrossManySeedsAndSizes) {
  for (int n : {3, 5, 7, 9}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      std::vector<int> initial(n);
      Rng rng(seed * 100 + n);
      for (int i = 0; i < n; ++i) initial[i] = rng.NextBounded(2);
      BenOrCluster cluster(initial, seed);
      cluster.sim.Start();
      ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                       120 * kSecond))
          << "n=" << n << " seed=" << seed;
      int decided = cluster.DecidedValue();
      // Validity: the decided value was someone's input.
      bool present = false;
      for (int v : initial) present |= (v == decided);
      EXPECT_TRUE(present);
    }
  }
}

}  // namespace
}  // namespace consensus40::randomized
