// Tests for src/shard/: the sharded state machine, 2PC-over-consensus
// commit, and the workload driver. The coordinator-failover test is the
// one the subsystem exists for: classic 2PC blocks when the coordinator
// dies between prepare and commit; here the participants terminate the
// protocol through the replicated decision group on their own.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "shard/reshard.h"
#include "shard/shard.h"
#include "shard/workload.h"
#include "sim/simulation.h"
#include "smr/state_machine.h"

namespace consensus40::shard {
namespace {

using sim::kMillisecond;
using sim::kSecond;

/// Minimal transaction client: Begin() transactions, collect outcomes,
/// re-submit on timeout (like a real client would across coordinator
/// crashes).
class TestClient : public sim::Process {
 public:
  explicit TestClient(sim::NodeId coordinator, sim::Duration retry = 2 * kSecond)
      : coordinator_(coordinator), retry_(retry) {}

  void Begin(uint64_t tx_id, std::vector<TxOp> ops) {
    pending_[tx_id] = ops;
    Submit(tx_id);
  }

  void OnMessage(sim::NodeId, const sim::Message& msg) override {
    const auto* m = dynamic_cast<const TxOutcomeMsg*>(&msg);
    if (m == nullptr || pending_.count(m->tx_id) == 0) return;
    CancelTimer(timers_[m->tx_id]);
    outcomes[m->tx_id] = m->committed;
    reasons[m->tx_id] = m->reason;
    reads[m->tx_id] = m->reads;
    snapshot_epochs[m->tx_id] = m->snapshot_epoch;
    pending_.erase(m->tx_id);
  }

  std::map<uint64_t, bool> outcomes;
  std::map<uint64_t, TxAbortReason> reasons;
  std::map<uint64_t, std::vector<TxReadResult>> reads;
  std::map<uint64_t, uint64_t> snapshot_epochs;

 private:
  void Submit(uint64_t tx_id) {
    Send(coordinator_, std::make_shared<BeginTxMsg>(tx_id, pending_[tx_id]));
    timers_[tx_id] = SetTimer(retry_, [this, tx_id] {
      if (pending_.count(tx_id)) Submit(tx_id);
    });
  }

  sim::NodeId coordinator_;
  sim::Duration retry_;
  std::map<uint64_t, std::vector<TxOp>> pending_;
  std::map<uint64_t, uint64_t> timers_;
};

/// Replays a group's committed prefix (from replica 0) into a KvStore
/// and returns the resulting state — the group's authoritative KV view.
smr::KvStore ReplayGroup(const consensus::ReplicaGroup* group) {
  smr::KvStore kv;
  smr::DedupingExecutor dedup;
  for (const smr::Command& cmd : group->CommittedPrefix(0)) {
    dedup.Apply(&kv, cmd);
  }
  return kv;
}

struct ShardFixture {
  explicit ShardFixture(uint64_t seed, ShardOptions options = ShardOptions()) {
    ssm = std::make_unique<ShardedStateMachine>(options);
    sim = sim::Simulation::Builder(seed)
              .Setup([this](sim::Simulation& s) { ssm->Build(&s); })
              .AutoStart(false)
              .Build();
    client = sim->Spawn<TestClient>(ssm->coordinator_id());
    sim->Start();
    // Let every group elect a leader before transactions start.
    sim->RunFor(500 * kMillisecond);
  }

  std::unique_ptr<ShardedStateMachine> ssm;
  std::unique_ptr<sim::Simulation> sim;
  TestClient* client = nullptr;
};

TEST(ShardTest, SingleShardTransactionCommitsOnePhase) {
  ShardFixture f(7);
  std::string key = f.ssm->KeyForShard(0, 0);
  f.client->Begin(1, {TxOp{key, "v1"}});
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(1) > 0; },
                              f.sim->now() + 5 * kSecond));
  EXPECT_TRUE(f.client->outcomes.at(1));
  f.sim->RunFor(500 * kMillisecond);  // Let replication settle.

  smr::KvStore shard0 = ReplayGroup(f.ssm->shard_group(0));
  EXPECT_EQ(shard0.Get(key).value_or("NIL"), "v1");
  // One-phase: no durable prepare record, no decision record.
  EXPECT_FALSE(shard0.Get(PrepareKey(1)).has_value());
  smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
  EXPECT_FALSE(decisions.Get(DecisionKey(1)).has_value());
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ShardTest, CrossShardTransactionCommitsAtomically) {
  ShardFixture f(11);
  std::string k0 = f.ssm->KeyForShard(0, 0);
  std::string k1 = f.ssm->KeyForShard(1, 0);
  f.client->Begin(1, {TxOp{k0, "v1"}, TxOp{k1, "v1"}});
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(1) > 0; },
                              f.sim->now() + 5 * kSecond));
  EXPECT_TRUE(f.client->outcomes.at(1));
  f.sim->RunFor(1 * kSecond);

  // Both shards applied their slice; the decision group holds COMMIT;
  // each shard carries the durable prepare record.
  smr::KvStore shard0 = ReplayGroup(f.ssm->shard_group(0));
  smr::KvStore shard1 = ReplayGroup(f.ssm->shard_group(1));
  smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
  EXPECT_EQ(shard0.Get(k0).value_or("NIL"), "v1");
  EXPECT_EQ(shard1.Get(k1).value_or("NIL"), "v1");
  EXPECT_EQ(decisions.Get(DecisionKey(1)).value_or("NIL"), "C");
  EXPECT_EQ(shard0.Get(PrepareKey(1)).value_or("NIL"), "P");
  EXPECT_EQ(shard1.Get(PrepareKey(1)).value_or("NIL"), "P");
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ShardTest, ConflictingTransactionAborts) {
  ShardFixture f(13);
  std::string shared = f.ssm->KeyForShard(0, 0);
  std::string k1a = f.ssm->KeyForShard(1, 0);
  std::string k1b = f.ssm->KeyForShard(1, 1);
  // Tx 1 prepares first and holds the lock on `shared` while its
  // decision round runs; tx 2 arrives mid-flight and must vote NO.
  f.client->Begin(1, {TxOp{shared, "v1"}, TxOp{k1a, "v1"}});
  f.sim->ScheduleAfter(10 * kMillisecond, [&] {
    f.client->Begin(2, {TxOp{shared, "v2"}, TxOp{k1b, "v2"}});
  });
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.size() == 2; },
                              f.sim->now() + 10 * kSecond));
  EXPECT_TRUE(f.client->outcomes.at(1));
  EXPECT_FALSE(f.client->outcomes.at(2));
  f.sim->RunFor(1 * kSecond);

  // Atomicity of the abort: NONE of tx 2's writes exist anywhere, and
  // the decision group records the abort.
  smr::KvStore shard0 = ReplayGroup(f.ssm->shard_group(0));
  smr::KvStore shard1 = ReplayGroup(f.ssm->shard_group(1));
  smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
  EXPECT_EQ(shard0.Get(shared).value_or("NIL"), "v1");
  EXPECT_EQ(shard1.Get(k1b).value_or("NIL"), "NIL");
  EXPECT_EQ(decisions.Get(DecisionKey(2)).value_or("NIL"), "A");
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ShardTest, CoordinatorCrashMidTransactionStaysAtomic) {
  ShardFixture f(17);
  std::string k0 = f.ssm->KeyForShard(0, 0);
  std::string k1 = f.ssm->KeyForShard(1, 0);
  // Crash the coordinator right after it fans out prepares — the window
  // where classic 2PC blocks forever — and restart it much later.
  sim::Time begin_at = f.sim->now();
  f.client->Begin(1, {TxOp{k0, "v1"}, TxOp{k1, "v1"}});
  sim::NodeId coordinator = f.ssm->coordinator_id();
  f.sim->ScheduleAt(begin_at + 15 * kMillisecond,
                    [&] { f.sim->Crash(coordinator); });
  f.sim->ScheduleAt(begin_at + 3 * kSecond,
                    [&] { f.sim->Restart(coordinator); });

  // The client still gets an outcome (via its retry), WITHOUT waiting
  // for the coordinator: prepared TMs terminate through the decision
  // group on their own.
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(1) > 0; },
                              f.sim->now() + 30 * kSecond));
  f.sim->RunFor(2 * kSecond);

  bool committed = f.client->outcomes.at(1);
  smr::KvStore shard0 = ReplayGroup(f.ssm->shard_group(0));
  smr::KvStore shard1 = ReplayGroup(f.ssm->shard_group(1));
  smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
  std::string decision = decisions.Get(DecisionKey(1)).value_or("NIL");
  // Whatever was decided, it is (a) recorded durably, (b) consistent
  // with the client-visible outcome, and (c) applied on ALL shards or
  // NONE — the atomicity contract under coordinator failure.
  ASSERT_NE(decision, "NIL");
  EXPECT_EQ(decision == "C", committed);
  EXPECT_EQ(shard0.Get(k0).value_or("NIL"), committed ? "v1" : "NIL");
  EXPECT_EQ(shard1.Get(k1).value_or("NIL"), committed ? "v1" : "NIL");
  // Participant-driven termination actually ran.
  int recoveries = 0;
  for (int s = 0; s < 2; ++s) recoveries += f.ssm->tx_manager(s)->recoveries();
  EXPECT_GT(recoveries, 0);
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ShardTest, WorkloadDriverRunsMixedLoad) {
  ShardOptions so;
  so.shards = 4;
  ShardFixture f(23, so);
  WorkloadOptions wo;
  wo.ops = 120;
  wo.concurrency = 6;
  wo.read_fraction = 0.4;
  wo.cross_shard_fraction = 0.5;
  wo.key_space = 200;   // Miss-heavy: reads range far beyond...
  wo.write_space = 40;  // ...the keys writes can touch.
  WorkloadDriver* driver = SpawnWorkload(f.sim.get(), f.ssm.get(), wo);
  f.sim->Start();  // Start the newly spawned workload processes.

  ASSERT_TRUE(
      f.sim->RunUntil([&] { return driver->done(); }, f.sim->now() + 120 * kSecond));
  const WorkloadStats& stats = driver->stats();
  EXPECT_EQ(stats.completed(), wo.ops);
  EXPECT_GT(stats.reads.completed, 0);
  EXPECT_GT(stats.cross.completed, 0);
  EXPECT_GT(stats.reads.misses, 0);  // The miss-heavy mix actually missed.
  EXPECT_GT(stats.cross.committed + stats.single.committed, 0);
  EXPECT_TRUE(f.ssm->Violations().empty());

  // Every committed cross-shard transaction is all-or-nothing across its
  // shards; spot-check with the driver's outcome log against replayed
  // shard state: a committed tx's value appears under the keys it wrote
  // unless a later committed tx overwrote them — so just assert no
  // group-level violations and consistent decision records.
  smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
  for (const auto& [tx_id, committed] : driver->outcomes()) {
    std::string d = decisions.Get(DecisionKey(tx_id)).value_or("NIL");
    if (d != "NIL") {
      EXPECT_EQ(d == "C", committed) << "tx " << tx_id;
    }
  }
}

TEST(ShardTest, ReadYourWritesInsideOneTransaction) {
  ShardFixture f(29);
  std::string key = f.ssm->KeyForShard(0, 0);
  // GET before the write sees the initial (absent) version; GET after
  // sees the transaction's own uncommitted write (the prepare-time
  // overlay), not the stored state.
  f.client->Begin(1, {TxOp::Get(key), TxOp::Put(key, "v1"), TxOp::Get(key)});
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(1) > 0; },
                              f.sim->now() + 5 * kSecond));
  ASSERT_TRUE(f.client->outcomes.at(1));
  const std::vector<TxReadResult>& reads = f.client->reads.at(1);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].op_index, 0);
  EXPECT_FALSE(reads[0].found);
  EXPECT_EQ(reads[1].op_index, 2);
  EXPECT_TRUE(reads[1].found);
  EXPECT_EQ(reads[1].value, "v1");
  f.sim->RunFor(500 * kMillisecond);
  smr::KvStore shard0 = ReplayGroup(f.ssm->shard_group(0));
  EXPECT_EQ(shard0.Get(key).value_or("NIL"), "v1");
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ShardTest, CasValidatesAtPrepareAndMismatchAborts) {
  ShardFixture f(31);
  std::string key = f.ssm->KeyForShard(0, 0);
  f.client->Begin(1, {TxOp::Put(key, "v1")});
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(1) > 0; },
                              f.sim->now() + 5 * kSecond));
  ASSERT_TRUE(f.client->outcomes.at(1));

  // Mismatched expectation: structured abort, nothing applied.
  f.client->Begin(2, {TxOp::Cas(key, "wrong", "v2")});
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(2) > 0; },
                              f.sim->now() + 5 * kSecond));
  EXPECT_FALSE(f.client->outcomes.at(2));
  EXPECT_EQ(f.client->reasons.at(2), TxAbortReason::kCasMismatch);

  // Matching expectation: commits, and — because a re-run of a one-phase
  // CAS could flip its verdict — always through a decision record, even
  // single-shard.
  f.client->Begin(3, {TxOp::Cas(key, "v1", "v3")});
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(3) > 0; },
                              f.sim->now() + 5 * kSecond));
  EXPECT_TRUE(f.client->outcomes.at(3));
  f.sim->RunFor(1 * kSecond);
  smr::KvStore shard0 = ReplayGroup(f.ssm->shard_group(0));
  EXPECT_EQ(shard0.Get(key).value_or("NIL"), "v3");
  smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
  EXPECT_EQ(decisions.Get(DecisionKey(3)).value_or("NIL"), "C");
  EXPECT_EQ(decisions.Get(DecisionKey(2)).value_or("NIL"), "A");
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ShardTest, SnapshotReadTakesNoLocksAndWritesNoRecords) {
  ShardFixture f(37);
  std::string k0 = f.ssm->KeyForShard(0, 0);
  std::string k1 = f.ssm->KeyForShard(1, 0);
  // An all-GET transaction takes the snapshot path: reads of the two
  // (absent) keys come back consistent, and the TMs never hear of it —
  // no lock-table entry, no prepare, no decision record.
  f.client->Begin(1, {TxOp::Get(k0), TxOp::Get(k1)});
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(1) > 0; },
                              f.sim->now() + 5 * kSecond));
  ASSERT_TRUE(f.client->outcomes.at(1));
  const std::vector<TxReadResult>& reads = f.client->reads.at(1);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_FALSE(reads[0].found);
  EXPECT_FALSE(reads[1].found);
  EXPECT_EQ(f.client->snapshot_epochs.at(1), 1u);
  EXPECT_EQ(f.ssm->coordinator()->snapshots(), 1);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(f.ssm->tx_manager(s)->lock_table_size(), 0u);
    EXPECT_EQ(f.ssm->tx_manager(s)->prepares(), 0);
  }
  f.sim->RunFor(500 * kMillisecond);
  smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
  EXPECT_FALSE(decisions.Get(DecisionKey(1)).has_value());
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ShardTest, SnapshotRacingLiveMoveIsNeverTorn) {
  ShardOptions so;
  so.spare_groups = 1;
  ShardFixture f(41, so);
  std::string a0 = f.ssm->KeyForShard(0, 0);  // In the range that moves.
  std::string b0 = f.ssm->KeyForShard(1, 0);
  f.client->Begin(1, {TxOp{a0, "v1"}, TxOp{b0, "v1"}});
  ASSERT_TRUE(f.sim->RunUntil([&] { return f.client->outcomes.count(1) > 0; },
                              f.sim->now() + 5 * kSecond));
  ASSERT_TRUE(f.client->outcomes.at(1));
  f.sim->RunFor(1 * kSecond);  // Both writes applied.

  // Move shard 0's whole initial range to the spare group while
  // snapshots run back-to-back. Every snapshot must see BOTH keys with
  // the committed value — a missing read would mean the snapshot mixed
  // routing epochs (read a0 at an owner the move had already drained).
  MoveSpec spec;
  spec.lo = 0;
  spec.hi = f.ssm->InitialTable().entries()[1].lo;
  spec.to = 2;
  ASSERT_TRUE(f.ssm->mover()->StartMove(spec));
  uint64_t snap_id = 100;
  int snaps = 0;
  while (f.ssm->mover()->moves_done() < 1 && snaps < 200) {
    ++snap_id;
    ++snaps;
    f.client->Begin(snap_id, {TxOp::Get(a0), TxOp::Get(b0)});
    ASSERT_TRUE(f.sim->RunUntil(
        [&] { return f.client->outcomes.count(snap_id) > 0; },
        f.sim->now() + 10 * kSecond));
    ASSERT_TRUE(f.client->outcomes.at(snap_id));
    const std::vector<TxReadResult>& reads = f.client->reads.at(snap_id);
    ASSERT_EQ(reads.size(), 2u);
    for (const TxReadResult& r : reads) {
      EXPECT_TRUE(r.found) << "snapshot " << snap_id << " lost a read";
      EXPECT_EQ(r.value, "v1");
    }
    f.sim->RunFor(20 * kMillisecond);
  }
  EXPECT_GE(f.ssm->mover()->moves_done(), 1);
  EXPECT_GT(snaps, 1);  // The race actually happened.
  // The TMs processed tx 1's prepare but no snapshot ever locked.
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(f.ssm->tx_manager(s)->lock_table_size(), 0u);
  }
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ShardTest, ShardOfIsStableAndBalanced) {
  ShardOptions so;
  so.shards = 4;
  ShardedStateMachine ssm(so);
  // Pinned hash values: ShardOf must be identical across platforms, or
  // every seeded workload and checker schedule changes meaning. The hash
  // is FNV-1a + fmix64 (KeyHash): range routing reads the top bits, which
  // raw FNV-1a leaves skewed for short sequential keys.
  EXPECT_EQ(ShardedStateMachine::HashKey("k0"), 0x0549eda7a9a2b5c9ull);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 400; ++i) {
    ++counts[static_cast<size_t>(ssm.ShardOf("k" + std::to_string(i)))];
  }
  for (int c : counts) EXPECT_GT(c, 40);  // No shard starves.
}

}  // namespace
}  // namespace consensus40::shard
