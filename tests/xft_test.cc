#include <gtest/gtest.h>

#include <vector>
#include <memory>

#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "xft/xft.h"

namespace consensus40::xft {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct XftCluster {
  explicit XftCluster(int n, uint64_t seed = 1)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner), registry(seed, n + 8) {
    XftOptions opts;
    opts.n = n;
    opts.registry = &registry;
    for (int i = 0; i < n; ++i) {
      replicas.push_back(sim.Spawn<XftReplica>(opts));
    }
  }

  XftClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(sim.Spawn<XftClient>(
        static_cast<int>(replicas.size()), &registry, ops, key));
    return clients.back();
  }

  void CheckSafety() const {
    for (size_t a = 0; a < replicas.size(); ++a) {
      for (size_t b = a + 1; b < replicas.size(); ++b) {
        const auto& ca = replicas[a]->executed_commands();
        const auto& cb = replicas[b]->executed_commands();
        size_t overlap = std::min(ca.size(), cb.size());
        for (size_t i = 0; i < overlap; ++i) {
          ASSERT_TRUE(ca[i] == cb[i])
              << "replicas " << a << "," << b << " diverge at " << i;
        }
      }
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  crypto::KeyRegistry registry;
  std::vector<XftReplica*> replicas;
  std::vector<XftClient*> clients;
};

TEST(AnarchyPredicateTest, MatchesDeckDefinition) {
  // n = 5 (f = 2): safe while c+m+p <= 2 or m == 0.
  EXPECT_FALSE(InAnarchy(5, 0, 0, 0));
  EXPECT_FALSE(InAnarchy(5, 2, 0, 0));
  EXPECT_FALSE(InAnarchy(5, 5, 0, 0));  // Pure crashes never cause anarchy.
  EXPECT_FALSE(InAnarchy(5, 1, 1, 0));  // c+m = 2 <= floor(4/2).
  EXPECT_TRUE(InAnarchy(5, 2, 1, 0));   // 3 > 2 and m > 0.
  EXPECT_TRUE(InAnarchy(5, 0, 3, 0));
  EXPECT_TRUE(InAnarchy(5, 1, 1, 1));   // Partitioned nodes count.
  EXPECT_FALSE(InAnarchy(5, 0, 0, 5));  // No Byzantine => no anarchy.
}

TEST(XftTest, CommonCaseCommitsWithinSyncGroup) {
  XftCluster cluster(5);  // f = 2; sg = {0,1,2}.
  XftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  cluster.CheckSafety();
  // Prepares only went to the synchronous group (f+1 targets per request).
  uint64_t prepares = cluster.sim.stats().sent_by_type.at("xft-prepare");
  EXPECT_LE(prepares, 10u * 3u + 6u);
}

TEST(XftTest, PassiveReplicasLearnLazily) {
  XftCluster cluster(5);
  XftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  for (const XftReplica* r : cluster.replicas) {
    EXPECT_EQ(r->executed(), 10u) << r->id();
    EXPECT_EQ(*r->kv().Get("x"), "10") << r->id();
  }
}

TEST(XftTest, PaxosGradeMessageCost) {
  // XFT's selling point: crash-tolerant cost for Byzantine-grade faults.
  // Messages per request stay linear in the group size, not n^2.
  XftCluster cluster(5);
  XftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  uint64_t proto = cluster.sim.stats().sent_by_type.at("xft-prepare") +
                   cluster.sim.stats().sent_by_type.at("xft-commit");
  // Per request: 3 prepares + 2 followers x 3 commits = 9; allow slack.
  EXPECT_LE(proto / 10.0, 12.0);
}

TEST(XftTest, SyncGroupMemberCrashTriggersViewChange) {
  XftCluster cluster(5);
  XftClient* client = cluster.AddClient(12);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   30 * kSecond));
  // Crash a follower inside sg(0) = {0,1,2}.
  cluster.sim.Crash(1);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.CheckSafety();
  // The view moved to a group that excludes the crashed node... or at
  // least past view 0.
  int moved = 0;
  for (const XftReplica* r : cluster.replicas) {
    if (r->id() != 1 && r->view() > 0) ++moved;
  }
  EXPECT_GE(moved, 3);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(XftTest, LeaderCrashTriggersViewChange) {
  XftCluster cluster(5);
  XftClient* client = cluster.AddClient(12);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   30 * kSecond));
  cluster.sim.Crash(0);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.CheckSafety();
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(XftTest, SmallestClusterWorks) {
  XftCluster cluster(3);  // f = 1; sg = {0,1}.
  XftClient* client = cluster.AddClient(8);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  cluster.CheckSafety();
}

}  // namespace
}  // namespace consensus40::xft
