// Work-stealing thread pool (common/thread_pool.h):
//
//   - every index of a ParallelFor executes exactly once, on any worker,
//     in any order (callers own the ordering via per-index slots);
//   - steals actually happen when one lane's chunks are slow;
//   - exceptions thrown by tasks propagate to the caller and the pool
//     stays usable afterwards;
//   - a stress loop over reused pools is data-race-free (the tsan preset
//     runs this binary under -fsanitize=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace consensus40 {
namespace {

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int worker, uint64_t i) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.workers());
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, OrderingFreedomResultsViaSlots) {
  // The documented pattern: execution order is unspecified, so results go
  // into per-index slots and are read back in index order. The merged
  // output must be identical to the serial loop's.
  ThreadPool parallel(4);
  ThreadPool serial(1);
  constexpr uint64_t kN = 4096;
  std::vector<uint64_t> a(kN), b(kN);
  auto fill = [](std::vector<uint64_t>& out) {
    return [&out](int, uint64_t i) { out[i] = i * i + 7; };
  };
  parallel.ParallelFor(kN, fill(a));
  serial.ParallelFor(kN, fill(b));
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(64, [&](int worker, uint64_t) {
    EXPECT_EQ(worker, 0);
    all_inline &= std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(all_inline);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ThreadPool, StealsUnderSkewedLoad) {
  // With 32 indices on 4 workers every chunk is a single index and worker
  // 0 owns indices 0, 4, 8, ... Making exactly those indices slow forces
  // the other lanes to drain their own deques and then steal from worker
  // 0's front. (On a single-core host the sleeps still yield the CPU, so
  // the fast lanes get scheduled and the steal path is exercised.)
  ThreadPool pool(4);
  constexpr uint64_t kN = 32;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int, uint64_t i) {
    if (i % 4 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_GT(pool.steals(), 0u);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<uint64_t> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&](int, uint64_t i) {
                         executed.fetch_add(1, std::memory_order_relaxed);
                         if (i == 13) throw std::runtime_error("task 13");
                       }),
      std::runtime_error);
  // At most everything ran (the abort is advisory), never more.
  EXPECT_LE(executed.load(), 1000u);

  // The pool is reusable after an exception.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](int, uint64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, SerialPathPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(10,
                                [](int, uint64_t i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, StressReuseManyRoundsIsRaceFree) {
  // Back-to-back jobs of varying size on one pool: exercises the
  // job-epoch handoff (late-waking workers, empty deques, notify races).
  // Run under the tsan preset, this is the pool's data-race gate.
  ThreadPool pool(4);
  uint64_t expected = 0;
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    const uint64_t n = 1 + (round * 37) % 256;
    expected += n;
    pool.ParallelFor(n, [&](int, uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, HardwareReportsAtLeastOne) {
  EXPECT_GE(ThreadPool::Hardware(), 1);
}

}  // namespace
}  // namespace consensus40
