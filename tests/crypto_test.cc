#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signatures.h"

namespace consensus40::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.Update(data.substr(0, split));
    h.Update(data.substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << "split=" << split;
  }
}

TEST(Sha256Test, DoubleHashIsHashOfHash) {
  std::string data = "block header";
  Digest once = Sha256::Hash(data);
  Digest twice = Sha256::Hash(once.data(), once.size());
  EXPECT_EQ(Sha256::DoubleHash(data.data(), data.size()), twice);
}

TEST(Sha256Test, LeadingZeroBits) {
  Digest d{};
  EXPECT_EQ(LeadingZeroBits(d), 256);
  d[0] = 0x80;
  EXPECT_EQ(LeadingZeroBits(d), 0);
  d[0] = 0x01;
  EXPECT_EQ(LeadingZeroBits(d), 7);
  d[0] = 0x00;
  d[1] = 0x10;
  EXPECT_EQ(LeadingZeroBits(d), 11);
}

TEST(Sha256Test, DigestLessIsLexicographic) {
  Digest a{}, b{};
  b[31] = 1;
  EXPECT_TRUE(DigestLess(a, b));
  EXPECT_FALSE(DigestLess(b, a));
  EXPECT_FALSE(DigestLess(a, a));
}

TEST(MerkleTest, EmptyTreeIsZero) {
  EXPECT_EQ(MerkleRoot({}), Digest{});
}

TEST(MerkleTest, SingleLeafIsItself) {
  Digest leaf = Sha256::Hash("tx");
  EXPECT_EQ(MerkleRoot({leaf}), leaf);
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  std::vector<Digest> leaves;
  for (int i = 0; i < 5; ++i) {
    leaves.push_back(Sha256::Hash("tx" + std::to_string(i)));
  }
  Digest root = MerkleRoot(leaves);
  for (int i = 0; i < 5; ++i) {
    auto tampered = leaves;
    tampered[i] = Sha256::Hash("evil");
    EXPECT_NE(MerkleRoot(tampered), root) << "leaf " << i;
  }
}

TEST(MerkleTest, ProofVerifiesForEveryLeafAndSize) {
  for (int n = 1; n <= 12; ++n) {
    std::vector<Digest> leaves;
    for (int i = 0; i < n; ++i) {
      leaves.push_back(Sha256::Hash("tx" + std::to_string(i)));
    }
    Digest root = MerkleRoot(leaves);
    for (int i = 0; i < n; ++i) {
      MerkleProof proof = BuildMerkleProof(leaves, i);
      EXPECT_TRUE(VerifyMerkleProof(leaves[i], proof, root))
          << "n=" << n << " i=" << i;
      // A different leaf must not verify with this proof.
      EXPECT_FALSE(VerifyMerkleProof(Sha256::Hash("evil"), proof, root));
    }
  }
}

TEST(SignatureTest, SignVerifyRoundTrip) {
  KeyRegistry registry(42, 4);
  Digest d = Sha256::Hash("value");
  Signature sig = registry.Sign(2, d);
  EXPECT_EQ(sig.signer, 2);
  EXPECT_TRUE(registry.Verify(sig, d));
}

TEST(SignatureTest, WrongDigestFails) {
  KeyRegistry registry(42, 4);
  Signature sig = registry.Sign(1, Sha256::Hash("value"));
  EXPECT_FALSE(registry.Verify(sig, Sha256::Hash("other")));
}

TEST(SignatureTest, ForgeryImpossible) {
  KeyRegistry registry(42, 4);
  Digest d = Sha256::Hash("value");
  // A Byzantine node relabeling its own signature as node 0's must fail.
  Signature sig = registry.Sign(3, d);
  sig.signer = 0;
  EXPECT_FALSE(registry.Verify(sig, d));
}

TEST(SignatureTest, OutOfRangeSignerRejected) {
  KeyRegistry registry(42, 4);
  Signature sig;
  sig.signer = 17;
  EXPECT_FALSE(registry.Verify(sig, Sha256::Hash("x")));
}

TEST(SignatureTest, MacBoundToBothEndpoints) {
  KeyRegistry registry(7, 4);
  Digest d = Sha256::Hash("req");
  Digest mac = registry.Mac(0, 1, d);
  EXPECT_TRUE(registry.VerifyMac(0, 1, d, mac));
  EXPECT_FALSE(registry.VerifyMac(0, 2, d, mac));
  EXPECT_FALSE(registry.VerifyMac(1, 0, d, mac));
}

TEST(AggregateCertTest, ThresholdEnforced) {
  KeyRegistry registry(9, 7);
  Digest value = Sha256::Hash("block");
  AggregateCertificate cert;
  cert.value = value;
  for (int i = 0; i < 5; ++i) cert.shares.push_back(registry.Sign(i, value));
  EXPECT_TRUE(cert.Verify(registry, 5));
  EXPECT_FALSE(cert.Verify(registry, 6));
}

TEST(AggregateCertTest, DuplicateSignersDontCount) {
  KeyRegistry registry(9, 7);
  Digest value = Sha256::Hash("block");
  AggregateCertificate cert;
  cert.value = value;
  Signature s = registry.Sign(0, value);
  for (int i = 0; i < 5; ++i) cert.shares.push_back(s);
  EXPECT_FALSE(cert.Verify(registry, 2));
}

TEST(AggregateCertTest, BadShareInvalidatesCert) {
  KeyRegistry registry(9, 7);
  Digest value = Sha256::Hash("block");
  AggregateCertificate cert;
  cert.value = value;
  for (int i = 0; i < 5; ++i) cert.shares.push_back(registry.Sign(i, value));
  cert.shares[2].tag[0] ^= 1;
  EXPECT_FALSE(cert.Verify(registry, 3));
}

TEST(UsigTest, CountersAreSequentialPerSigner) {
  KeyRegistry registry(5, 3);
  Usig usig(&registry);
  Digest d = Sha256::Hash("m");
  Usig::UI u1 = usig.CreateUi(0, d);
  Usig::UI u2 = usig.CreateUi(0, d);
  Usig::UI other = usig.CreateUi(1, d);
  EXPECT_EQ(u1.counter, 1u);
  EXPECT_EQ(u2.counter, 2u);
  EXPECT_EQ(other.counter, 1u);
  EXPECT_EQ(usig.LastCounter(0), 2u);
}

TEST(UsigTest, VerifyBindsCounterAndDigest) {
  KeyRegistry registry(5, 3);
  Usig usig(&registry);
  Digest d = Sha256::Hash("m");
  Usig::UI ui = usig.CreateUi(0, d);
  EXPECT_TRUE(usig.VerifyUi(ui, d));
  EXPECT_FALSE(usig.VerifyUi(ui, Sha256::Hash("other")));

  // Equivocation attempt: replaying the counter with another digest fails
  // because the tag binds counter and digest.
  Usig::UI forged = ui;
  forged.counter = 99;
  EXPECT_FALSE(usig.VerifyUi(forged, d));
}

TEST(UsigTest, CannotObtainDuplicateCounters) {
  // The USIG object itself is the trusted hardware: two CreateUi calls can
  // never return the same counter, so a Byzantine replica cannot send two
  // different messages with one counter value.
  KeyRegistry registry(5, 3);
  Usig usig(&registry);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    Usig::UI ui = usig.CreateUi(2, Sha256::Hash("m" + std::to_string(i)));
    EXPECT_TRUE(seen.insert(ui.counter).second);
  }
}

}  // namespace
}  // namespace consensus40::crypto
