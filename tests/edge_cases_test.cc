// Assorted edge-case coverage across the substrate and the commit layer:
// behaviours that only show at boundaries (empty inputs, simultaneous
// events, interleaved transactions, degenerate cluster sizes).

#include <gtest/gtest.h>

#include "commit/two_phase_commit.h"
#include "common/table.h"
#include "core/quorum.h"
#include "paxos/paxos.h"
#include "sim/simulation.h"

namespace consensus40 {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// ---------------------------------------------------------------------------
// TextTable boundaries
// ---------------------------------------------------------------------------

TEST(TableEdgeTest, EmptyTableRendersHeaderOnly) {
  TextTable t({"a", "bb"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| a | bb |"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);  // Header + rule.
}

TEST(TableEdgeTest, NumPrecisionAndNegative) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(-1.5, 0), "-2");  // printf rounding.
  EXPECT_EQ(TextTable::Int(-42), "-42");
}

// ---------------------------------------------------------------------------
// Quorum degenerate sizes
// ---------------------------------------------------------------------------

TEST(QuorumEdgeTest, SingleNodeMajority) {
  core::MajorityQuorum q(1);
  EXPECT_EQ(q.ElectionQuorumSize(), 1);
  EXPECT_EQ(q.MaxFaults(), 0);
  EXPECT_TRUE(q.IsElectionQuorum({0}));
  EXPECT_FALSE(q.IsElectionQuorum({}));
}

TEST(QuorumEdgeTest, GridOneByN) {
  // A 1xN grid: the single row is the replication quorum; every column is
  // a single node — election quorums of size 1.
  core::GridQuorum g(1, 4);
  EXPECT_TRUE(g.IsElectionQuorum({2}));
  EXPECT_TRUE(g.IsReplicationQuorum({0, 1, 2, 3}));
  EXPECT_FALSE(g.IsReplicationQuorum({0, 1, 2}));
  EXPECT_TRUE(core::CheckQuorumIntersection(g, 1));
}

// ---------------------------------------------------------------------------
// Single-node Paxos (n = 1): trivially decides its own proposal
// ---------------------------------------------------------------------------

TEST(PaxosEdgeTest, SingleNodeClusterDecidesInstantly) {
  auto sim_owner = sim::Simulation::Builder(1).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  paxos::PaxosOptions opts;
  opts.n = 1;
  auto* node = sim.Spawn<paxos::PaxosNode>(opts);
  sim.Start();
  node->Propose("solo");
  ASSERT_TRUE(sim.RunUntil([&] { return node->decided().has_value(); },
                           1 * kSecond));
  EXPECT_EQ(*node->decided(), "solo");
}

TEST(PaxosEdgeTest, ProposeAfterDecisionIsIgnored) {
  auto sim_owner = sim::Simulation::Builder(1).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  paxos::PaxosOptions opts;
  opts.n = 3;
  std::vector<paxos::PaxosNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(sim.Spawn<paxos::PaxosNode>(opts));
  sim.Start();
  nodes[0]->Propose("first");
  ASSERT_TRUE(sim.RunUntil(
      [&] { return nodes[0]->decided().has_value(); }, 5 * kSecond));
  int attempts_before = nodes[0]->prepare_attempts();
  nodes[0]->Propose("second");  // Already decided: no new ballot.
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(nodes[0]->prepare_attempts(), attempts_before);
  EXPECT_EQ(*nodes[0]->decided(), "first");
}

// ---------------------------------------------------------------------------
// 2PC: concurrent transactions with overlapping participants
// ---------------------------------------------------------------------------

TEST(TwoPcEdgeTest, InterleavedTransactionsStayIndependent) {
  auto sim_owner = sim::Simulation::Builder(5).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  std::vector<commit::TwoPcParticipant*> cohorts;
  for (int i = 0; i < 3; ++i) {
    cohorts.push_back(sim.Spawn<commit::TwoPcParticipant>());
  }
  auto* coord = sim.Spawn<commit::TwoPcCoordinator>();
  sim.Start();

  // Launch three transactions at once: one commits, one aborts (local
  // failure), one commits.
  commit::Transaction t1;
  t1.tx_id = 1;
  t1.ops = {{0, "PUT a 1"}, {1, "PUT b 1"}};
  commit::Transaction t2;
  t2.tx_id = 2;
  t2.ops = {{1, "FAIL"}, {2, "PUT c 2"}};
  commit::Transaction t3;
  t3.tx_id = 3;
  t3.ops = {{0, "PUT d 3"}, {2, "PUT e 3"}};
  coord->Begin(t1);
  coord->Begin(t2);
  coord->Begin(t3);
  ASSERT_TRUE(sim.RunUntil(
      [&] {
        return coord->outcome(1).has_value() &&
               coord->outcome(2).has_value() &&
               coord->outcome(3).has_value();
      },
      10 * kSecond));
  sim.RunFor(1 * kSecond);
  EXPECT_TRUE(*coord->outcome(1));
  EXPECT_FALSE(*coord->outcome(2));
  EXPECT_TRUE(*coord->outcome(3));
  // The aborted transaction left no residue; the others applied fully.
  EXPECT_EQ(*cohorts[0]->kv().Get("a"), "1");
  EXPECT_EQ(*cohorts[1]->kv().Get("b"), "1");
  EXPECT_FALSE(cohorts[2]->kv().Get("c").has_value());
  EXPECT_EQ(*cohorts[0]->kv().Get("d"), "3");
  EXPECT_EQ(*cohorts[2]->kv().Get("e"), "3");
}

// ---------------------------------------------------------------------------
// Simulator: zero-delay self-messages preserve causal order
// ---------------------------------------------------------------------------

struct SeqMsg : sim::Message {
  explicit SeqMsg(int v) : value(v) {}
  const char* TypeName() const override { return "seq"; }
  int value;
};

class SelfSender : public sim::Process {
 public:
  void OnStart() override {
    for (int i = 0; i < 5; ++i) Send(id(), std::make_shared<SeqMsg>(i));
  }
  void OnMessage(sim::NodeId, const sim::Message& msg) override {
    received.push_back(static_cast<const SeqMsg&>(msg).value);
  }
  std::vector<int> received;
};

TEST(SimEdgeTest, SelfMessagesArriveInSendOrder) {
  auto sim_owner = sim::Simulation::Builder(1).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  auto* node = sim.Spawn<SelfSender>();
  sim.Start();
  sim.RunFor(1 * kMillisecond);
  EXPECT_EQ(node->received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEdgeTest, RunUntilRespectsDeadlineExactly) {
  auto sim_owner = sim::Simulation::Builder(1).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  bool fired = false;
  sim.ScheduleAt(100, [&] { fired = true; });
  // Deadline at exactly the event time: the event is included.
  EXPECT_TRUE(sim.RunUntil([&] { return fired; }, 100));
}

TEST(SimEdgeTest, PartitionedSelfDeliveryStillWorks) {
  // A node isolated from everyone can still message itself (local timers
  // and self-sends must not be casualties of a network partition).
  auto sim_owner = sim::Simulation::Builder(1).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  auto* a = sim.Spawn<SelfSender>();
  auto* b = sim.Spawn<SelfSender>();
  sim.Partition({{a->id()}, {b->id()}});
  sim.Start();
  sim.RunFor(1 * kMillisecond);
  EXPECT_EQ(a->received.size(), 5u);
  EXPECT_EQ(b->received.size(), 5u);
}

}  // namespace
}  // namespace consensus40
