#include <gtest/gtest.h>

#include <vector>
#include <memory>

#include "cheapbft/cheapbft.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"

namespace consensus40::cheapbft {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct CheapCluster {
  explicit CheapCluster(int f, uint64_t seed = 1)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner), registry(seed, 2 * f + 1 + 8), usig(&registry) {
    CheapBftOptions opts;
    opts.f = f;
    opts.registry = &registry;
    opts.usig = &usig;
    for (int i = 0; i < 2 * f + 1; ++i) {
      replicas.push_back(sim.Spawn<CheapBftReplica>(opts));
    }
  }

  CheapBftClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(sim.Spawn<CheapBftClient>(
        (static_cast<int>(replicas.size()) - 1) / 2, &registry, ops, key));
    return clients.back();
  }

  void CheckSafety() const {
    for (size_t a = 0; a < replicas.size(); ++a) {
      for (size_t b = a + 1; b < replicas.size(); ++b) {
        const auto& ca = replicas[a]->executed_commands();
        const auto& cb = replicas[b]->executed_commands();
        size_t overlap = std::min(ca.size(), cb.size());
        for (size_t i = 0; i < overlap; ++i) {
          ASSERT_TRUE(ca[i] == cb[i])
              << "replicas " << a << "," << b << " diverge at " << i;
        }
      }
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  crypto::KeyRegistry registry;
  crypto::Usig usig;
  std::vector<CheapBftReplica*> replicas;
  std::vector<CheapBftClient*> clients;
};

TEST(CheapBftTest, CheapTinyCommitsWithFPlusOneActive) {
  CheapCluster cluster(1);  // n = 3, active = {0, 1}, passive = {2}.
  CheapBftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  // Still running the cheap protocol.
  for (const CheapBftReplica* r : cluster.replicas) {
    EXPECT_EQ(r->mode(), CheapMode::kCheapTiny) << r->id();
  }
  cluster.CheckSafety();
}

TEST(CheapBftTest, PassiveReplicaTracksStateViaUpdates) {
  CheapCluster cluster(1);
  CheapBftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  cluster.sim.RunFor(2 * kSecond);  // Drain updates.
  EXPECT_EQ(cluster.replicas[2]->executed(), 10u);
  EXPECT_EQ(*cluster.replicas[2]->kv().Get("x"), "10");
  cluster.CheckSafety();
}

TEST(CheapBftTest, CheapTinyIsCheaperThanFullBroadcast) {
  CheapCluster cluster(2);  // n = 5, active = 3, passive = 2.
  CheapBftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  // Prepare goes to f+1 = 3 replicas only; commit exchange is within the
  // active set: per request roughly 3 prepares + 3*2 commits + updates.
  uint64_t prepares = cluster.sim.stats().sent_by_type.at("cheap-prepare");
  EXPECT_LE(prepares, 10u * 3u + 5u);
  for (const CheapBftReplica* r : cluster.replicas) {
    EXPECT_EQ(r->mode(), CheapMode::kCheapTiny);
  }
}

TEST(CheapBftTest, ActiveCrashTriggersSwitchToMinBft) {
  CheapCluster cluster(1);
  CheapBftClient* client = cluster.AddClient(12);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 4; },
                                   30 * kSecond));
  // Kill active replica 1: CheapTiny needs ALL active replicas, so the
  // cluster must PANIC and fall back.
  cluster.sim.Crash(1);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.CheckSafety();
  for (const CheapBftReplica* r : cluster.replicas) {
    if (cluster.sim.IsCrashed(r->id())) continue;
    EXPECT_EQ(r->mode(), CheapMode::kMinBft) << r->id();
  }
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(CheapBftTest, SwitchPreservesExecutedPrefix) {
  CheapCluster cluster(1);
  CheapBftClient* client = cluster.AddClient(20);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 8; },
                                   60 * kSecond));
  cluster.sim.Crash(1);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  // The counter ends at exactly 20: nothing lost, nothing doubled across
  // the protocol switch.
  for (const CheapBftReplica* r : cluster.replicas) {
    if (cluster.sim.IsCrashed(r->id())) continue;
    EXPECT_EQ(*r->kv().Get("x"), "20") << r->id();
  }
}

TEST(CheapBftTest, LargerClusterSwitchesToo) {
  CheapCluster cluster(2);  // n = 5.
  CheapBftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   60 * kSecond));
  cluster.sim.Crash(2);  // Active replica.
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.CheckSafety();
}

}  // namespace
}  // namespace consensus40::cheapbft
