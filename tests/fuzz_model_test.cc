// Model-based randomized tests: the KvStore against a reference model, the
// Merkle layer against random tampering, ballots against their algebraic
// laws, and the simulator against exact-replay determinism. These tests
// sweep hundreds of randomized cases per seed and assert invariants, not
// examples.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signatures.h"
#include "paxos/ballot.h"
#include "sim/simulation.h"
#include "smr/state_machine.h"

namespace consensus40 {
namespace {

// ---------------------------------------------------------------------------
// KvStore vs a reference model
// ---------------------------------------------------------------------------

class KvModel {
 public:
  std::string Apply(const std::string& op) {
    std::istringstream in(op);
    std::string verb, a, b, c;
    in >> verb >> a >> b >> c;
    if (verb == "PUT") {
      data_[a] = b;
      return "OK";
    }
    if (verb == "GET") {
      auto it = data_.find(a);
      return it == data_.end() ? "NIL" : it->second;
    }
    if (verb == "DEL") {
      return data_.erase(a) > 0 ? "OK" : "NIL";
    }
    if (verb == "CAS") {
      auto it = data_.find(a);
      if (it != data_.end() && it->second == b) {
        it->second = c;
        return "OK";
      }
      return "FAIL";
    }
    if (verb == "INC") {
      int64_t v = 0;
      auto it = data_.find(a);
      if (it != data_.end()) v = std::strtoll(it->second.c_str(), nullptr, 10);
      data_[a] = std::to_string(v + 1);
      return data_[a];
    }
    return "ERR";
  }

 private:
  std::map<std::string, std::string> data_;
};

class KvFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvFuzz, MatchesModelOnRandomOps) {
  Rng rng(GetParam());
  smr::KvStore kv;
  KvModel model;
  const char* verbs[] = {"PUT", "GET", "DEL", "CAS", "INC"};
  for (int step = 0; step < 2000; ++step) {
    std::string key = "k" + std::to_string(rng.NextBounded(8));
    std::string v1 = std::to_string(rng.NextBounded(5));
    std::string v2 = std::to_string(rng.NextBounded(5));
    const char* verb = verbs[rng.NextBounded(5)];
    std::string op = std::string(verb) + " " + key;
    if (std::string(verb) == "PUT") op += " " + v1;
    if (std::string(verb) == "CAS") op += " " + v1 + " " + v2;
    smr::Command cmd{0, static_cast<uint64_t>(step), op};
    ASSERT_EQ(kv.Apply(cmd), model.Apply(op)) << "step " << step << ": " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvFuzz, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(KvFuzzExtra, SnapshotRestoreRoundTrips) {
  Rng rng(77);
  smr::KvStore kv;
  for (int i = 0; i < 300; ++i) {
    kv.Apply(smr::Command{0, static_cast<uint64_t>(i),
                          "PUT k" + std::to_string(rng.NextBounded(40)) +
                              " v" + std::to_string(rng.Next() % 1000)});
  }
  auto snapshot = kv.Snapshot();
  smr::KvStore clone;
  clone.Restore(snapshot);
  EXPECT_EQ(clone.StateDigest(), kv.StateDigest());
  // Diverge after the restore point: digests must split.
  clone.Apply(smr::Command{0, 999, "PUT divergent 1"});
  EXPECT_NE(clone.StateDigest(), kv.StateDigest());
}

// ---------------------------------------------------------------------------
// Merkle proofs under random tampering
// ---------------------------------------------------------------------------

class MerkleFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MerkleFuzz, TamperedProofsNeverVerify) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    int n = 1 + static_cast<int>(rng.NextBounded(24));
    std::vector<crypto::Digest> leaves;
    for (int i = 0; i < n; ++i) {
      leaves.push_back(crypto::Sha256::Hash(
          "leaf" + std::to_string(trial) + "-" + std::to_string(i)));
    }
    crypto::Digest root = crypto::MerkleRoot(leaves);
    size_t index = rng.NextBounded(n);
    crypto::MerkleProof proof = crypto::BuildMerkleProof(leaves, index);
    ASSERT_TRUE(crypto::VerifyMerkleProof(leaves[index], proof, root));

    if (!proof.siblings.empty()) {
      // Flip one random bit somewhere in the proof.
      crypto::MerkleProof bad = proof;
      size_t which = rng.NextBounded(bad.siblings.size());
      bad.siblings[which][rng.NextBounded(32)] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
      EXPECT_FALSE(crypto::VerifyMerkleProof(leaves[index], bad, root));
    }
    // A wrong root never verifies.
    crypto::Digest wrong_root = root;
    wrong_root[0] ^= 0xff;
    EXPECT_FALSE(crypto::VerifyMerkleProof(leaves[index], proof, wrong_root));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MerkleFuzz, ::testing::Values(11u, 12u, 13u));

// ---------------------------------------------------------------------------
// Signature bit-flip sweep
// ---------------------------------------------------------------------------

TEST(SignatureFuzz, AnyBitFlipInvalidates) {
  crypto::KeyRegistry registry(5, 4);
  crypto::Digest d = crypto::Sha256::Hash("message");
  crypto::Signature sig = registry.Sign(2, d);
  for (int byte = 0; byte < 32; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      crypto::Signature bad = sig;
      bad.tag[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(registry.Verify(bad, d)) << byte << ":" << bit;
    }
  }
}

// ---------------------------------------------------------------------------
// Ballot algebra
// ---------------------------------------------------------------------------

TEST(BallotFuzz, TotalOrderLaws) {
  Rng rng(99);
  std::vector<paxos::Ballot> ballots;
  for (int i = 0; i < 100; ++i) {
    ballots.push_back(paxos::Ballot{
        static_cast<int64_t>(rng.NextBounded(10)),
        static_cast<int32_t>(rng.NextBounded(5))});
  }
  for (const auto& a : ballots) {
    EXPECT_FALSE(a < a);
    EXPECT_TRUE(a <= a && a >= a && a == a);
    // Successor is strictly greater for any pid.
    for (int32_t pid = 0; pid < 5; ++pid) {
      EXPECT_TRUE(a < paxos::Ballot::Successor(a, pid));
    }
    for (const auto& b : ballots) {
      // Trichotomy.
      int relations = (a < b) + (b < a) + (a == b);
      EXPECT_EQ(relations, 1);
      for (const auto& c : ballots) {
        if (a < b && b < c) {
          EXPECT_TRUE(a < c);  // Transitivity.
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Simulator determinism: full-trace replay equality
// ---------------------------------------------------------------------------

struct ChattyMsg : sim::Message {
  explicit ChattyMsg(int h) : hops(h) {}
  const char* TypeName() const override { return "chatty"; }
  int hops;
};

class Chatty : public sim::Process {
 public:
  explicit Chatty(int n) : n_(n) {}
  void OnStart() override {
    Send(static_cast<sim::NodeId>(rng().NextBounded(n_)),
         std::make_shared<ChattyMsg>(40));
  }
  void OnMessage(sim::NodeId, const sim::Message& msg) override {
    const auto* m = dynamic_cast<const ChattyMsg*>(&msg);
    if (m == nullptr || m->hops == 0) return;
    Send(static_cast<sim::NodeId>(rng().NextBounded(n_)),
         std::make_shared<ChattyMsg>(m->hops - 1));
  }

 private:
  int n_;
};

TEST(SimDeterminismFuzz, IdenticalTraceForIdenticalSeed) {
  auto trace_of = [](uint64_t seed) {
    auto sim_owner = sim::Simulation::Builder(seed).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    for (int i = 0; i < 6; ++i) sim.Spawn<Chatty>(6);
    std::vector<std::tuple<sim::Time, int, int>> trace;
    sim.SetTraceFn([&trace](const sim::Envelope& e, sim::Time t) {
      trace.push_back({t, e.from, e.to});
    });
    sim.Start();
    sim.RunFor(5 * sim::kSecond);
    return trace;
  };
  for (uint64_t seed : {1u, 7u, 42u}) {
    auto a = trace_of(seed);
    auto b = trace_of(seed);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "seed " << seed;
  }
  EXPECT_NE(trace_of(1), trace_of(2));
}

}  // namespace
}  // namespace consensus40
