#include <gtest/gtest.h>

#include <algorithm>
#include <vector>
#include <memory>

#include "agreement/approximate.h"
#include "sim/simulation.h"

namespace consensus40::agreement {
namespace {

using sim::kSecond;

struct ApproxWorld {
  ApproxWorld(const std::vector<double>& initial, double epsilon, int rounds,
              uint64_t seed = 1)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {
    ApproxOptions opts;
    opts.n = static_cast<int>(initial.size());
    opts.epsilon = epsilon;
    for (double v : initial) {
      nodes.push_back(sim.Spawn<ApproxAgreementNode>(opts, v, rounds));
    }
  }

  bool AllHalted() const {
    for (const auto* node : nodes) {
      if (!sim.IsCrashed(node->id()) && !node->halted()) return false;
    }
    return true;
  }

  double Spread() const {
    double lo = 1e300, hi = -1e300;
    for (const auto* node : nodes) {
      if (sim.IsCrashed(node->id())) continue;
      lo = std::min(lo, node->value());
      hi = std::max(hi, node->value());
    }
    return hi - lo;
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<ApproxAgreementNode*> nodes;
};

TEST(RoundsForSpreadTest, LogarithmicBound) {
  EXPECT_EQ(RoundsForSpread(1.0, 1.0), 0);
  EXPECT_EQ(RoundsForSpread(1.0, 0.5), 1);
  EXPECT_EQ(RoundsForSpread(1.0, 0.01), 7);  // 2^-7 < 0.01.
  EXPECT_EQ(RoundsForSpread(100.0, 0.01), 14);
}

TEST(ApproxAgreementTest, ConvergesWithinEpsilon) {
  std::vector<double> initial = {0.0, 10.0, 3.0, 7.0};
  int rounds = RoundsForSpread(10.0, 0.01) + 2;
  ApproxWorld w(initial, 0.01, rounds);
  w.sim.Start();
  ASSERT_TRUE(w.sim.RunUntil([&] { return w.AllHalted(); }, 120 * kSecond));
  EXPECT_LT(w.Spread(), 0.01);
  // Validity: final values lie within the initial range.
  for (const auto* node : w.nodes) {
    EXPECT_GE(node->value(), 0.0);
    EXPECT_LE(node->value(), 10.0);
  }
}

TEST(ApproxAgreementTest, ToleratesCrashFault) {
  std::vector<double> initial = {0.0, 10.0, 5.0, 2.0};  // n=4, f=1.
  int rounds = RoundsForSpread(10.0, 0.05) + 3;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ApproxWorld w(initial, 0.05, rounds, seed);
    w.sim.Start();
    w.sim.ScheduleAfter(3 * sim::kMillisecond, [&] { w.sim.Crash(1); });
    ASSERT_TRUE(w.sim.RunUntil([&] { return w.AllHalted(); }, 120 * kSecond))
        << seed;
    EXPECT_LT(w.Spread(), 0.05) << "seed " << seed;
  }
}

TEST(ApproxAgreementTest, SpreadShrinksMonotonicallyAcrossRounds) {
  // Run round counts 1..8 and verify the spread keeps shrinking —
  // exponential convergence, the signature of the averaging rule.
  std::vector<double> initial = {0.0, 16.0, 4.0, 12.0, 8.0};
  double previous = 16.0;
  for (int rounds = 1; rounds <= 8; ++rounds) {
    ApproxWorld w(initial, 1e-9, rounds, 7);
    w.sim.Start();
    ASSERT_TRUE(w.sim.RunUntil([&] { return w.AllHalted(); }, 120 * kSecond));
    EXPECT_LE(w.Spread(), previous + 1e-12) << "rounds=" << rounds;
    previous = w.Spread();
  }
  EXPECT_LT(previous, 0.5);
}

TEST(ApproxAgreementTest, AsynchronousDelaysDoNotBreakConvergence) {
  std::vector<double> initial = {1.0, 9.0, 5.0, 3.0, 7.0, 2.0, 8.0};
  int rounds = RoundsForSpread(8.0, 0.01) + 4;
  ApproxWorld w(initial, 0.01, rounds, 11);
  // Heavy adversarial jitter.
  w.sim.SetDelayFn([&w](const sim::Envelope& e) -> sim::Duration {
    if (e.from == e.to) return 0;
    return 1 + static_cast<sim::Duration>(
                   w.sim.rng().NextBounded(40 * sim::kMillisecond));
  });
  w.sim.Start();
  ASSERT_TRUE(w.sim.RunUntil([&] { return w.AllHalted(); }, 240 * kSecond));
  EXPECT_LT(w.Spread(), 0.01);
}

}  // namespace
}  // namespace consensus40::agreement
