#include <gtest/gtest.h>

#include "agreement/interactive_consistency.h"

namespace consensus40::agreement {
namespace {

std::vector<std::string> Values(int n) {
  std::vector<std::string> values;
  for (int i = 0; i < n; ++i) values.push_back("v" + std::to_string(i));
  return values;
}

// The deck's Case I: N = 4, f = 1 — agreement is reached.
TEST(InteractiveConsistencyTest, FourNodesOneFaultySucceeds) {
  auto results = RunInteractiveConsistency(4, Values(4), {3}, DefaultLiar());
  EXPECT_TRUE(VectorsAgree(results, {3}));
  EXPECT_TRUE(CorrectValuesRecovered(results, Values(4), {3}));
  // The faulty slot is consistently UNKNOWN at every correct process
  // (the liar sent a different value to everyone).
  for (int p = 0; p < 4; ++p) {
    if (p == 3) continue;
    EXPECT_EQ(results[p][3], kUnknown) << p;
  }
}

// The deck's Case II: N = 3, f = 1 — 3f+1 is necessary; everything
// degrades to UNKNOWN.
TEST(InteractiveConsistencyTest, ThreeNodesOneFaultyFails) {
  auto results = RunInteractiveConsistency(3, Values(3), {2}, DefaultLiar());
  EXPECT_FALSE(CorrectValuesRecovered(results, Values(3), {2}));
  // Correct processes cannot even recover each other's values.
  EXPECT_EQ(results[0][1], kUnknown);
  EXPECT_EQ(results[1][0], kUnknown);
}

TEST(InteractiveConsistencyTest, NoFaultsPerfectRecovery) {
  for (int n = 2; n <= 7; ++n) {
    auto results = RunInteractiveConsistency(n, Values(n), {}, DefaultLiar());
    EXPECT_TRUE(VectorsAgree(results, {})) << n;
    EXPECT_TRUE(CorrectValuesRecovered(results, Values(n), {})) << n;
  }
}

// Parameterized sweep over n for a single Byzantine process: the 3f+1
// boundary (f=1 => n>=4).
class PslBoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(PslBoundaryTest, BoundaryAtThreeFPlusOne) {
  int n = GetParam();
  std::set<int> faulty = {n - 1};
  auto results = RunInteractiveConsistency(n, Values(n), faulty,
                                           DefaultLiar());
  bool ok = VectorsAgree(results, faulty) &&
            CorrectValuesRecovered(results, Values(n), faulty);
  if (n >= 4) {
    EXPECT_TRUE(ok) << "n=" << n << " should reach agreement";
  } else {
    EXPECT_FALSE(ok) << "n=" << n << " should fail (below 3f+1)";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PslBoundaryTest,
                         ::testing::Values(3, 4, 5, 6, 7, 10));

// A consistent liar (same lie to everyone) is indistinguishable from a
// correct process with that value: correct processes agree on the lie —
// consistency is preserved even though the value is bogus.
TEST(InteractiveConsistencyTest, ConsistentLiarYieldsConsistentVectors) {
  auto consistent = [](int, int, int, int) { return std::string("lie"); };
  auto results = RunInteractiveConsistency(4, Values(4), {2}, consistent);
  EXPECT_TRUE(VectorsAgree(results, {2}));
  for (int p = 0; p < 4; ++p) {
    if (p == 2) continue;
    EXPECT_EQ(results[p][2], "lie");
  }
}

// A silent (crash-like) faulty process: everyone agrees its slot is the
// empty value; correct values still recovered.
TEST(InteractiveConsistencyTest, SilentFaultStillConsistent) {
  auto results = RunInteractiveConsistency(4, Values(4), {1}, Silent());
  EXPECT_TRUE(VectorsAgree(results, {1}));
  EXPECT_TRUE(CorrectValuesRecovered(results, Values(4), {1}));
}

// n = 7, f = 2 is beyond what ONE round of relay can fix: the deck's
// 2-round construction is the f=1 instance of the recursive PSL algorithm.
// With two COLLUDING liars targeting the same honest relay patterns,
// honest values still survive at n = 7 because 4 honest relays outvote 2
// liars for every honest element.
TEST(InteractiveConsistencyTest, SevenNodesTwoLiarsHonestValuesSurvive) {
  auto results =
      RunInteractiveConsistency(7, Values(7), {5, 6}, DefaultLiar());
  EXPECT_TRUE(CorrectValuesRecovered(results, Values(7), {5, 6}));
}

}  // namespace
}  // namespace consensus40::agreement
