// Cross-protocol safety-checker sweep (src/check/):
//
//   1. In-bounds: every protocol adapter is swept over seeded fault
//      schedules drawn from its own stated fault bounds; no schedule may
//      violate any safety invariant. On failure the schedule is shrunk
//      and printed as a replayable repro.
//   2. Out-of-bounds: configurations the paper calls unsafe (Flexible
//      Paxos with q1+q2<=n, FloodSet at f rounds, PBFT at n=3f) must
//      yield violations the checker can find, shrink, and replay.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/adapters.h"
#include "check/checker.h"
#include "check/shrink.h"

namespace consensus40::check {
namespace {

constexpr int kSchedulesPerProtocol = 200;

void SweepInBounds(const char* label, const AdapterFactory& factory) {
  for (uint64_t seed = 1; seed <= kSchedulesPerProtocol; ++seed) {
    FaultSchedule schedule;
    RunResult result = RunSeed(factory, seed, &schedule);
    if (!result.violated()) continue;
    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    FaultSchedule min = CanonicalizeSchedule(
        ShrinkSchedule(schedule, bounds, replay), bounds, replay);
    ADD_FAILURE() << label << ": safety violation at seed " << seed << ":\n  "
                  << result.violations[0] << "\n  repro: " << min.ToString();
    return;  // One shrunk repro per protocol is enough signal.
  }
}

TEST(CheckSweepInBounds, Paxos) { SweepInBounds("paxos", MakePaxosAdapter()); }

TEST(CheckSweepInBounds, MultiPaxos) {
  SweepInBounds("multi_paxos", MakeMultiPaxosAdapter());
}

TEST(CheckSweepInBounds, FastPaxos) {
  SweepInBounds("fast_paxos", MakeFastPaxosAdapter());
}

TEST(CheckSweepInBounds, Raft) { SweepInBounds("raft", MakeRaftAdapter()); }

TEST(CheckSweepInBounds, Pbft) { SweepInBounds("pbft", MakePbftAdapter()); }

TEST(CheckSweepInBounds, MinBft) {
  SweepInBounds("minbft", MakeMinBftAdapter());
}

TEST(CheckSweepInBounds, HotStuff) {
  SweepInBounds("hotstuff", MakeHotStuffAdapter());
}

TEST(CheckSweepInBounds, Xft) { SweepInBounds("xft", MakeXftAdapter()); }

TEST(CheckSweepInBounds, Zyzzyva) {
  SweepInBounds("zyzzyva", MakeZyzzyvaAdapter());
}

TEST(CheckSweepInBounds, CheapBft) {
  SweepInBounds("cheapbft", MakeCheapBftAdapter());
}

TEST(CheckSweepInBounds, TwoPhaseCommit) {
  SweepInBounds("2pc", MakeTwoPhaseCommitAdapter());
}

TEST(CheckSweepInBounds, ThreePhaseCommit) {
  SweepInBounds("3pc", MakeThreePhaseCommitAdapter());
}

TEST(CheckSweepInBounds, BenOr) { SweepInBounds("benor", MakeBenOrAdapter()); }

// The sharded 2PC-over-consensus composition: atomicity and prefix
// consistency must survive replica crashes, whole-shard partitions, AND
// the classic coordinator-crash-between-prepare-and-commit — the fault
// plain 2PC (below, out of bounds) demonstrably blocks under.
TEST(CheckSweepInBounds, ShardedTwoPhaseCommitOverConsensus) {
  SweepInBounds("shard", MakeShardAdapter());
}

// Crossword's adaptive assignment: command sizes in the generic workload
// sit below min_payload_to_shard, so this sweeps the protocol's classic
// full-copy path plus leader-change recovery of full-value slots.
TEST(CheckSweepInBounds, Crossword) {
  SweepInBounds("crossword", MakeCrosswordAdapter());
}

// Pinned at one shard per acceptor: every accept is a coded fragment,
// every follower apply is a reconstruction, and every leader change
// reassembles possibly-chosen values from promise fragments — the
// maximum-stress configuration for the widened quorum q2(1) = n and the
// chosen-slot promise/teach machinery.
TEST(CheckSweepInBounds, CrosswordRs) {
  SweepInBounds("crossword_rs", MakeCrosswordRsAdapter());
}

TEST(CheckSweepInBounds, FloodSet) {
  SweepInBounds("floodset", MakeFloodSetAdapter());
}

// The hot-path optimisations — leader-side batching, linger timers, and
// windowed (out-of-order-tolerant) clients — must not move any protocol
// outside its safety envelope.
TEST(CheckSweepInBounds, RaftBatched) {
  SweepInBounds("raft_batched", MakeBatchedGroupAdapter("raft"));
}

TEST(CheckSweepInBounds, MultiPaxosBatched) {
  SweepInBounds("multi_paxos_batched", MakeBatchedGroupAdapter("multi_paxos"));
}

TEST(CheckSweepInBounds, ShardBatched) {
  SweepInBounds("shard_batched", MakeShardBatchedAdapter());
}

// Elastic resharding: a live range move (shard 0's whole initial range
// to a spare group) races the cross-shard transactions while schedules
// crash the mover inside the move window, cut the old or new owner off
// mid-copy, and keep the usual replica/coordinator faults. Atomicity,
// prefix consistency, no lost writes, AND termination must all hold: the
// move's transitions are write-once decision-group records, so any
// participant finishes a dead mover's move.
TEST(CheckSweepInBounds, ShardReshard) {
  SweepInBounds("shard_reshard", MakeShardReshardAdapter());
}

// Typed read-write transactions (GET/PUT/DELETE/CAS under prepare-time
// shared/exclusive locking) plus repeated read-only snapshots, racing a
// live range move under the reshard fault envelope. On top of atomicity
// and prefix consistency the adapter audits serializability: for every
// schedule the committed transactions' observed reads must admit a
// serial order, and every snapshot value must be one a committed
// transaction wrote.
TEST(CheckSweepInBounds, ShardTxn) {
  SweepInBounds("shard_txn", MakeShardTxnAdapter());
}

// --- Byzantine variants: one interposer-driven liar inside the stated f.
// Schedules may equivocate (where a forge hook exists), withhold, corrupt,
// or replay one node's outbound traffic in seed-chosen windows — and for
// PBFT may also be view-change-heavy bursts that silence consecutive
// primaries mid-client-burst. Safety must hold for every schedule.

TEST(CheckSweepInBounds, PbftByzantine) {
  SweepInBounds("pbft_byz", MakePbftByzantineAdapter());
}

TEST(CheckSweepInBounds, ZyzzyvaByzantine) {
  SweepInBounds("zyzzyva_byz", MakeZyzzyvaByzantineAdapter());
}

TEST(CheckSweepInBounds, MinBftByzantine) {
  SweepInBounds("minbft_byz", MakeMinBftByzantineAdapter());
}

TEST(CheckSweepInBounds, HotStuffByzantine) {
  SweepInBounds("hotstuff_byz", MakeHotStuffByzantineAdapter());
}

TEST(CheckSweepInBounds, XftByzantine) {
  SweepInBounds("xft_byz", MakeXftByzantineAdapter());
}

TEST(CheckSweepInBounds, CheapBftByzantine) {
  SweepInBounds("cheapbft_byz", MakeCheapBftByzantineAdapter());
}

TEST(CheckSweepInBounds, RosterCoversAtLeastTenProtocols) {
  EXPECT_GE(AllInBoundsAdapters().size(), 10u);
}

// ---------------------------------------------------------------------------
// Out-of-bounds: the checker must find what the paper says must break.
// ---------------------------------------------------------------------------

/// Sweeps seeds until a violating schedule is found; then shrinks it,
/// verifies the shrunk schedule still violates when replayed (twice, to
/// pin determinism), prints the repro, and checks the violation matches
/// `expect_substr`.
void ExpectViolationFound(const char* label, const AdapterFactory& factory,
                          int max_seeds, const std::string& expect_substr) {
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(max_seeds); ++seed) {
    FaultSchedule schedule;
    RunResult result = RunSeed(factory, seed, &schedule);
    if (!result.violated()) continue;

    bool matched = false;
    for (const std::string& v : result.violations) {
      matched |= v.find(expect_substr) != std::string::npos;
    }
    EXPECT_TRUE(matched) << label << ": expected a \"" << expect_substr
                         << "\" violation, got: " << result.violations[0];

    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    FaultSchedule min = CanonicalizeSchedule(
        ShrinkSchedule(schedule, bounds, replay), bounds, replay);
    EXPECT_LE(min.actions.size(), schedule.actions.size());

    // The shrunk schedule is a replayable repro: deterministic violations
    // on every re-run.
    RunResult replay1 = RunSchedule(factory, seed, min);
    RunResult replay2 = RunSchedule(factory, seed, min);
    EXPECT_TRUE(replay1.violated()) << label << ": shrunk schedule lost the "
                                    << "violation: " << min.ToString();
    EXPECT_EQ(replay1.violations, replay2.violations)
        << label << ": repro is not deterministic";

    std::printf("[checker] %s: violation at seed %llu: %s\n  repro: %s\n",
                label, static_cast<unsigned long long>(seed),
                replay1.violations.empty() ? result.violations[0].c_str()
                                           : replay1.violations[0].c_str(),
                min.ToString().c_str());
    return;
  }
  ADD_FAILURE() << label << ": no violation found in " << max_seeds
                << " seeds — the checker missed a known-unsafe configuration";
}

TEST(CheckSweepOutOfBounds, FlexiblePaxosNonIntersectingQuorumsDoubleDecide) {
  ExpectViolationFound("paxos-q1+q2<=n", MakePaxosOutOfBoundsAdapter(), 400,
                       "agreement");
}

TEST(CheckSweepOutOfBounds, FloodSetAtFRoundsSplitsDecisions) {
  ExpectViolationFound("floodset-f-rounds", MakeFloodSetOutOfBoundsAdapter(),
                       400, "agreement");
}

TEST(CheckSweepOutOfBounds, PbftAtThreeFForksHonestBackups) {
  ExpectViolationFound("pbft-n=3f", MakePbftOutOfBoundsAdapter(), 50,
                       "prefix");
}

// Plain 2PC with the coordinator crashed in the decision window and never
// restarted: participants stay prepared forever. The adapter claims
// termination, so the checker must surface the blocking as a liveness
// violation — the exact contrast to the in-bounds shard sweep above.
TEST(CheckSweepOutOfBounds, PlainTwoPhaseCommitBlocksOnCoordinatorCrash) {
  ExpectViolationFound("2pc-blocking", MakeTwoPhaseCommitBlockingAdapter(), 50,
                       "liveness");
}

// Crossword with the coded-accept quorum cut to a bare majority: a
// 1-shard entry reaches "chosen" with fewer distinct fragments in the
// cluster than the k needed to reconstruct it. Partitioning away the
// leader (the only full copy) leaves the surviving majority staring at
// slots nobody can reassemble, and phase 1 cannot tell them from
// unchosen ones — the new leader re-proposes fresh client commands over
// decided indexes and the logs diverge (the safety face, asserted
// here). The same under-replication also shows a liveness face — the
// shrunk repro strands the workload on an unreconstructable slot past
// the heal — but divergence is the sharper indictment.
TEST(CheckSweepOutOfBounds, CrosswordMajorityQuorumUnderReplicatesShards) {
  ExpectViolationFound("crossword-majority-q2",
                       MakeCrosswordOutOfBoundsAdapter(), 200, "prefix");
}

// The typed-transaction composition with GET ops' shared locks switched
// off and two concurrent write-skew clients (tx 1 reads x / writes y,
// tx 2 reads y / writes x). Without read locks neither prepare
// conflicts, both commit having read the initial versions, and no
// serial order explains the history — the exact anomaly the shared
// locks exist to prevent, caught by the serializability audit.
TEST(CheckSweepOutOfBounds, TxnWithoutReadLocksAllowsWriteSkew) {
  ExpectViolationFound("shard-txn-no-read-locks",
                       MakeShardTxnNoReadLocksAdapter(), 50,
                       "no serial order");
}

// The move ladder with the flip made before freeze + drain: in-flight
// transactions at the old owner apply their writes behind the copy
// snapshot and the routing fence, so a committed write exists at no
// owner. The exact contrast to the in-bounds reshard sweep above.
TEST(CheckSweepOutOfBounds, ReshardFlipBeforeDrainLosesWrites) {
  ExpectViolationFound("reshard-flip-before-drain",
                       MakeShardReshardOutOfBoundsAdapter(), 50, "lost write");
}

// ---------------------------------------------------------------------------
// Canonicalization: repro lines must be minimal AND stable.
// ---------------------------------------------------------------------------

/// The first Flexible-Paxos violation's repro, after ddmin + the
/// canonicalization pass, is pinned byte-for-byte: action times snapped
/// to round milliseconds and aux randomness zeroed, so the line survives
/// schedule-generator refactors that preserve behaviour. If this fails
/// because the *generator* intentionally changed, re-pin the string; if
/// it fails with the same generator, canonicalization regressed.
TEST(ShrinkCanonicalize, KnownReproHasCanonicalForm) {
  AdapterFactory factory = MakePaxosOutOfBoundsAdapter();
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    FaultSchedule schedule;
    RunResult result = RunSeed(factory, seed, &schedule);
    if (!result.violated()) continue;

    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    ShrinkStats stats;
    FaultSchedule min = ShrinkSchedule(schedule, bounds, replay, 400, &stats);
    min = CanonicalizeSchedule(std::move(min), bounds, replay, &stats);

    // Canonical repros still violate, deterministically.
    EXPECT_TRUE(RunSchedule(factory, seed, min).violated());
    // Simulation-based adapters ignore aux, so canonicalization always
    // zeroes it; times snap to >= 1 ms grains.
    for (const FaultAction& a : min.actions) {
      EXPECT_EQ(a.aux, 0u);
      EXPECT_EQ(a.at % sim::kMillisecond, 0);
    }
    EXPECT_GT(stats.snapped, 0) << "canonicalization accepted no edits";
    // The repro keeps its heal: the shrinker may not delete the tail
    // restore (RestoreScheduleTail re-establishes it), so every printed
    // schedule is one the generator could actually emit.
    EXPECT_EQ(min.ToString(),
              "schedule --seed=29: [ partition({0,2}|{1,3})@200ms "
              "heal@1700ms ]");
    return;
  }
  FAIL() << "no Flexible-Paxos violation in 400 seeds";
}

/// The f+1-equivocator repro is pinned the same way: the first violating
/// seed of the PBFT n=3f configuration must shrink — deterministically,
/// via ddmin + canonicalization — to a single equivocation window with
/// round times and zeroed aux. Same re-pin rule as above: if the
/// *generator* intentionally changed, update the string; otherwise the
/// shrinker or the Byzantine injection path regressed.
TEST(ShrinkCanonicalize, EquivocatorReproHasCanonicalForm) {
  AdapterFactory factory = MakePbftOutOfBoundsAdapter();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FaultSchedule schedule;
    RunResult result = RunSeed(factory, seed, &schedule);
    if (!result.violated()) continue;

    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    FaultSchedule min = CanonicalizeSchedule(
        ShrinkSchedule(schedule, bounds, replay), bounds, replay);

    EXPECT_TRUE(RunSchedule(factory, seed, min).violated());
    ASSERT_EQ(min.actions.size(), 1u);
    EXPECT_EQ(min.actions[0].kind, FaultKind::kEquivocate);
    EXPECT_EQ(min.actions[0].aux, 0u);
    EXPECT_EQ(min.actions[0].at % sim::kMillisecond, 0);
    EXPECT_EQ(min.actions[0].window % sim::kMillisecond, 0);
    EXPECT_EQ(min.ToString(),
              "schedule --seed=1: [ equivocate(0,500ms)@100ms ]");
    return;
  }
  FAIL() << "no PBFT n=3f violation in 50 seeds";
}

/// The flip-before-drain lost-write repro is pinned the same way: the
/// first violating seed of the unsafe reshard ladder must shrink —
/// deterministically, via ddmin + canonicalization — to the same action
/// list with round times and zeroed aux. The shape is instructive: a
/// dest-group replica crash slows the copy just enough, and the mover
/// crash parks the move mid-ladder, for an in-flight transaction to
/// apply its write behind the already-flipped routing fence. Same re-pin
/// rule as above: if the *generator* intentionally changed, update the
/// string; otherwise the shrinker or the reshard ladder regressed.
TEST(ShrinkCanonicalize, ReshardLostWriteReproHasCanonicalForm) {
  AdapterFactory factory = MakeShardReshardOutOfBoundsAdapter();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FaultSchedule schedule;
    RunResult result = RunSeed(factory, seed, &schedule);
    if (!result.violated()) continue;

    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    FaultSchedule min = CanonicalizeSchedule(
        ShrinkSchedule(schedule, bounds, replay), bounds, replay);

    EXPECT_TRUE(RunSchedule(factory, seed, min).violated());
    for (const FaultAction& a : min.actions) {
      EXPECT_EQ(a.aux, 0u);
      EXPECT_EQ(a.at % sim::kMillisecond, 0);
    }
    EXPECT_EQ(min.ToString(),
              "schedule --seed=8: [ crash(8)@100ms mover-crash(23)@400ms "
              "restart(23)@2000ms restart(8)@2000ms ]");
    return;
  }
  FAIL() << "no flip-before-drain violation in 50 seeds";
}

/// The write-skew repro is pinned the same way — and is the starkest of
/// the set: ddmin deletes EVERY action, because the anomaly needs no
/// faults at all. With GET's shared locks off, the two concurrent
/// readers-of-each-other's-writes commit on a plain fault-free run;
/// the canonical repro is the empty schedule at the first seed whose
/// generated schedule let both transactions commit. Same re-pin rule as
/// above: update the string only when the schedule generator
/// intentionally changed; otherwise the audit or the lock path
/// regressed.
TEST(ShrinkCanonicalize, WriteSkewReproHasCanonicalForm) {
  AdapterFactory factory = MakeShardTxnNoReadLocksAdapter();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FaultSchedule schedule;
    RunResult result = RunSeed(factory, seed, &schedule);
    if (!result.violated()) continue;

    EXPECT_NE(result.violations[0].find(
                  "no serial order of the committed transactions {1,2}"),
              std::string::npos)
        << result.violations[0];

    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    FaultSchedule min = CanonicalizeSchedule(
        ShrinkSchedule(schedule, bounds, replay), bounds, replay);

    EXPECT_TRUE(RunSchedule(factory, seed, min).violated());
    EXPECT_EQ(min.actions.size(), 0u);
    EXPECT_EQ(min.ToString(), "schedule --seed=2: [ ]");
    return;
  }
  FAIL() << "no write-skew violation in 50 seeds";
}

/// The Crossword bare-majority repro, pinned the same way. The shape
/// reads straight off the flaw: a delay spike while the 40-op workload
/// is in flight leaves sharded commits un-disseminated past the bare
/// quorum, then the partition isolates the leader-side full copies —
/// the surviving majority holds fewer than k distinct fragments of the
/// committed slots and parks forever, heal notwithstanding (the full
/// generated schedule additionally diverges the logs; shrinking keeps
/// the violation but lands on the liveness face). Same re-pin rule as
/// above: update the string only when the schedule *generator*
/// intentionally changed; any other drift means the shrinker or the
/// protocol's recovery path regressed.
TEST(ShrinkCanonicalize, CrosswordUnderReplicationReproHasCanonicalForm) {
  AdapterFactory factory = MakeCrosswordOutOfBoundsAdapter();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FaultSchedule schedule;
    RunResult result = RunSeed(factory, seed, &schedule);
    if (!result.violated()) continue;

    auto replay = [&](const FaultSchedule& candidate) {
      return RunSchedule(factory, seed, candidate).violated();
    };
    const FaultBounds bounds = factory(seed)->bounds();
    FaultSchedule min = CanonicalizeSchedule(
        ShrinkSchedule(schedule, bounds, replay), bounds, replay);

    EXPECT_TRUE(RunSchedule(factory, seed, min).violated());
    for (const FaultAction& a : min.actions) {
      EXPECT_EQ(a.aux, 0u);
      EXPECT_EQ(a.at % sim::kMillisecond, 0);
    }
    EXPECT_EQ(min.ToString(),
              "schedule --seed=1: [ spike(13ms..33ms)@200ms "
              "partition({0,1,4}|{2,3})@1300ms unspike@2000ms heal@2000ms ]");
    return;
  }
  FAIL() << "no crossword under-replication violation in 50 seeds";
}

}  // namespace
}  // namespace consensus40::check
