#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/signatures.h"
#include "seemore/seemore.h"
#include "sim/simulation.h"

namespace consensus40::seemore {
namespace {

using sim::kMillisecond;
using sim::kSecond;

/// Mode-3 Byzantine primary: equivocates between the real command and a
/// forged one across the proxy set.
class EquivocatingPublicPrimary : public SeeMoReReplica {
 public:
  explicit EquivocatingPublicPrimary(SeeMoReOptions options)
      : SeeMoReReplica(options) {}
  int equivocations = 0;

 protected:
  bool MaybeActMaliciouslyOnRequest(const smr::Command& cmd,
                                    const crypto::Signature& sig) override {
    ++equivocations;
    smr::Command evil = cmd;
    evil.op = "PUT stolen 666";
    uint64_t seq = next_evil_seq_++;
    for (int r = 0; r < options_.n(); ++r) {
      auto propose = std::make_shared<ProposeMsg>();
      propose->seq = seq;
      propose->cmd = (r % 2 == 0) ? cmd : evil;
      propose->client_sig = sig;
      crypto::Sha256 h;
      h.Update(&seq, sizeof(seq));
      crypto::Digest d = propose->cmd.Hash();
      h.Update(d.data(), d.size());
      propose->primary_sig = options_.registry->Sign(id(), h.Finish());
      CountedSend(r, propose);
    }
    return true;
  }

 private:
  uint64_t next_evil_seq_ = 1;
};

struct SeeMoReCluster {
  SeeMoReCluster(int m, int c, SeeMoReMode mode, uint64_t seed = 1,
                 bool byz_primary = false)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner), registry(seed, 3 * m + 2 * c + 1 + 8) {
    opts.m = m;
    opts.c = c;
    opts.mode = mode;
    opts.registry = &registry;
    for (int i = 0; i < opts.n(); ++i) {
      bool is_primary =
          (mode == SeeMoReMode::kMode3) ? i == opts.private_n() : i == 0;
      if (byz_primary && is_primary && mode == SeeMoReMode::kMode3) {
        replicas.push_back(sim.Spawn<EquivocatingPublicPrimary>(opts));
        sim.MarkByzantine(i);
      } else {
        replicas.push_back(sim.Spawn<SeeMoReReplica>(opts));
      }
    }
  }

  SeeMoReClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(sim.Spawn<SeeMoReClient>(opts, ops, key));
    return clients.back();
  }

  void CheckSafety() const {
    for (size_t a = 0; a < replicas.size(); ++a) {
      if (sim.IsByzantine(replicas[a]->id())) continue;
      for (size_t b = a + 1; b < replicas.size(); ++b) {
        if (sim.IsByzantine(replicas[b]->id())) continue;
        const auto& ca = replicas[a]->executed_commands();
        const auto& cb = replicas[b]->executed_commands();
        size_t overlap = std::min(ca.size(), cb.size());
        for (size_t i = 0; i < overlap; ++i) {
          ASSERT_TRUE(ca[i] == cb[i])
              << "replicas " << a << "," << b << " diverge at " << i;
        }
      }
    }
  }

  uint64_t PrivateCloudLoad() const {
    uint64_t load = 0;
    for (const SeeMoReReplica* r : replicas) {
      if (r->IsPrivate()) load += r->messages_sent();
    }
    return load;
  }

  SeeMoReOptions opts;
  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  crypto::KeyRegistry registry;
  std::vector<SeeMoReReplica*> replicas;
  std::vector<SeeMoReClient*> clients;
};

class SeeMoReModeTest : public ::testing::TestWithParam<SeeMoReMode> {};

TEST_P(SeeMoReModeTest, CommitsAndConverges) {
  SeeMoReCluster cluster(1, 1, GetParam());
  SeeMoReClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  // Every replica (private and public) learned every decision.
  for (const SeeMoReReplica* r : cluster.replicas) {
    EXPECT_EQ(r->executed(), 10u) << r->id();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, SeeMoReModeTest,
                         ::testing::Values(SeeMoReMode::kMode1,
                                           SeeMoReMode::kMode2,
                                           SeeMoReMode::kMode3));

TEST(SeeMoReTest, Mode2ReducesPrivateCloudLoad) {
  SeeMoReCluster mode1(1, 1, SeeMoReMode::kMode1);
  SeeMoReClient* c1 = mode1.AddClient(10);
  mode1.sim.Start();
  ASSERT_TRUE(mode1.sim.RunUntil([&] { return c1->done(); }, 120 * kSecond));
  mode1.sim.RunFor(1 * kSecond);

  SeeMoReCluster mode2(1, 1, SeeMoReMode::kMode2);
  SeeMoReClient* c2 = mode2.AddClient(10);
  mode2.sim.Start();
  ASSERT_TRUE(mode2.sim.RunUntil([&] { return c2->done(); }, 120 * kSecond));
  mode2.sim.RunFor(1 * kSecond);

  // Mode 2's goal per the deck: reduce the load on the private cloud by
  // moving decision making to public proxies.
  EXPECT_LT(mode2.PrivateCloudLoad(), mode1.PrivateCloudLoad());
}

TEST(SeeMoReTest, Mode1QuorumIsLargerThanMode2) {
  SeeMoReOptions o1;
  o1.m = 2;
  o1.c = 3;
  o1.mode = SeeMoReMode::kMode1;
  SeeMoReOptions o2 = o1;
  o2.mode = SeeMoReMode::kMode2;
  crypto::KeyRegistry registry(1, o1.n() + 2);
  o1.registry = &registry;
  o2.registry = &registry;
  auto sim_owner = sim::Simulation::Builder(1).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  auto* r1 = sim.Spawn<SeeMoReReplica>(o1);
  EXPECT_EQ(r1->DecisionQuorum(), 2 * 2 + 3 + 1);  // 2m+c+1.
  SeeMoReOptions o2b = o2;
  auto* r2 = sim.Spawn<SeeMoReReplica>(o2b);
  EXPECT_EQ(r2->DecisionQuorum(), 2 * 2 + 1);  // 2m+1.
}

TEST(SeeMoReTest, Mode3ValidationBlocksEquivocation) {
  SeeMoReCluster cluster(1, 1, SeeMoReMode::kMode3, 1, /*byz_primary=*/true);
  SeeMoReClient* client = cluster.AddClient(3);
  cluster.sim.Start();
  // The equivocating primary cannot gather a validation quorum on either
  // branch (no view change implemented => no progress), but safety holds.
  cluster.sim.RunFor(10 * kSecond);
  cluster.CheckSafety();
  for (const SeeMoReReplica* r : cluster.replicas) {
    if (cluster.sim.IsByzantine(r->id())) continue;
    EXPECT_FALSE(r->kv().Get("stolen").has_value()) << r->id();
    EXPECT_EQ(r->executed(), 0u) << r->id();
  }
  EXPECT_EQ(client->completed(), 0);
}

TEST(SeeMoReTest, Mode1ToleratesPrivateCrashes) {
  SeeMoReCluster cluster(1, 2, SeeMoReMode::kMode1);  // n = 3+4+1 = 8.
  SeeMoReClient* client = cluster.AddClient(8);
  // Crash c = 2 private (non-primary) nodes.
  cluster.sim.Crash(1);
  cluster.sim.Crash(2);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  cluster.CheckSafety();
}

TEST(SeeMoReTest, Mode3ToleratesByzantineSilentProxy) {
  SeeMoReCluster cluster(1, 1, SeeMoReMode::kMode3);
  SeeMoReClient* client = cluster.AddClient(8);
  // Silence one non-primary proxy (crash models a silent Byzantine node).
  cluster.sim.Crash(cluster.opts.private_n() + 1);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  cluster.CheckSafety();
}

}  // namespace
}  // namespace consensus40::seemore
