#include <gtest/gtest.h>

#include <memory>

#include "blockchain/chain.h"
#include "blockchain/mempool.h"
#include "blockchain/miner.h"
#include "sim/simulation.h"

namespace consensus40::blockchain {
namespace {

using sim::kMillisecond;
using sim::kSecond;

Transaction Tx(const std::string& payload, int64_t fee = 1) {
  Transaction tx;
  tx.payload = payload;
  tx.amount = 1;
  tx.fee = fee;
  return tx;
}

ChainOptions TestChain() {
  ChainOptions opts;
  opts.verify_pow = false;
  opts.block_interval_secs = 10;
  opts.retarget_interval = 1000;
  opts.initial_reward = 50;
  opts.halving_interval = 1u << 20;
  return opts;
}

Block MakeBlock(const BlockTree& tree, const crypto::Digest& parent,
                int32_t miner, uint32_t timestamp,
                std::vector<Transaction> txs = {}) {
  Block block;
  block.header.prev_hash = parent;
  block.header.timestamp = timestamp;
  block.header.target = tree.NextTarget(parent);
  block.miner = miner;
  block.reward = tree.RewardAt(tree.HeightOf(parent) + 1);
  block.txs = std::move(txs);
  block.header.merkle_root = block.ComputeMerkleRoot();
  return block;
}

TEST(MempoolTest, AddAndSelectByFee) {
  Mempool pool;
  EXPECT_TRUE(pool.Add(Tx("a", 1)));
  EXPECT_TRUE(pool.Add(Tx("b", 5)));
  EXPECT_TRUE(pool.Add(Tx("c", 3)));
  EXPECT_FALSE(pool.Add(Tx("a", 1)));  // Duplicate.
  auto picked = pool.Select(2);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].payload, "b");
  EXPECT_EQ(picked[1].payload, "c");
}

TEST(MempoolTest, ConfirmationRemovesFromPending) {
  Mempool pool;
  Transaction tx = Tx("pay");
  pool.Add(tx);
  BlockTree tree(TestChain());
  Block block = MakeBlock(tree, crypto::Digest{}, 0, 10, {tx});
  ASSERT_TRUE(tree.AddBlock(block).ok());
  pool.SyncWithChain(tree);
  EXPECT_TRUE(pool.IsConfirmed(tx.Hash()));
  EXPECT_FALSE(pool.IsPending(tx.Hash()));
  EXPECT_EQ(pool.pending_count(), 0u);
}

// The deck's fork figure: "transactions in this block are aborted /
// resubmitted" — a reorg returns the orphaned block's transactions to the
// pool.
TEST(MempoolTest, ReorgResubmitsAbandonedTransactions) {
  Mempool pool;
  Transaction tx = Tx("reorged-out");
  pool.Add(tx);
  BlockTree tree(TestChain());

  // Branch A includes the transaction.
  Block a1 = MakeBlock(tree, crypto::Digest{}, 1, 10, {tx});
  ASSERT_TRUE(tree.AddBlock(a1).ok());
  pool.SyncWithChain(tree);
  EXPECT_TRUE(pool.IsConfirmed(tx.Hash()));

  // Branch B (without the transaction) overtakes.
  Block b1 = MakeBlock(tree, crypto::Digest{}, 2, 10);
  ASSERT_TRUE(tree.AddBlock(b1).ok());
  Block b2 = MakeBlock(tree, b1.Hash(), 2, 20);
  ASSERT_TRUE(tree.AddBlock(b2).ok());
  pool.SyncWithChain(tree);

  EXPECT_FALSE(pool.IsConfirmed(tx.Hash()));
  EXPECT_TRUE(pool.IsPending(tx.Hash()));  // Aborted, awaiting re-mining.
  EXPECT_EQ(pool.resubmissions(), 1);
}

TEST(MempoolTest, ReconfirmationAfterResubmission) {
  Mempool pool;
  Transaction tx = Tx("eventually-confirmed");
  pool.Add(tx);
  BlockTree tree(TestChain());
  Block a1 = MakeBlock(tree, crypto::Digest{}, 1, 10, {tx});
  ASSERT_TRUE(tree.AddBlock(a1).ok());
  pool.SyncWithChain(tree);
  Block b1 = MakeBlock(tree, crypto::Digest{}, 2, 10);
  Block b2 = MakeBlock(tree, b1.Hash(), 2, 20);
  ASSERT_TRUE(tree.AddBlock(b1).ok());
  ASSERT_TRUE(tree.AddBlock(b2).ok());
  pool.SyncWithChain(tree);
  ASSERT_TRUE(pool.IsPending(tx.Hash()));
  // A later block on the B-branch re-mines it.
  Block b3 = MakeBlock(tree, b2.Hash(), 2, 30, {tx});
  ASSERT_TRUE(tree.AddBlock(b3).ok());
  pool.SyncWithChain(tree);
  EXPECT_TRUE(pool.IsConfirmed(tx.Hash()));
  EXPECT_FALSE(pool.IsPending(tx.Hash()));
}

// End-to-end: transactions submitted at one miner get gossiped, mined,
// and confirmed at every miner.
TEST(MempoolTest, TransactionsFlowThroughMiningNetwork) {
  sim::NetworkOptions net;
  net.min_delay = 100 * kMillisecond;
  net.max_delay = 500 * kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(3).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  MinerNetworkParams params;
  params.chain = TestChain();
  params.chain.block_interval_secs = 30;
  params.initial_hash_total = 3;
  std::vector<Miner*> miners;
  for (int i = 0; i < 3; ++i) {
    miners.push_back(sim.Spawn<Miner>(&params, 3, 1.0));
  }
  sim.Start();

  std::vector<Transaction> txs;
  for (int i = 0; i < 5; ++i) txs.push_back(Tx("tx" + std::to_string(i), i));
  for (const Transaction& tx : txs) miners[0]->SubmitTransaction(tx);

  sim.RunFor(1800 * kSecond);  // ~60 blocks.
  for (Miner* m : miners) {
    for (const Transaction& tx : txs) {
      EXPECT_TRUE(m->mempool().IsConfirmed(tx.Hash()))
          << "miner " << m->id() << " tx " << tx.payload;
    }
  }
}

TEST(SelfishMinerTest, MinorityAttackerGainsNothing) {
  // At ~20% hash power (gamma ~ 0) selfish mining LOSES revenue.
  sim::NetworkOptions net;
  net.min_delay = 50 * kMillisecond;
  net.max_delay = 200 * kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(11).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  MinerNetworkParams params;
  params.chain = TestChain();
  params.chain.block_interval_secs = 60;
  params.initial_hash_total = 10;
  auto* attacker = sim.Spawn<SelfishMiner>(&params, 4, 2.0);  // 20%.
  std::vector<Miner*> honest;
  for (int i = 0; i < 3; ++i) {
    honest.push_back(sim.Spawn<Miner>(&params, 4, 8.0 / 3));
  }
  sim.Start();
  sim.RunFor(200000 * kSecond);
  auto rewards = honest[0]->tree().RewardsByMiner();
  int64_t total = 0;
  for (const auto& [m, r] : rewards) total += r;
  ASSERT_GT(total, 0);
  double share = static_cast<double>(rewards[attacker->id()]) / total;
  EXPECT_LT(share, 0.20) << "a 20% selfish miner should earn LESS than 20%";
  EXPECT_GT(attacker->blocks_withheld_total(), 0);
}

TEST(SelfishMinerTest, LargeAttackerProfitsAboveFairShare) {
  // At 45% hash power selfish mining beats honest mining decisively.
  sim::NetworkOptions net;
  net.min_delay = 50 * kMillisecond;
  net.max_delay = 200 * kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(13).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  MinerNetworkParams params;
  params.chain = TestChain();
  params.chain.block_interval_secs = 60;
  params.initial_hash_total = 20;
  auto* attacker = sim.Spawn<SelfishMiner>(&params, 4, 9.0);  // 45%.
  std::vector<Miner*> honest;
  for (int i = 0; i < 3; ++i) {
    honest.push_back(sim.Spawn<Miner>(&params, 4, 11.0 / 3));
  }
  sim.Start();
  sim.RunFor(200000 * kSecond);
  auto rewards = honest[0]->tree().RewardsByMiner();
  int64_t total = 0;
  for (const auto& [m, r] : rewards) total += r;
  ASSERT_GT(total, 0);
  double share = static_cast<double>(rewards[attacker->id()]) / total;
  EXPECT_GT(share, 0.48) << "a 45% selfish miner should beat its fair share";
}

TEST(SelfishMinerTest, HonestChainPrefixStillConverges) {
  sim::NetworkOptions net;
  net.min_delay = 50 * kMillisecond;
  net.max_delay = 200 * kMillisecond;
  auto sim_owner =
      sim::Simulation::Builder(17).Network(net).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  MinerNetworkParams params;
  params.chain = TestChain();
  params.chain.block_interval_secs = 60;
  params.initial_hash_total = 10;
  sim.Spawn<SelfishMiner>(&params, 4, 3.0);
  std::vector<Miner*> honest;
  for (int i = 0; i < 3; ++i) {
    honest.push_back(sim.Spawn<Miner>(&params, 4, 7.0 / 3));
  }
  sim.Start();
  sim.RunFor(30000 * kSecond);
  // The honest miners share a common prefix (the attack shifts revenue
  // but cannot split the honest view beyond the propagating tail).
  auto chain0 = honest[0]->tree().BestChain();
  for (Miner* m : honest) {
    auto chain = m->tree().BestChain();
    size_t overlap = std::min(chain.size(), chain0.size());
    for (size_t i = 0; i + 3 < overlap; ++i) {
      ASSERT_EQ(chain[i], chain0[i]) << "prefix diverges at " << i;
    }
  }
}

}  // namespace
}  // namespace consensus40::blockchain
