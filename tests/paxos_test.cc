#include <gtest/gtest.h>

#include <string>
#include <vector>
#include <memory>

#include "paxos/ballot.h"
#include "paxos/paxos.h"
#include "sim/simulation.h"

namespace consensus40::paxos {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(BallotTest, TotalOrder) {
  Ballot a{1, 1}, b{1, 2}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (Ballot{1, 1}));
  EXPECT_TRUE(Ballot{}.IsZero());
  EXPECT_EQ(Ballot::Successor({3, 7}, 2), (Ballot{4, 2}));
}

struct PaxosCluster {
  explicit PaxosCluster(int n, uint64_t seed = 1,
                        PaxosOptions base = PaxosOptions())
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {
    base.n = n;
    for (int i = 0; i < n; ++i) nodes.push_back(sim.Spawn<PaxosNode>(base));
    sim.Start();
  }

  bool AllDecided() const {
    for (const PaxosNode* node : nodes) {
      if (!sim.IsCrashed(node->id()) && !node->decided()) return false;
    }
    return true;
  }

  /// Returns the unique decided value; fails the test on disagreement.
  std::string DecidedValue() const {
    std::string value;
    for (const PaxosNode* node : nodes) {
      if (!node->decided()) continue;
      if (value.empty()) {
        value = *node->decided();
      } else {
        EXPECT_EQ(value, *node->decided()) << "agreement violated";
      }
    }
    EXPECT_FALSE(value.empty()) << "nothing decided";
    return value;
  }

  void ExpectNoViolations() const {
    for (const PaxosNode* node : nodes) {
      EXPECT_TRUE(node->violations().empty())
          << "node " << node->id() << ": " << node->violations()[0];
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<PaxosNode*> nodes;
};

TEST(PaxosTest, SingleProposerDecides) {
  PaxosCluster cluster(5);
  cluster.nodes[0]->Propose("v");
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                   5 * kSecond));
  EXPECT_EQ(cluster.DecidedValue(), "v");
  cluster.ExpectNoViolations();
}

TEST(PaxosTest, OnlyProposedValuesChosen) {
  PaxosCluster cluster(5);
  cluster.nodes[1]->Propose("a");
  cluster.nodes[3]->Propose("b");
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                   10 * kSecond));
  std::string v = cluster.DecidedValue();
  EXPECT_TRUE(v == "a" || v == "b") << v;
  cluster.ExpectNoViolations();
}

TEST(PaxosTest, ConcurrentProposersAgree) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PaxosCluster cluster(5, seed);
    for (int i = 0; i < 5; ++i) {
      cluster.nodes[i]->Propose("v" + std::to_string(i));
    }
    ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                     30 * kSecond))
        << "seed " << seed;
    cluster.DecidedValue();
    cluster.ExpectNoViolations();
  }
}

TEST(PaxosTest, ToleratesMinorityCrash) {
  PaxosCluster cluster(5);
  cluster.sim.Crash(3);
  cluster.sim.Crash(4);
  cluster.nodes[0]->Propose("survivor");
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        return cluster.nodes[0]->decided() && cluster.nodes[1]->decided() &&
               cluster.nodes[2]->decided();
      },
      10 * kSecond));
  EXPECT_EQ(cluster.DecidedValue(), "survivor");
}

TEST(PaxosTest, NoProgressWithoutQuorum) {
  PaxosCluster cluster(5);
  cluster.sim.Crash(2);
  cluster.sim.Crash(3);
  cluster.sim.Crash(4);
  cluster.nodes[0]->Propose("stuck");
  EXPECT_FALSE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                    3 * kSecond));
  EXPECT_FALSE(cluster.nodes[0]->decided());
}

// The deck's leader-crash figure: leader gets a value accepted by a majority
// then crashes; the new leader must recover v via AcceptNum/AcceptVal.
TEST(PaxosTest, NewLeaderRecoversChosenValue) {
  PaxosCluster cluster(5);
  cluster.nodes[0]->Propose("chosen-before-crash");
  // Run until a majority accepted the value (observe acceptor state).
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        int accepted = 0;
        for (const PaxosNode* node : cluster.nodes) {
          if (node->accept_val() &&
              *node->accept_val() == "chosen-before-crash") {
            ++accepted;
          }
        }
        return accepted >= 3;
      },
      5 * kSecond));
  cluster.sim.Crash(0);

  // A different proposer with a different value must still decide the
  // already-chosen value.
  cluster.nodes[1]->Propose("usurper");
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                   10 * kSecond));
  EXPECT_EQ(cluster.DecidedValue(), "chosen-before-crash");
  cluster.ExpectNoViolations();
}

// Stability: once decided, later proposals cannot change the value.
TEST(PaxosTest, DecisionIsStable) {
  PaxosCluster cluster(5);
  cluster.nodes[0]->Propose("first");
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                   5 * kSecond));
  cluster.nodes[4]->Propose("late");
  cluster.sim.RunFor(2 * kSecond);
  EXPECT_EQ(cluster.DecidedValue(), "first");
  cluster.ExpectNoViolations();
}

// Acceptor state survives crash+restart (stable storage); decision safety
// holds across restarts.
TEST(PaxosTest, AcceptorStateSurvivesRestart) {
  PaxosCluster cluster(5);
  cluster.nodes[0]->Propose("durable");
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        return cluster.nodes[1]->accept_val() &&
               cluster.nodes[2]->accept_val();
      },
      5 * kSecond));
  cluster.sim.Crash(1);
  cluster.sim.Crash(2);
  cluster.sim.RunFor(100 * kMillisecond);
  cluster.sim.Restart(1);
  cluster.sim.Restart(2);
  EXPECT_TRUE(cluster.nodes[1]->accept_val() ||
              cluster.nodes[2]->accept_val());
  cluster.nodes[3]->Propose("challenger");
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                   10 * kSecond));
  EXPECT_EQ(cluster.DecidedValue(), "durable");
}

// The promised ballot is stable storage too, not just the accepted pair.
// An acceptor that forgot its promise across a restart could re-join a
// lower ballot it had already promised away, letting a preempted proposer
// finish phase 2 behind the new proposer's back.
TEST(PaxosTest, PromisedBallotSurvivesRestart) {
  PaxosCluster cluster(5);
  cluster.nodes[0]->Propose("original");
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] { return !cluster.nodes[2]->promised().IsZero(); }, 5 * kSecond));
  Ballot promised_before = cluster.nodes[2]->promised();
  Ballot accept_before = cluster.nodes[2]->accept_num();
  cluster.sim.Crash(2);
  cluster.sim.RunFor(100 * kMillisecond);
  cluster.sim.Restart(2);
  EXPECT_FALSE(cluster.nodes[2]->promised() < promised_before);
  EXPECT_EQ(cluster.nodes[2]->accept_num(), accept_before);
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                   10 * kSecond));
  EXPECT_EQ(cluster.DecidedValue(), "original");
  cluster.ExpectNoViolations();
}

// The deck's livelock figure: with deterministic zero backoff and slow
// accept messages, two dueling proposers preempt each other forever.
TEST(PaxosLivenessTest, DuelingProposersLivelock) {
  PaxosOptions opts;
  opts.randomized_backoff = false;
  opts.retry_delay = 0;
  PaxosCluster cluster(5, 1, opts);
  // Control-plane messages fast (1ms), accepts slow (3ms): each proposer's
  // re-prepare always lands between the other's promise and accept.
  cluster.sim.SetDelayFn([](const sim::Envelope& e) -> sim::Duration {
    if (std::string(e.msg->TypeName()) == "accept") return 3 * kMillisecond;
    if (e.from == e.to) return 0;
    return 1 * kMillisecond;
  });
  cluster.nodes[0]->Propose("x");
  cluster.sim.ScheduleAfter(2500, [&] { cluster.nodes[4]->Propose("y"); });
  EXPECT_FALSE(
      cluster.sim.RunUntil([&] { return cluster.AllDecided(); }, 2 * kSecond));
  // Both proposers kept re-preparing.
  EXPECT_GT(cluster.nodes[0]->prepare_attempts(), 50);
  EXPECT_GT(cluster.nodes[4]->prepare_attempts(), 50);
  cluster.ExpectNoViolations();  // Livelock is a liveness, not safety, issue.
}

// The deck's fix: "randomized delay before restarting" restores progress
// under the exact same adversarial delays.
TEST(PaxosLivenessTest, RandomizedBackoffBreaksLivelock) {
  PaxosOptions opts;
  opts.randomized_backoff = true;
  opts.retry_delay = 5 * kMillisecond;
  PaxosCluster cluster(5, 1, opts);
  cluster.sim.SetDelayFn([](const sim::Envelope& e) -> sim::Duration {
    if (std::string(e.msg->TypeName()) == "accept") return 3 * kMillisecond;
    if (e.from == e.to) return 0;
    return 1 * kMillisecond;
  });
  cluster.nodes[0]->Propose("x");
  cluster.sim.ScheduleAfter(2500, [&] { cluster.nodes[4]->Propose("y"); });
  EXPECT_TRUE(
      cluster.sim.RunUntil([&] { return cluster.AllDecided(); }, 30 * kSecond));
  cluster.DecidedValue();
  cluster.ExpectNoViolations();
}

// Flexible Paxos via unequal quorums: q1=4, q2=2 on n=5 (q1+q2>n) is safe.
TEST(FlexiblePaxosTest, SmallReplicationQuorumStaysSafe) {
  PaxosOptions opts;
  opts.q1 = 4;
  opts.q2 = 2;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    PaxosCluster cluster(5, seed, opts);
    cluster.nodes[0]->Propose("a");
    cluster.nodes[1]->Propose("b");
    ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                     30 * kSecond))
        << seed;
    cluster.DecidedValue();
    cluster.ExpectNoViolations();
  }
}

// Live grid quorums (Flexible Paxos's set-structured example): on a 2x3
// grid, phase 1 needs one full COLUMN (2 nodes) and phase 2 one full ROW
// (3 nodes) — neither is a majority of 6, yet every column meets every row.
TEST(FlexiblePaxosTest, GridQuorumsDecideAndStaySafe) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    core::GridQuorum grid(2, 3);  // ids: r*3+c.
    PaxosOptions opts;
    opts.quorum_system = &grid;
    PaxosCluster cluster(6, seed, opts);
    cluster.nodes[0]->Propose("grid-a");
    cluster.nodes[5]->Propose("grid-b");
    ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                     60 * kSecond))
        << "seed " << seed;
    cluster.DecidedValue();
    cluster.ExpectNoViolations();
  }
}

// Grid liveness boundary: a replication quorum needs one complete row, so
// one crash per row stalls phase 2 (while a threshold system with q2=3
// would have survived). Fault tolerance is shaped, not just sized.
TEST(FlexiblePaxosTest, GridStallsWithoutACompleteRow) {
  core::GridQuorum grid(2, 3);
  PaxosOptions opts;
  opts.quorum_system = &grid;
  PaxosCluster cluster(6, 1, opts);
  cluster.sim.Crash(1);  // Row 0 = {0,1,2} broken.
  cluster.sim.Crash(4);  // Row 1 = {3,4,5} broken.
  cluster.nodes[0]->Propose("stuck");
  EXPECT_FALSE(cluster.sim.RunUntil([&] { return cluster.AllDecided(); },
                                    5 * kSecond));
}

// Demonstration (negative control): non-intersecting quorums (q1+q2<=n) can
// decide two different values — exactly why Flexible Paxos requires
// Q1 x Q2 intersection.
TEST(FlexiblePaxosTest, NonIntersectingQuorumsViolateSafety) {
  PaxosOptions opts;
  opts.q1 = 2;
  opts.q2 = 2;  // q1+q2 = 4 <= n = 5: unsafe configuration.
  bool saw_divergence = false;
  for (uint64_t seed = 1; seed <= 40 && !saw_divergence; ++seed) {
    PaxosCluster cluster(5, seed, opts);
    // Partition so each proposer reaches a disjoint pair of acceptors.
    cluster.sim.Partition({{0, 1}, {3, 4}, {2}});
    cluster.nodes[0]->Propose("left");
    cluster.nodes[4]->Propose("right");
    cluster.sim.RunFor(3 * kSecond);
    std::set<std::string> decided;
    for (const PaxosNode* node : cluster.nodes) {
      if (node->decided()) decided.insert(*node->decided());
    }
    if (decided.size() > 1) saw_divergence = true;
  }
  EXPECT_TRUE(saw_divergence)
      << "expected at least one run to decide two values";
}

}  // namespace
}  // namespace consensus40::paxos
