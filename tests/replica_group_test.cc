// Tests for the consensus::ReplicaGroup facade and registry
// (src/consensus/), the Simulation::Builder construction path, and the
// Raft read-index read exposed through the group Read path. The
// round-trip test runs against EVERY registered protocol, so a protocol
// added to the registry is covered here with no new test code.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "consensus/replica_group.h"
#include "paxos/multi_paxos.h"
#include "raft/raft.h"
#include "sim/simulation.h"
#include "smr/command.h"

namespace consensus40::consensus {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(ReplicaGroupRegistryTest, BuiltinsAreRegistered) {
  std::vector<std::string> names = RegisteredGroupProtocols();
  EXPECT_NE(std::find(names.begin(), names.end(), "raft"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "multi_paxos"),
            names.end());
  EXPECT_EQ(MakeGroup("no_such_protocol"), nullptr);
}

TEST(ReplicaGroupRegistryTest, CustomFactoryRoundTrips) {
  RegisterGroupProtocol("raft_alias", [] { return NewRaftGroup(); });
  std::vector<std::string> names = RegisteredGroupProtocols();
  EXPECT_NE(std::find(names.begin(), names.end(), "raft_alias"),
            names.end());
  std::unique_ptr<ReplicaGroup> group = MakeGroup("raft_alias");
  ASSERT_NE(group, nullptr);
  EXPECT_STREQ(group->protocol(), "raft");  // The alias resolves to Raft.
}

/// Drives one registry-built group through writes and a linearizable
/// read, then checks client-visible results and replica agreement.
void RoundTrip(const std::string& name) {
  SCOPED_TRACE("protocol: " + name);
  std::unique_ptr<ReplicaGroup> group = MakeGroup(name);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(std::string(group->protocol()), name);

  GroupClient* client = nullptr;
  auto sim = sim::Simulation::Builder(42)
                 .Setup([&](sim::Simulation& s) {
                   group->Create(&s, 3);
                   client = s.Spawn<GroupClient>(group.get());
                 })
                 .Build();
  ASSERT_EQ(group->members().size(), 3u);

  std::map<uint64_t, std::string> results;
  client->SetCallback([&](uint64_t seq, const std::string& result, bool) {
    results[seq] = result;
  });
  sim->RunFor(500 * kMillisecond);  // Leader election settles.

  // The client serializes transmission, so the whole batch queues here.
  client->Submit("INC x");
  client->Submit("INC x");
  uint64_t last_write = client->Submit("INC x");
  uint64_t read = client->Read("x");
  ASSERT_TRUE(sim->RunUntil([&] { return results.count(read) > 0; },
                            sim->now() + 30 * kSecond));
  EXPECT_EQ(results[last_write], "3");
  EXPECT_EQ(results[read], "3");  // Linearizable: all prior INCs visible.

  // A leader hint, when present, names a member.
  sim::NodeId hint = group->LeaderHint();
  if (hint != sim::kInvalidNode) {
    EXPECT_NE(std::find(group->members().begin(), group->members().end(),
                        hint),
              group->members().end());
  }

  // Replica agreement: committed prefixes are pairwise consistent, and
  // all three INCs are committed somewhere.
  sim->RunFor(1 * kSecond);  // Let replication fan out.
  std::vector<std::vector<smr::Command>> prefixes;
  for (int i = 0; i < 3; ++i) prefixes.push_back(group->CommittedPrefix(i));
  size_t longest = 0;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    longest = std::max(longest, prefixes[i].size());
    for (size_t j = i + 1; j < prefixes.size(); ++j) {
      size_t common = std::min(prefixes[i].size(), prefixes[j].size());
      for (size_t k = 0; k < common; ++k) {
        EXPECT_EQ(prefixes[i][k], prefixes[j][k])
            << "replicas " << i << " and " << j << " diverge at " << k;
      }
    }
  }
  EXPECT_GE(longest, 3u);
  EXPECT_TRUE(group->Violations().empty());

  if (name == "raft") {
    // Raft's dedicated read path (read-index): the read must NOT appear
    // in the replicated log — it was served by leadership confirmation,
    // not by a consensus round.
    for (const auto& prefix : prefixes) {
      for (const smr::Command& cmd : prefix) {
        EXPECT_NE(cmd.op.rfind("GET", 0), 0u)
            << "raft read went through the log: " << cmd.ToString();
      }
    }
  } else if (name == "multi_paxos") {
    // The default Read path routes through the log as a GET command.
    bool saw_get = false;
    for (const auto& prefix : prefixes) {
      for (const smr::Command& cmd : prefix) {
        saw_get |= cmd.op.rfind("GET", 0) == 0;
      }
    }
    EXPECT_TRUE(saw_get);
  }
}

TEST(ReplicaGroupTest, RoundTripEveryRegisteredProtocol) {
  for (const std::string& name : RegisteredGroupProtocols()) {
    if (name == "raft_alias") continue;  // Registered by the test above.
    RoundTrip(name);
  }
}

TEST(ReplicaGroupTest, RaftReadIndexServesReadsWithoutLogEntries) {
  std::unique_ptr<ReplicaGroup> group = NewRaftGroup();
  GroupClient* client = nullptr;
  auto sim = sim::Simulation::Builder(7)
                 .Setup([&](sim::Simulation& s) {
                   group->Create(&s, 3);
                   client = s.Spawn<GroupClient>(group.get());
                 })
                 .Build();
  std::map<uint64_t, std::string> results;
  client->SetCallback([&](uint64_t seq, const std::string& result, bool) {
    results[seq] = result;
  });
  sim->RunFor(500 * kMillisecond);
  client->Submit("PUT a 1");
  uint64_t r1 = client->Read("a");
  uint64_t r2 = client->Read("missing");
  ASSERT_TRUE(sim->RunUntil([&] { return results.count(r2) > 0; },
                            sim->now() + 30 * kSecond));
  EXPECT_EQ(results[r1], "1");
  EXPECT_EQ(results[r2], "NIL");

  // The replicas themselves confirm the reads went through read-index.
  uint64_t reads_served = 0;
  for (sim::NodeId id : group->members()) {
    auto* replica = dynamic_cast<raft::RaftReplica*>(sim->process(id));
    ASSERT_NE(replica, nullptr);
    reads_served += replica->reads_served();
  }
  EXPECT_EQ(reads_served, 2u);
}

// Regression for the stale-leader retry stall: a client with a deep
// pending queue keeps following the group's LeaderHint, which points at
// the crashed leader until a successor is elected. The fixed client
// distrusts the hint after a retry fires and rotates across the other
// members (skipping the target that just timed out), so the queue
// drains promptly after failover instead of hammering the corpse.
TEST(GroupClientTest, DeepQueueDrainsAfterLeaderCrash) {
  std::unique_ptr<ReplicaGroup> group = NewRaftGroup();
  GroupClient* client = nullptr;
  auto sim = sim::Simulation::Builder(11)
                 .Setup([&](sim::Simulation& s) {
                   group->Create(&s, 3);
                   client = s.Spawn<GroupClient>(group.get());
                 })
                 .Build();
  int completed = 0;
  client->SetCallback([&](uint64_t, const std::string&, bool) { ++completed; });
  sim->RunFor(500 * kMillisecond);
  for (int i = 0; i < 12; ++i) client->Submit("INC x");
  ASSERT_TRUE(
      sim->RunUntil([&] { return completed >= 3; }, sim->now() + 30 * kSecond));

  sim::NodeId leader = group->LeaderHint();
  ASSERT_NE(leader, sim::kInvalidNode);
  sim->Crash(leader);
  // The remaining ~9 operations must complete within a handful of
  // election + retry rounds — a stalled client blows well past this.
  ASSERT_TRUE(
      sim->RunUntil([&] { return completed >= 12; }, sim->now() + 30 * kSecond));

  sim->Restart(leader);
  sim->RunFor(2 * kSecond);
  // Exactly-once despite the retries crossing the failover: twelve INCs
  // leave the counter at exactly 12 on every live replica.
  for (sim::NodeId id : group->members()) {
    auto* replica = dynamic_cast<raft::RaftReplica*>(sim->process(id));
    ASSERT_NE(replica, nullptr);
    auto v = replica->kv().Get("x");
    ASSERT_TRUE(v.has_value()) << "replica " << id;
    EXPECT_EQ(*v, "12") << "replica " << id;
  }
  EXPECT_TRUE(group->Violations().empty());
}

// The windowed client against a snapshotting group: a follower that
// crashes, misses enough committed entries for the leader to truncate
// them away, and restarts must be caught up by snapshot install — and
// the window's out-of-order arrivals must still execute exactly once
// (dedup sessions travel inside the snapshot).
TEST(GroupClientTest, WindowedClientExactlyOnceAcrossSnapshotInstall) {
  constexpr int kOps = 40;
  std::unique_ptr<ReplicaGroup> group = NewRaftGroup();
  GroupTuning tuning;
  tuning.snapshot_threshold = 8;
  group->Configure(tuning);
  GroupClient* client = nullptr;
  auto sim = sim::Simulation::Builder(5)
                 .Setup([&](sim::Simulation& s) {
                   group->Create(&s, 3);
                   client = s.Spawn<GroupClient>(
                       group.get(), 300 * kMillisecond, /*window=*/8);
                 })
                 .Build();
  std::vector<std::string> results;
  client->SetCallback(
      [&](uint64_t, const std::string& result, bool) {
        results.push_back(result);
      });
  sim->RunFor(500 * kMillisecond);

  sim::NodeId leader = group->LeaderHint();
  ASSERT_NE(leader, sim::kInvalidNode);
  sim::NodeId follower = sim::kInvalidNode;
  for (sim::NodeId id : group->members()) {
    if (id != leader) follower = id;
  }
  sim->Crash(follower);

  for (int i = 0; i < kOps; ++i) client->Submit("INC x");
  ASSERT_TRUE(sim->RunUntil(
      [&] { return results.size() >= static_cast<size_t>(kOps); },
      sim->now() + 120 * kSecond));

  sim->Restart(follower);
  sim->RunFor(3 * kSecond);  // Catch-up via snapshot + tail replication.

  // Exactly-once: the INC outputs are a permutation of 1..kOps (the
  // window reorders completion, not execution).
  std::vector<int> values;
  for (const std::string& r : results) values.push_back(std::stoi(r));
  std::sort(values.begin(), values.end());
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(values[static_cast<size_t>(i)], i + 1);
  }

  uint64_t installed = 0;
  auto* lagger = dynamic_cast<raft::RaftReplica*>(sim->process(follower));
  ASSERT_NE(lagger, nullptr);
  installed = static_cast<uint64_t>(lagger->snapshots_installed());
  EXPECT_GE(installed, 1u) << "follower caught up without a snapshot";
  auto v = lagger->kv().Get("x");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, std::to_string(kOps));
  EXPECT_TRUE(group->Violations().empty());
}

/// Batched + windowed round trip through the facade: correctness of the
/// leader-side batch path for one protocol, plus proof that batches were
/// actually cut (the tuning knob reaches the replicas).
void BatchedRoundTrip(const std::string& name) {
  SCOPED_TRACE("protocol: " + name);
  constexpr int kOps = 12;
  std::unique_ptr<ReplicaGroup> group = MakeGroup(name);
  ASSERT_NE(group, nullptr);
  GroupTuning tuning;
  tuning.batch_size = 4;
  tuning.batch_delay = 5 * kMillisecond;
  group->Configure(tuning);
  GroupClient* client = nullptr;
  auto sim = sim::Simulation::Builder(8)
                 .Setup([&](sim::Simulation& s) {
                   group->Create(&s, 3);
                   client = s.Spawn<GroupClient>(
                       group.get(), 300 * kMillisecond, /*window=*/4);
                 })
                 .Build();
  std::vector<std::string> results;
  client->SetCallback(
      [&](uint64_t, const std::string& result, bool) {
        results.push_back(result);
      });
  sim->RunFor(500 * kMillisecond);
  for (int i = 0; i < kOps; ++i) client->Submit("INC x");
  ASSERT_TRUE(sim->RunUntil(
      [&] { return results.size() >= static_cast<size_t>(kOps); },
      sim->now() + 60 * kSecond));

  std::vector<int> values;
  for (const std::string& r : results) values.push_back(std::stoi(r));
  std::sort(values.begin(), values.end());
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(values[static_cast<size_t>(i)], i + 1);
  }

  // With a 4-deep window feeding a 5ms linger, at least one multi-command
  // entry must have been cut (deterministic per seed).
  int batches = 0;
  for (sim::NodeId id : group->members()) {
    if (auto* r = dynamic_cast<raft::RaftReplica*>(sim->process(id))) {
      batches += r->batches_cut();
    } else if (auto* p =
                   dynamic_cast<paxos::MultiPaxosReplica*>(sim->process(id))) {
      batches += p->batches_cut();
    }
  }
  EXPECT_GT(batches, 0) << "batching tuning never reached the leader";
  EXPECT_TRUE(group->Violations().empty());
}

// End-to-end regression for the windowed reply-loss wrong-result bug: on
// a lossy network, a reply can vanish while later window seqs complete
// and get acked. The retry of the reply-lost op must receive ITS OWN
// cached result — the session floor only advances over client-acked
// seqs, so the exact result is retained however far the window slid.
// (The old floor_result scheme handed such a retry a neighbouring op's
// result, which shows up here as a duplicate INC value.)
TEST(GroupClientTest, WindowedRetriesSurviveReplyLoss) {
  constexpr int kOps = 50;
  std::unique_ptr<ReplicaGroup> group = NewRaftGroup();
  GroupTuning tuning;
  tuning.batch_size = 4;
  tuning.batch_delay = 2 * kMillisecond;
  group->Configure(tuning);
  GroupClient* client = nullptr;
  auto sim = sim::Simulation::Builder(13)
                 .DropRate(0.10)
                 .Setup([&](sim::Simulation& s) {
                   group->Create(&s, 3);
                   client = s.Spawn<GroupClient>(
                       group.get(), 300 * kMillisecond, /*window=*/4);
                 })
                 .Build();
  std::vector<std::string> results;
  client->SetCallback([&](uint64_t, const std::string& result, bool) {
    results.push_back(result);
  });
  sim->RunFor(2 * kSecond);  // Leader election under loss.
  for (int i = 0; i < kOps; ++i) client->Submit("INC x");
  ASSERT_TRUE(sim->RunUntil(
      [&] { return results.size() >= static_cast<size_t>(kOps); },
      sim->now() + 600 * kSecond));

  // Exactly-once AND exactly-own-result: the INC outputs must be a
  // permutation of 1..kOps — a duplicate value means some retry was
  // answered with another operation's cached result.
  std::vector<int> values;
  for (const std::string& r : results) values.push_back(std::stoi(r));
  std::sort(values.begin(), values.end());
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(values[static_cast<size_t>(i)], i + 1);
  }
  EXPECT_TRUE(group->Violations().empty());
}

TEST(GroupClientTest, BatchedRoundTripRaft) { BatchedRoundTrip("raft"); }

TEST(GroupClientTest, BatchedRoundTripMultiPaxos) {
  BatchedRoundTrip("multi_paxos");
}

TEST(SimulationBuilderTest, HooksRunInOrderAndFaultsFire) {
  std::vector<std::string> order;
  auto sim = sim::Simulation::Builder(1)
                 .Delay(1 * kMillisecond, 1 * kMillisecond)
                 .Setup([&](sim::Simulation&) { order.push_back("setup1"); })
                 .Setup([&](sim::Simulation&) { order.push_back("setup2"); })
                 .At(5 * kMillisecond,
                     [&](sim::Simulation&) { order.push_back("at5ms"); })
                 .Build();
  ASSERT_EQ(order.size(), 2u);  // At-hooks are scheduled, not run, here.
  EXPECT_EQ(order[0], "setup1");
  EXPECT_EQ(order[1], "setup2");
  EXPECT_EQ(sim->options().min_delay, 1 * kMillisecond);
  sim->RunFor(10 * kMillisecond);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], "at5ms");
}

TEST(SimulationBuilderTest, AutoStartOffDefersOnStart) {
  int started = 0;
  struct Probe : sim::Process {
    explicit Probe(int* counter) : counter_(counter) {}
    void OnStart() override { ++*counter_; }
    void OnMessage(sim::NodeId, const sim::Message&) override {}
    int* counter_;
  };
  auto sim = sim::Simulation::Builder(1)
                 .Setup([&](sim::Simulation& s) { s.Spawn<Probe>(&started); })
                 .AutoStart(false)
                 .Build();
  EXPECT_EQ(started, 0);
  sim->Start();
  EXPECT_EQ(started, 1);
}

}  // namespace
}  // namespace consensus40::consensus
