#include <gtest/gtest.h>
#include <memory>

#include "paxos/fast_paxos.h"
#include "sim/simulation.h"

namespace consensus40::paxos {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct FpCluster {
  explicit FpCluster(int n = 4, uint64_t seed = 1) : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {
    // Fixed 1ms delay makes message-delay counting exact.
    sim::NetworkOptions net = sim.options();
    net.min_delay = 1 * kMillisecond;
    net.max_delay = 1 * kMillisecond;
    sim.SetNetworkOptions(net);
    FastPaxosOptions opts;
    opts.n = n;
    for (int i = 0; i < n; ++i) {
      acceptors.push_back(sim.Spawn<FastPaxosAcceptor>(opts));
    }
  }

  FastPaxosClient* AddClient(const std::string& value,
                             sim::Duration send_at) {
    clients.push_back(sim.Spawn<FastPaxosClient>(
        static_cast<int>(acceptors.size()), value, send_at));
    return clients.back();
  }

  FastPaxosAcceptor* coordinator() { return acceptors[0]; }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<FastPaxosAcceptor*> acceptors;
  std::vector<FastPaxosClient*> clients;
};

// The deck's fast round: a single client reaches decision in 2 message
// delays (client->acceptors, acceptors->leader), vs Basic Paxos' 3.
TEST(FastPaxosTest, FastRoundTakesTwoMessageDelays) {
  FpCluster cluster;
  cluster.AddClient("v", 10 * kMillisecond);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] { return cluster.coordinator()->chosen().has_value(); },
      5 * kSecond));
  EXPECT_EQ(*cluster.coordinator()->chosen(), "v");
  // Client sent at t=10ms; with 1ms per hop the coordinator learns at 12ms.
  EXPECT_EQ(cluster.coordinator()->chosen_at(), 12 * kMillisecond);
  EXPECT_EQ(cluster.coordinator()->classic_rounds(), 0);
}

TEST(FastPaxosTest, AllAcceptorsLearn) {
  FpCluster cluster;
  cluster.AddClient("v", 10 * kMillisecond);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        for (const FastPaxosAcceptor* a : cluster.acceptors) {
          if (!a->chosen()) return false;
        }
        return true;
      },
      5 * kSecond));
  for (const FastPaxosAcceptor* a : cluster.acceptors) {
    EXPECT_EQ(*a->chosen(), "v");
  }
}

TEST(FastPaxosTest, ClientLearnsCommit) {
  FpCluster cluster;
  FastPaxosClient* client = cluster.AddClient("v", 10 * kMillisecond);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 5 * kSecond));
  // Commit reaches the client one hop after the coordinator chose (13ms).
  EXPECT_EQ(client->done_at(), 13 * kMillisecond);
}

// Collision: two clients racing; acceptors split; the coordinator falls
// back to a classic round and still decides exactly one of the two values.
TEST(FastPaxosTest, CollisionRecoversViaClassicRound) {
  bool saw_collision = false;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FpCluster cluster(4, seed);
    // Randomize per-acceptor arrival order by using a small delay spread.
    sim::NetworkOptions net = cluster.sim.options();
    net.min_delay = 1 * kMillisecond;
    net.max_delay = 3 * kMillisecond;
    cluster.sim.SetNetworkOptions(net);
    cluster.AddClient("A", 10 * kMillisecond);
    cluster.AddClient("B", 10 * kMillisecond);
    cluster.sim.Start();
    ASSERT_TRUE(cluster.sim.RunUntil(
        [&] { return cluster.coordinator()->chosen().has_value(); },
        10 * kSecond))
        << "seed " << seed;
    std::string v = *cluster.coordinator()->chosen();
    EXPECT_TRUE(v == "A" || v == "B");
    // Agreement across acceptors.
    cluster.sim.RunFor(1 * kSecond);
    for (const FastPaxosAcceptor* a : cluster.acceptors) {
      ASSERT_TRUE(a->chosen().has_value());
      EXPECT_EQ(*a->chosen(), v) << "seed " << seed;
    }
    if (cluster.coordinator()->classic_rounds() > 0) saw_collision = true;
  }
  EXPECT_TRUE(saw_collision) << "no seed produced a collision";
}

TEST(FastPaxosTest, NoCollisionWhenClientsSeparatedInTime) {
  FpCluster cluster;
  cluster.AddClient("first", 10 * kMillisecond);
  cluster.AddClient("second", 200 * kMillisecond);
  cluster.sim.Start();
  cluster.sim.RunFor(1 * kSecond);
  ASSERT_TRUE(cluster.coordinator()->chosen().has_value());
  EXPECT_EQ(*cluster.coordinator()->chosen(), "first");
  EXPECT_EQ(cluster.coordinator()->classic_rounds(), 0);
}

TEST(FastPaxosTest, ToleratesFCrashedAcceptors) {
  FpCluster cluster(7);  // f = 2.
  cluster.sim.Crash(5);
  cluster.sim.Crash(6);
  cluster.AddClient("v", 10 * kMillisecond);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] { return cluster.coordinator()->chosen().has_value(); },
      5 * kSecond));
  EXPECT_EQ(*cluster.coordinator()->chosen(), "v");
}

TEST(FastPaxosTest, LargerClusterStillTwoDelays) {
  FpCluster cluster(10);  // f = 3, fast quorum = 7.
  cluster.AddClient("v", 10 * kMillisecond);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] { return cluster.coordinator()->chosen().has_value(); },
      5 * kSecond));
  EXPECT_EQ(cluster.coordinator()->chosen_at(), 12 * kMillisecond);
}

}  // namespace
}  // namespace consensus40::paxos
