// Crossword protocol tests (src/paxos/crossword.{h,cc}): erasure-coded
// accepts with follower-side reconstruction, the adaptive assignment
// controller under the bandwidth model, stall escalation back to full
// copies, and recovery across leader crashes and snapshot installs.

#include "paxos/crossword.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "consensus/replica_group.h"
#include "sim/simulation.h"
#include "smr/command.h"

namespace consensus40::paxos {
namespace {

using consensus::GroupClient;
using consensus::GroupTuning;
using consensus::ReplicaGroup;
using sim::kMillisecond;
using sim::kSecond;

CrosswordReplica* Replica(sim::Simulation* sim, sim::NodeId id) {
  auto* r = dynamic_cast<CrosswordReplica*>(sim->process(id));
  EXPECT_NE(r, nullptr);
  return r;
}

/// Drives `ops` PUTs of `value_size`-byte values through a fresh group.
struct Harness {
  std::unique_ptr<ReplicaGroup> group;
  std::unique_ptr<sim::Simulation> sim;
  GroupClient* client = nullptr;
  std::vector<std::string> results;

  Harness(const std::string& protocol, int replicas, uint64_t seed,
          double bytes_per_ms = 0.0, GroupTuning tuning = {}) {
    group = consensus::MakeGroup(protocol);
    EXPECT_NE(group, nullptr);
    group->Configure(tuning);
    auto builder = sim::Simulation::Builder(seed).Setup(
        [&](sim::Simulation& s) {
          group->Create(&s, replicas);
          client = s.Spawn<GroupClient>(group.get());
        });
    if (bytes_per_ms > 0) builder.Bandwidth(bytes_per_ms);
    sim = builder.Build();
    client->SetCallback([this](uint64_t, const std::string& result, bool) {
      results.push_back(result);
    });
    sim->RunFor(500 * kMillisecond);  // Leader election settles.
  }

  bool RunOps(int ops, size_t value_size, sim::Duration limit = 30 * kSecond) {
    const size_t before = results.size();
    for (int i = 0; i < ops; ++i) {
      client->Submit("PUT k" + std::to_string(i % 4) + " " +
                     std::string(value_size, 'a' + static_cast<char>(i % 26)));
    }
    return sim->RunUntil(
        [&] { return results.size() >= before + static_cast<size_t>(ops); },
        sim->now() + limit);
  }

  CrosswordReplica* Leader() {
    sim::NodeId hint = group->LeaderHint();
    return hint == sim::kInvalidNode ? nullptr : Replica(sim.get(), hint);
  }

  void ExpectConsistentAndClean(size_t min_committed) {
    std::vector<std::vector<smr::Command>> prefixes;
    for (size_t i = 0; i < group->members().size(); ++i) {
      prefixes.push_back(group->CommittedPrefix(static_cast<int>(i)));
    }
    size_t longest = 0;
    for (size_t i = 0; i < prefixes.size(); ++i) {
      longest = std::max(longest, prefixes[i].size());
      for (size_t j = i + 1; j < prefixes.size(); ++j) {
        size_t common = std::min(prefixes[i].size(), prefixes[j].size());
        for (size_t k = 0; k < common; ++k) {
          ASSERT_EQ(prefixes[i][k], prefixes[j][k])
              << "replicas " << i << " and " << j << " diverge at " << k;
        }
      }
    }
    EXPECT_GE(longest, min_committed);
    EXPECT_TRUE(group->Violations().empty()) << group->Violations()[0];
  }
};

// Fixed single-shard assignment (RS-Paxos-like): every follower acks a
// one-shard window, commits happen at q2(1) = n, and every follower must
// apply via reconstruction — it never sees the full payload in an accept.
TEST(CrosswordTest, RsModeCommitsViaReconstruction) {
  Harness h("crossword_rs", 5, 21);
  ASSERT_TRUE(h.RunOps(8, 600));
  h.sim->RunFor(2 * kSecond);  // Let follower pulls finish.
  h.ExpectConsistentAndClean(8);
  int recon = 0;
  for (sim::NodeId id : h.group->members()) {
    CrosswordReplica* r = Replica(h.sim.get(), id);
    if (!r->IsLeader()) recon += r->reconstructions();
  }
  // Four followers, eight 600-byte entries: every follower slot applied
  // through shard assembly.
  EXPECT_GE(recon, 8);
}

// The adaptive controller starts at full copies and must slide to
// minimal shards once large payloads queue up the leader's finite-
// bandwidth egress port — and stay at full copies for small commands.
TEST(CrosswordTest, AdaptiveControllerSlidesWithPayloadAndBacklog) {
  {
    Harness h("crossword", 5, 33, /*bytes_per_ms=*/200.0);
    ASSERT_TRUE(h.RunOps(12, 4096, 120 * kSecond));
    CrosswordReplica* leader = h.Leader();
    ASSERT_NE(leader, nullptr);
    EXPECT_LT(leader->current_shards(), 3)
        << "controller never slid down under a congested egress";
    h.sim->RunFor(2 * kSecond);
    h.ExpectConsistentAndClean(12);
  }
  {
    Harness h("crossword", 5, 33, /*bytes_per_ms=*/200.0);
    ASSERT_TRUE(h.RunOps(12, 16, 120 * kSecond));
    CrosswordReplica* leader = h.Leader();
    ASSERT_NE(leader, nullptr);
    EXPECT_EQ(leader->current_shards(), 3)
        << "small commands must stay on the classic full-copy path";
    for (sim::NodeId id : h.group->members()) {
      EXPECT_EQ(Replica(h.sim.get(), id)->reconstructions(), 0);
    }
  }
}

// With two followers down, a one-shard round's q2(1) = 5 can never be
// met: the stall timer must escalate in-flight slots to full copies
// (q2 = majority = 3) so the group stays live.
TEST(CrosswordTest, StallEscalationKeepsShardedConfigLive) {
  Harness h("crossword_rs", 5, 55);
  // Crash two non-leader members.
  CrosswordReplica* leader = h.Leader();
  ASSERT_NE(leader, nullptr);
  int crashed = 0;
  for (sim::NodeId id : h.group->members()) {
    if (id != leader->id() && crashed < 2) {
      h.sim->Crash(id);
      ++crashed;
    }
  }
  ASSERT_TRUE(h.RunOps(4, 600, 60 * kSecond));
  leader = h.Leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(leader->escalations(), 0);
  h.ExpectConsistentAndClean(4);
}

// Leader crash with commits in flight: the new leader must reassemble
// possibly-chosen sharded entries from promise fragments (or prove them
// unchosen) and the client's retries must land exactly once.
TEST(CrosswordTest, LeaderCrashMidFlightRecoversExactlyOnce) {
  for (uint64_t seed : {3u, 17u, 29u, 41u}) {
    Harness h("crossword_rs", 5, seed);
    CrosswordReplica* leader = h.Leader();
    ASSERT_NE(leader, nullptr);
    const sim::NodeId old_leader = leader->id();
    // Queue INCs (queued client-side; the window trickles them out) and
    // kill the leader while they replicate.
    for (int i = 0; i < 6; ++i) h.client->Submit("INC x");
    h.sim->RunFor(6 * kMillisecond);  // Some accepts/commits in flight.
    h.sim->Crash(old_leader);
    ASSERT_TRUE(h.sim->RunUntil([&] { return h.results.size() >= 6; },
                                h.sim->now() + 60 * kSecond))
        << "seed " << seed;
    h.sim->Restart(old_leader);
    h.sim->RunFor(3 * kSecond);
    // Exactly-once: INC results are a permutation of 1..6.
    std::vector<int> values;
    for (const std::string& r : h.results) values.push_back(std::stoi(r));
    std::sort(values.begin(), values.end());
    for (int i = 0; i < 6; ++i) {
      ASSERT_EQ(values[static_cast<size_t>(i)], i + 1) << "seed " << seed;
    }
    h.ExpectConsistentAndClean(6);
  }
}

// A follower that misses checkpoint-truncated history is re-based by
// snapshot install, and keeps applying sharded entries afterwards.
TEST(CrosswordTest, SnapshotInstallRebasesLaggard) {
  GroupTuning tuning;
  tuning.snapshot_threshold = 8;
  Harness h("crossword_rs", 5, 77, 0.0, tuning);
  CrosswordReplica* leader = h.Leader();
  ASSERT_NE(leader, nullptr);
  sim::NodeId follower = sim::kInvalidNode;
  for (sim::NodeId id : h.group->members()) {
    if (id != leader->id()) follower = id;
  }
  h.sim->Crash(follower);
  ASSERT_TRUE(h.RunOps(30, 400, 120 * kSecond));
  h.sim->Restart(follower);
  h.sim->RunFor(5 * kSecond);
  CrosswordReplica* lagger = Replica(h.sim.get(), follower);
  EXPECT_GE(lagger->snapshots_installed(), 1)
      << "laggard caught up without a snapshot";
  h.ExpectConsistentAndClean(30);
}

// The reserved shard-frame client id must never leak into committed
// prefixes: followers reconstruct the ORIGINAL command before applying.
TEST(CrosswordTest, ShardFramesNeverLeakIntoCommittedState) {
  Harness h("crossword_rs", 5, 91);
  ASSERT_TRUE(h.RunOps(6, 700));
  h.sim->RunFor(2 * kSecond);
  for (size_t i = 0; i < h.group->members().size(); ++i) {
    for (const smr::Command& cmd :
         h.group->CommittedPrefix(static_cast<int>(i))) {
      EXPECT_NE(cmd.client, smr::kShardClient) << cmd.ToString();
    }
  }
  h.ExpectConsistentAndClean(6);
}

}  // namespace
}  // namespace consensus40::paxos
