// Tests for src/shard/routing.* and src/shard/reshard.*: the replicated
// range-routing table and the live shard move ladder (claim -> freeze ->
// drain -> copy -> flip -> unfreeze). The crash-at-every-phase-boundary
// loop is the one the subsystem exists for: every transition is a
// write-once record in the decision group, so a restarted (memoryless)
// mover finishes any interrupted move exactly once.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "shard/reshard.h"
#include "shard/routing.h"
#include "shard/shard.h"
#include "shard/workload.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::shard {
namespace {

using sim::kMillisecond;
using sim::kSecond;

constexpr uint64_t kHalf = 1ull << 63;  // Initial shard-0 / shard-1 boundary.

// ---------------------------------------------------------------------------
// RoutingTable units
// ---------------------------------------------------------------------------

TEST(RoutingTableTest, InitialSplitsTheSpaceEvenly) {
  RoutingTable t = RoutingTable::Initial(2);
  EXPECT_EQ(t.epoch(), 1u);
  ASSERT_EQ(t.entries().size(), 2u);
  EXPECT_EQ(t.GroupFor(0), 0);
  EXPECT_EQ(t.GroupFor(kHalf - 1), 0);
  EXPECT_EQ(t.GroupFor(kHalf), 1);
  EXPECT_EQ(t.GroupFor(~0ull), 1);
}

TEST(RoutingTableTest, ApplyMoveSplitsARange) {
  RoutingTable t = RoutingTable::Initial(2);
  // Move the top half of shard 0's range to a spare group 2: a split.
  t.ApplyMove(1ull << 62, kHalf, 2);
  EXPECT_EQ(t.epoch(), 2u);
  ASSERT_EQ(t.entries().size(), 3u);
  EXPECT_EQ(t.GroupFor(0), 0);
  EXPECT_EQ(t.GroupFor(1ull << 62), 2);
  EXPECT_EQ(t.GroupFor(kHalf - 1), 2);
  EXPECT_EQ(t.GroupFor(kHalf), 1);
}

TEST(RoutingTableTest, ApplyMoveToNeighbourOwnerIsAMerge) {
  RoutingTable t = RoutingTable::Initial(2);
  // Reassigning shard 0's whole range to shard 1 collapses the table to
  // a single entry (normalization merges adjacent same-group ranges).
  t.ApplyMove(0, kHalf, 1);
  EXPECT_EQ(t.epoch(), 2u);
  ASSERT_EQ(t.entries().size(), 1u);
  EXPECT_EQ(t.GroupFor(0), 1);
  EXPECT_EQ(t.GroupFor(~0ull), 1);
}

TEST(RoutingTableTest, ApplyMoveToTheEndOfTheSpace) {
  RoutingTable t = RoutingTable::Initial(2);
  t.ApplyMove(kHalf, 0, 2);  // hi == 0 means 2^64.
  ASSERT_EQ(t.entries().size(), 2u);
  EXPECT_EQ(t.GroupFor(kHalf - 1), 0);
  EXPECT_EQ(t.GroupFor(kHalf), 2);
  EXPECT_EQ(t.GroupFor(~0ull), 2);
}

TEST(RoutingTableTest, EncodeDecodeRoundTrip) {
  RoutingTable t = RoutingTable::Initial(3);
  t.ApplyMove(1ull << 62, 1ull << 63, 2);
  std::optional<RoutingTable> back = RoutingTable::Decode(t.Encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch(), t.epoch());
  ASSERT_EQ(back->entries().size(), t.entries().size());
  for (size_t i = 0; i < t.entries().size(); ++i) {
    EXPECT_EQ(back->entries()[i].lo, t.entries()[i].lo);
    EXPECT_EQ(back->entries()[i].group, t.entries()[i].group);
  }
}

TEST(RoutingTableTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(RoutingTable::Decode("").has_value());
  EXPECT_FALSE(RoutingTable::Decode("e2").has_value());         // No entries.
  EXPECT_FALSE(RoutingTable::Decode("e2|1:0").has_value());     // lo != 0.
  EXPECT_FALSE(RoutingTable::Decode("e2|0:0,0:1").has_value()); // Not rising.
  EXPECT_FALSE(RoutingTable::Decode("ex|0:0").has_value());     // Bad epoch.
  // Group tokens must parse in full and be non-negative — adopters index
  // per-group arrays with them.
  EXPECT_FALSE(RoutingTable::Decode("e2|0:junk").has_value());
  EXPECT_FALSE(RoutingTable::Decode("e2|0:").has_value());
  EXPECT_FALSE(RoutingTable::Decode("e2|0:-1").has_value());
  EXPECT_FALSE(RoutingTable::Decode("e2|0:1x").has_value());
  EXPECT_FALSE(RoutingTable::Decode("e2|0:99999999999999999999").has_value());
  EXPECT_TRUE(RoutingTable::Decode("e2|0:0,8000000000000000:1").has_value());
}

TEST(RoutingTableTest, WithinGroupsBoundsEveryEntry) {
  std::optional<RoutingTable> t =
      RoutingTable::Decode("e2|0:0,8000000000000000:7");
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->WithinGroups(8));
  EXPECT_FALSE(t->WithinGroups(7));  // Entry names a nonexistent group.
}

TEST(RoutingTableTest, MaybeAdoptIsEpochGated) {
  RoutingTable t = RoutingTable::Initial(2);
  RoutingTable newer = t;
  newer.ApplyMove(0, kHalf, 1);
  RoutingTable copy = t;
  EXPECT_TRUE(copy.MaybeAdopt(newer));
  EXPECT_EQ(copy.epoch(), 2u);
  EXPECT_FALSE(copy.MaybeAdopt(t));  // Older epoch never adopted.
  EXPECT_FALSE(copy.MaybeAdopt(newer));  // Equal epoch never adopted.
  EXPECT_EQ(copy.GroupFor(0), 1);
}

TEST(RoutingTableTest, SoleOwnerSeesRangeBoundaries) {
  RoutingTable t = RoutingTable::Initial(2);
  int owner = -1;
  EXPECT_TRUE(t.SoleOwner(0, kHalf, &owner));
  EXPECT_EQ(owner, 0);
  EXPECT_TRUE(t.SoleOwner(kHalf, 0, &owner));
  EXPECT_EQ(owner, 1);
  EXPECT_FALSE(t.SoleOwner(0, 0, &owner));       // Spans both shards.
  EXPECT_FALSE(t.SoleOwner(kHalf, kHalf, &owner));  // Empty range.
}

TEST(MoveIdTest, RoundTrip) {
  std::string id = MoveId(3, 0, kHalf);
  uint64_t epoch = 0, lo = 1, hi = 1;
  ASSERT_TRUE(ParseMoveId(id, &epoch, &lo, &hi));
  EXPECT_EQ(epoch, 3u);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, kHalf);
  EXPECT_FALSE(ParseMoveId("nonsense", &epoch, &lo, &hi));
  EXPECT_FALSE(ParseMoveId("e3.0", &epoch, &lo, &hi));
}

// ---------------------------------------------------------------------------
// Live-move integration
// ---------------------------------------------------------------------------

/// Minimal transaction client (same shape as shard_test's).
class TestClient : public sim::Process {
 public:
  explicit TestClient(sim::NodeId coordinator,
                      sim::Duration retry = 2 * kSecond)
      : coordinator_(coordinator), retry_(retry) {}

  void Begin(uint64_t tx_id, std::vector<TxOp> ops) {
    pending_[tx_id] = ops;
    Submit(tx_id);
  }

  void OnMessage(sim::NodeId, const sim::Message& msg) override {
    const auto* m = dynamic_cast<const TxOutcomeMsg*>(&msg);
    if (m == nullptr || pending_.count(m->tx_id) == 0) return;
    CancelTimer(timers_[m->tx_id]);
    outcomes[m->tx_id] = m->committed;
    pending_.erase(m->tx_id);
  }

  std::map<uint64_t, bool> outcomes;

 private:
  void Submit(uint64_t tx_id) {
    Send(coordinator_, std::make_shared<BeginTxMsg>(tx_id, pending_[tx_id]));
    timers_[tx_id] = SetTimer(retry_, [this, tx_id] {
      if (pending_.count(tx_id)) Submit(tx_id);
    });
  }

  sim::NodeId coordinator_;
  sim::Duration retry_;
  std::map<uint64_t, std::vector<TxOp>> pending_;
  std::map<uint64_t, uint64_t> timers_;
};

smr::KvStore ReplayGroup(const consensus::ReplicaGroup* group) {
  smr::KvStore kv;
  smr::DedupingExecutor dedup;
  for (const smr::Command& cmd : group->CommittedPrefix(0)) {
    dedup.Apply(&kv, cmd);
  }
  return kv;
}

struct ReshardFixture {
  explicit ReshardFixture(uint64_t seed,
                          ShardOptions options = DefaultOptions()) {
    ssm = std::make_unique<ShardedStateMachine>(options);
    sim = sim::Simulation::Builder(seed)
              .Setup([this](sim::Simulation& s) { ssm->Build(&s); })
              .AutoStart(false)
              .Build();
    client = sim->Spawn<TestClient>(ssm->coordinator_id());
    sim->Start();
    sim->RunFor(500 * kMillisecond);  // Leader elections.
  }

  static ShardOptions DefaultOptions() {
    ShardOptions so;  // 2 shards x 3 replicas + 3 decision replicas.
    so.spare_groups = 1;
    return so;
  }

  /// The whole-initial-range-of-shard-0 move to the spare group.
  static MoveSpec Shard0ToSpare() {
    MoveSpec spec;
    spec.lo = 0;
    spec.hi = kHalf;
    spec.to = 2;
    return spec;
  }

  /// Runs until the mover reports `n` completed moves.
  bool RunUntilMovesDone(int n, sim::Duration budget = 10 * kSecond) {
    ShardMover* mover = ssm->mover();
    return sim->RunUntil([mover, n] { return mover->moves_done() >= n; },
                         sim->now() + budget);
  }

  /// Begins tx_id writing `value` to `key` and waits for the outcome.
  bool CommitSync(uint64_t tx_id, const std::string& key,
                  const std::string& value) {
    client->Begin(tx_id, {TxOp{key, value}});
    if (!sim->RunUntil(
            [this, tx_id] { return client->outcomes.count(tx_id) > 0; },
            sim->now() + 5 * kSecond)) {
      return false;
    }
    return client->outcomes.at(tx_id);
  }

  std::unique_ptr<ShardedStateMachine> ssm;
  std::unique_ptr<sim::Simulation> sim;
  TestClient* client = nullptr;
};

TEST(ReshardTest, LiveMoveHappyPath) {
  ReshardFixture f(21);
  std::string key = f.ssm->KeyForShard(0, 0);
  ASSERT_TRUE(f.CommitSync(1, key, "before-move"));

  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  ASSERT_TRUE(f.RunUntilMovesDone(1));
  f.sim->RunFor(1 * kSecond);  // Let replication settle.

  // The mover's adopted table routes the range to the spare group.
  EXPECT_EQ(f.ssm->mover()->table().epoch(), 2u);
  EXPECT_EQ(f.ssm->mover()->table().GroupFor(0), 2);

  // Data followed the range: the destination group holds the pre-move
  // write, the source group fences the key behind the flip epoch.
  smr::KvStore dest = ReplayGroup(f.ssm->shard_group(2));
  EXPECT_EQ(dest.Get(key).value_or("NIL"), "before-move");
  smr::KvStore source = ReplayGroup(f.ssm->shard_group(0));
  ASSERT_TRUE(source.MovedEpoch(key).has_value());
  EXPECT_EQ(*source.MovedEpoch(key), 2u);

  // The decision group carries the full write-once move record trail.
  std::string id = MoveId(1, 0, kHalf);
  smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
  EXPECT_EQ(decisions.Get(MoveClaimKey(id)).value_or(""), "0,2");
  EXPECT_TRUE(decisions.Get(MovePhaseKey(id, "frozen")).has_value());
  EXPECT_TRUE(decisions.Get(MovePhaseKey(id, "drained")).has_value());
  EXPECT_TRUE(decisions.Get(MovePhaseKey(id, "flipped")).has_value());
  EXPECT_TRUE(decisions.Get(MovePhaseKey(id, "done")).has_value());
  std::optional<RoutingTable> flipped =
      RoutingTable::Decode(decisions.Get(RoutingTable::RtKey(2)).value_or(""));
  ASSERT_TRUE(flipped.has_value());
  EXPECT_EQ(flipped->GroupFor(0), 2);

  // New transactions on the moved range commit at the new owner (the
  // first attempt bounces through a coordinator redirect-abort).
  uint64_t tx = 2;
  while (!f.CommitSync(tx, key, "after-move")) ++tx;
  f.sim->RunFor(1 * kSecond);
  EXPECT_EQ(ReplayGroup(f.ssm->shard_group(2)).Get(key).value_or("NIL"),
            "after-move");
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ReshardTest, SplitMovesHalfARangeToTheSpare) {
  ReshardFixture f(22);
  MoveSpec spec;
  spec.lo = 1ull << 62;
  spec.hi = kHalf;
  spec.to = 2;
  ASSERT_TRUE(f.ssm->mover()->StartMove(spec));
  ASSERT_TRUE(f.RunUntilMovesDone(1));

  const RoutingTable& t = f.ssm->mover()->table();
  EXPECT_EQ(t.epoch(), 2u);
  ASSERT_EQ(t.entries().size(), 3u);
  EXPECT_EQ(t.GroupFor(0), 0);
  EXPECT_EQ(t.GroupFor(1ull << 62), 2);
  EXPECT_EQ(t.GroupFor(kHalf), 1);
  EXPECT_TRUE(f.ssm->Violations().empty());
}

TEST(ReshardTest, MergeCollapsesAdjacentRangesOfOneOwner) {
  ReshardFixture f(23);
  MoveSpec spec;
  spec.lo = 0;
  spec.hi = kHalf;
  spec.to = 1;  // Shard 1 already owns [2^63, 2^64): this is a merge.
  ASSERT_TRUE(f.ssm->mover()->StartMove(spec));
  ASSERT_TRUE(f.RunUntilMovesDone(1));

  const RoutingTable& t = f.ssm->mover()->table();
  EXPECT_EQ(t.epoch(), 2u);
  ASSERT_EQ(t.entries().size(), 1u);
  EXPECT_EQ(t.GroupFor(0), 1);
  EXPECT_TRUE(f.ssm->Violations().empty());
}

// A -> B -> A round trip: the range must SERVE at A again. A's fence
// from the outbound move is stamped epoch 2; the returning INSTALL's
// ownership record (epoch 3) outranks it. Without that, every op on the
// range bounces "MOVED 2" forever while clients' tables route them
// straight back to A — a permanent livelock.
TEST(ReshardTest, RoundTripMoveBackToOriginalOwnerServesAgain) {
  ReshardFixture f(41);
  std::string key = f.ssm->KeyForShard(0, 0);
  ASSERT_TRUE(f.CommitSync(1, key, "v1"));

  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  ASSERT_TRUE(f.RunUntilMovesDone(1));
  MoveSpec back;  // The same range, straight back to group 0.
  back.lo = 0;
  back.hi = kHalf;
  back.to = 0;
  ASSERT_TRUE(f.ssm->mover()->StartMove(back));
  ASSERT_TRUE(f.RunUntilMovesDone(2));
  f.sim->RunFor(1 * kSecond);

  EXPECT_EQ(f.ssm->mover()->table().epoch(), 3u);
  EXPECT_EQ(f.ssm->mover()->table().GroupFor(0), 0);

  // The returning owner's stale fence is outranked: the range is served,
  // not bounced, and the data followed it both ways.
  smr::KvStore source = ReplayGroup(f.ssm->shard_group(0));
  EXPECT_FALSE(source.MovedEpoch(key).has_value());
  EXPECT_EQ(source.Get(key).value_or("NIL"), "v1");

  // New transactions on the range commit at A again.
  uint64_t tx = 2;
  while (!f.CommitSync(tx, key, "v2")) {
    ASSERT_LT(tx, 10u);
    ++tx;
  }
  f.sim->RunFor(1 * kSecond);
  EXPECT_EQ(ReplayGroup(f.ssm->shard_group(0)).Get(key).value_or("NIL"),
            "v2");
  EXPECT_TRUE(f.ssm->Violations().empty());
}

// A mover that loses the flip's SETNX race to a DIFFERENT same-epoch
// table stands down — and must force-feed the established table to the
// destination TM, which it taught its losing table pre-flip. Plain
// adoption is epoch-gated, so without the forced install the TM would
// keep accepting writes for a range the authoritative table assigns
// elsewhere.
TEST(ReshardTest, FlipStandDownForceTeachesTheDestinationTm) {
  ReshardFixture f(43);
  // Plant the epoch-2 table before the mover flips, as a competing
  // (winning) mover would have published it: everything belongs to 1.
  RoutingTable established = f.ssm->InitialTable();
  established.ApplyMove(0, kHalf, 1);
  consensus::GroupClient* decider = f.sim->Spawn<consensus::GroupClient>(
      f.ssm->decision_group(), 300 * kMillisecond, 1);
  f.sim->Start();
  bool planted = false;
  decider->SetCallback([&planted](uint64_t, const std::string& result, bool) {
    planted = result == "OK";
  });
  decider->Submit("SETNX " + RoutingTable::RtKey(2) + " " +
                  established.Encode());
  ASSERT_TRUE(f.sim->RunUntil([&planted] { return planted; },
                              f.sim->now() + 5 * kSecond));

  // The shard0 -> spare move reaches the flip, loses the race, and
  // stands down (recorded as a rejection).
  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  ASSERT_TRUE(f.sim->RunUntil(
      [&] { return f.ssm->mover()->moves_rejected() >= 1; },
      f.sim->now() + 10 * kSecond));
  f.sim->RunFor(1 * kSecond);

  EXPECT_EQ(f.ssm->mover()->moves_done(), 0);
  EXPECT_EQ(f.ssm->tx_manager(2)->table().epoch(), 2u);
  EXPECT_EQ(f.ssm->tx_manager(2)->table().GroupFor(0), 1);
  EXPECT_EQ(f.ssm->mover()->table().GroupFor(0), 1);
}

TEST(ReshardTest, SecondMoveOfSameRangeAfterCompletionIsRejected) {
  ReshardFixture f(24);
  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  // Queue the identical request behind the active move: when it runs,
  // the range is already owned by the destination — invalid, rejected.
  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  ASSERT_TRUE(f.RunUntilMovesDone(1));
  ASSERT_TRUE(f.sim->RunUntil(
      [&] { return f.ssm->mover()->moves_rejected() >= 1; },
      f.sim->now() + 5 * kSecond));
  EXPECT_EQ(f.ssm->mover()->moves_done(), 1);
  EXPECT_EQ(f.ssm->mover()->table().epoch(), 2u);
}

TEST(ReshardTest, DifferentMoveOfClaimedRangeIsRejectedByWriteOnceRecord) {
  ReshardFixture f(25);
  // Forge a competing claim for the same (epoch, range) with a DIFFERENT
  // destination, as a second mover would have written it.
  consensus::GroupClient* decider = f.sim->Spawn<consensus::GroupClient>(
      f.ssm->decision_group(), 300 * kMillisecond, 1);
  f.sim->Start();
  bool claimed = false;
  decider->SetCallback([&claimed](uint64_t, const std::string& result, bool) {
    claimed = result == "OK";
  });
  decider->Submit("SETNX " + MoveClaimKey(MoveId(1, 0, kHalf)) + " 0,1");
  ASSERT_TRUE(
      f.sim->RunUntil([&claimed] { return claimed; }, f.sim->now() + 5 * kSecond));

  // Our mover now proposes shard0 -> spare for the same range: the
  // write-once claim record returns the established "0,1" spec and the
  // move is rejected without touching any data.
  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  ASSERT_TRUE(f.sim->RunUntil(
      [&] { return f.ssm->mover()->moves_rejected() >= 1; },
      f.sim->now() + 5 * kSecond));
  EXPECT_EQ(f.ssm->mover()->moves_done(), 0);
  EXPECT_EQ(f.ssm->mover()->table().epoch(), 1u);
}

// The headline test: crash the mover at EVERY phase boundary of the
// ladder, restart it, and require the move to complete exactly once with
// the data intact — driven purely by the write-once records (plus the
// client-side re-request for crashes before the claim committed).
TEST(ReshardTest, MoverCrashAtEveryPhaseBoundaryStillCompletesExactlyOnce) {
  for (int step = static_cast<int>(ShardMover::Step::kClaim);
       step <= static_cast<int>(ShardMover::Step::kUnfreeze); ++step) {
    SCOPED_TRACE("crash at step " + std::to_string(step));
    ReshardFixture f(100 + static_cast<uint64_t>(step));
    std::string key = f.ssm->KeyForShard(0, 0);
    ASSERT_TRUE(f.CommitSync(1, key, "payload"));

    MoveSpec spec = ReshardFixture::Shard0ToSpare();
    ShardMover* mover = f.ssm->mover();
    ASSERT_TRUE(mover->StartMove(spec));
    ASSERT_TRUE(f.sim->RunUntil(
        [mover, step] { return mover->max_step_reached() >= step; },
        f.sim->now() + 5 * kSecond))
        << "ladder never reached step " << step;
    f.sim->Crash(f.ssm->mover_id());
    f.sim->RunFor(700 * kMillisecond);
    f.sim->Restart(f.ssm->mover_id());

    // Recovery: the restarted mover resumes from the active-move hint or
    // a TM nudge; a crash before the claim record committed forgets the
    // request entirely, so the "client" re-requests it.
    for (int i = 0; i < 20 && mover->moves_done() == 0; ++i) {
      f.sim->RunFor(500 * kMillisecond);
      if (!mover->crashed() && mover->idle() && mover->moves_done() == 0) {
        mover->StartMove(spec);
      }
    }
    ASSERT_GE(mover->moves_done(), 1) << "move never completed";
    f.sim->RunFor(1 * kSecond);

    // Exactly once: one flip (epoch 2, no higher), data present at the
    // destination, fence at the source.
    smr::KvStore decisions = ReplayGroup(f.ssm->decision_group());
    EXPECT_TRUE(decisions.Get(RoutingTable::RtKey(2)).has_value());
    EXPECT_FALSE(decisions.Get(RoutingTable::RtKey(3)).has_value());
    EXPECT_EQ(ReplayGroup(f.ssm->shard_group(2)).Get(key).value_or("NIL"),
              "payload");
    EXPECT_TRUE(ReplayGroup(f.ssm->shard_group(0)).MovedEpoch(key).has_value());
    EXPECT_TRUE(f.ssm->Violations().empty());
  }
}

// A resume AFTER the flip must skip the copy: the destination is live
// and taking writes, and a re-copied snapshot would clobber them.
TEST(ReshardTest, PostFlipResumeDoesNotClobberNewOwnerWrites) {
  ReshardFixture f(31);
  std::string key = f.ssm->KeyForShard(0, 0);
  ASSERT_TRUE(f.CommitSync(1, key, "old"));

  ShardMover* mover = f.ssm->mover();
  ASSERT_TRUE(mover->StartMove(ReshardFixture::Shard0ToSpare()));
  ASSERT_TRUE(f.sim->RunUntil(
      [mover] {
        return mover->max_step_reached() >=
               static_cast<int>(ShardMover::Step::kUnfreeze);
      },
      f.sim->now() + 5 * kSecond));
  f.sim->Crash(f.ssm->mover_id());

  // The flip is committed, so the new owner serves the range (after the
  // client's redirect-retry dance) even with the mover dead.
  uint64_t tx = 2;
  while (!f.CommitSync(tx, key, "new")) {
    ASSERT_LT(tx, 10u);
    ++tx;
  }
  f.sim->RunFor(500 * kMillisecond);
  EXPECT_EQ(ReplayGroup(f.ssm->shard_group(2)).Get(key).value_or("NIL"),
            "new");

  // The restarted mover resumes, sees the flipped marker, and goes
  // straight to unfreeze — no re-copy of the stale "old" snapshot.
  f.sim->Restart(f.ssm->mover_id());
  ASSERT_TRUE(f.RunUntilMovesDone(1));
  f.sim->RunFor(1 * kSecond);
  EXPECT_EQ(ReplayGroup(f.ssm->shard_group(2)).Get(key).value_or("NIL"),
            "new");
  EXPECT_TRUE(f.ssm->Violations().empty());
}

// Transactions racing the move: every outcome the client saw must match
// the data — committed writes exist at the range's authoritative owner,
// aborted writes exist nowhere. Disjoint per-transaction keys make the
// assertion exact.
TEST(ReshardTest, MoveUnderTransactionTrafficLosesNothing) {
  ReshardFixture f(33);
  constexpr int kTxs = 24;
  std::map<uint64_t, TxOp> writes;
  // Wave 1: transactions in flight when the move starts.
  for (uint64_t tx = 1; tx <= kTxs / 2; ++tx) {
    int i = static_cast<int>(tx) - 1;
    TxOp op{f.ssm->KeyForShard(0, i), "v" + std::to_string(tx)};
    writes[tx] = op;
    f.client->Begin(tx, {op});
  }
  f.sim->RunFor(100 * kMillisecond);
  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  // Wave 2: transactions arriving mid-move (frozen range: these abort or
  // commit at the new owner after redirects — never split, never lost).
  for (uint64_t tx = kTxs / 2 + 1; tx <= kTxs; ++tx) {
    int i = static_cast<int>(tx) - 1;
    TxOp op{f.ssm->KeyForShard(0, i), "v" + std::to_string(tx)};
    writes[tx] = op;
    f.client->Begin(tx, {op});
    f.sim->RunFor(50 * kMillisecond);
  }
  ASSERT_TRUE(f.sim->RunUntil(
      [&] {
        return f.client->outcomes.size() >= kTxs &&
               f.ssm->mover()->moves_done() >= 1;
      },
      f.sim->now() + 15 * kSecond));
  f.sim->RunFor(2 * kSecond);  // Drain all replication.

  smr::KvStore source = ReplayGroup(f.ssm->shard_group(0));
  smr::KvStore dest = ReplayGroup(f.ssm->shard_group(2));
  int committed = 0, aborted = 0;
  for (const auto& [tx, op] : writes) {
    ASSERT_TRUE(f.client->outcomes.count(tx) > 0);
    bool at_source = source.Get(op.key).value_or("") == op.value;
    bool at_dest = dest.Get(op.key).value_or("") == op.value;
    if (f.client->outcomes.at(tx)) {
      ++committed;
      // Not lost: the write survives at the owner the range ended up at
      // (source writes were migrated, so they appear at dest too).
      EXPECT_TRUE(at_dest) << "tx " << tx << " committed but its write to "
                           << op.key << " is not at the new owner";
    } else {
      ++aborted;
      // No ghosts: an aborted transaction's write exists nowhere.
      EXPECT_FALSE(at_source || at_dest)
          << "tx " << tx << " aborted but its write to " << op.key
          << " is visible";
    }
  }
  // The traffic actually exercised the move: something committed, and
  // the move completed under load.
  EXPECT_GT(committed, 0);
  EXPECT_EQ(committed + aborted, kTxs);
  EXPECT_EQ(f.ssm->mover()->table().GroupFor(0), 2);
  EXPECT_TRUE(f.ssm->Violations().empty());
}

// PR 6's windowed dedup across the flip: a window-4 client INCrementing
// a counter in the moved range keeps exactly-once semantics through
// freeze, fence, and flip — retries of pre-fence INCs are answered from
// the dedup cache (their cached numeric result), post-fence INCs bounce
// with MOVED, and the final counter at the new owner equals the number
// of numeric replies the client consumed.
TEST(ReshardTest, WindowedIncsStayExactlyOnceAcrossTheMove) {
  ReshardFixture f(35);
  std::string key = f.ssm->KeyForShard(0, 0);

  consensus::GroupClient* inc = f.sim->Spawn<consensus::GroupClient>(
      f.ssm->shard_group(0), 300 * kMillisecond, 4);
  f.sim->Start();
  std::map<uint64_t, std::string> results;
  inc->SetCallback([&results](uint64_t seq, const std::string& result, bool) {
    results[seq] = result;
  });

  constexpr int kIncs = 30;
  int submitted = 0;
  for (; submitted < kIncs / 2; ++submitted) {
    inc->Submit("INC " + key);
    f.sim->RunFor(20 * kMillisecond);
  }
  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  for (; submitted < kIncs; ++submitted) {
    inc->Submit("INC " + key);
    f.sim->RunFor(20 * kMillisecond);
  }
  ASSERT_TRUE(f.RunUntilMovesDone(1));
  ASSERT_TRUE(f.sim->RunUntil(
      [&results] { return results.size() >= kIncs; },
      f.sim->now() + 10 * kSecond));
  f.sim->RunFor(1 * kSecond);

  int numeric = 0, moved = 0;
  for (const auto& [seq, result] : results) {
    if (result.compare(0, 6, "MOVED ") == 0) {
      ++moved;
    } else if (!result.empty() &&
               result.find_first_not_of("0123456789") == std::string::npos) {
      ++numeric;
    } else {
      ADD_FAILURE() << "seq " << seq << ": unexpected INC result \"" << result
                    << "\"";
    }
  }
  EXPECT_EQ(numeric + moved, kIncs);
  EXPECT_GT(numeric, 0);

  // Exactly-once: the migrated counter equals the successful INC count —
  // no pre-fence increment was double-applied by a windowed retry, none
  // was lost by the copy.
  smr::KvStore dest = ReplayGroup(f.ssm->shard_group(2));
  EXPECT_EQ(dest.Get(key).value_or("0"), std::to_string(numeric));
  EXPECT_TRUE(f.ssm->Violations().empty());
}

// The workload driver's routing view: reads bounced by the fence refetch
// the flipped table from the decision group and re-route; the full mixed
// load completes across the move with zero violations.
TEST(ReshardTest, WorkloadDriverFollowsTheMove) {
  ReshardFixture f(37);
  WorkloadOptions wo;
  wo.ops = 300;
  wo.concurrency = 6;
  wo.read_fraction = 0.5;
  wo.cross_shard_fraction = 0.3;
  wo.key_space = 120;
  wo.write_space = 60;
  WorkloadDriver* driver = SpawnWorkload(f.sim.get(), f.ssm.get(), wo);
  f.sim->Start();

  f.sim->RunFor(300 * kMillisecond);
  ASSERT_TRUE(f.ssm->mover()->StartMove(ReshardFixture::Shard0ToSpare()));
  ASSERT_TRUE(f.sim->RunUntil(
      [&] { return driver->done() && f.ssm->mover()->moves_done() >= 1; },
      f.sim->now() + 60 * kSecond));

  EXPECT_EQ(driver->stats().completed(), wo.ops);
  // The driver adopted the flipped table after a MOVED bounce.
  EXPECT_EQ(driver->table().epoch(), 2u);
  EXPECT_GE(driver->stats().moved, 1);
  EXPECT_GE(driver->stats().table_refreshes, 1);
  EXPECT_TRUE(f.ssm->Violations().empty());
}

}  // namespace
}  // namespace consensus40::shard
