#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "oracle/ct_consensus.h"
#include "oracle/failure_detector.h"
#include "sim/simulation.h"

namespace consensus40::oracle {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(HeartbeatDetectorTest, SuspectsAfterTimeout) {
  HeartbeatDetector fd;
  fd.Touch(1, 0);
  EXPECT_FALSE(fd.Suspects(1, 40 * kMillisecond));
  EXPECT_TRUE(fd.Suspects(1, 60 * kMillisecond));
}

TEST(HeartbeatDetectorTest, NeverHeardIsNotSuspected) {
  HeartbeatDetector fd;
  EXPECT_FALSE(fd.Suspects(7, 10 * kSecond));
}

TEST(HeartbeatDetectorTest, FalseSuspicionRaisesTimeoutPermanently) {
  HeartbeatDetector fd;
  fd.Touch(1, 0);
  EXPECT_TRUE(fd.Suspects(1, 60 * kMillisecond));
  fd.OnFalseSuspicion(1);
  EXPECT_FALSE(fd.Suspects(1, 60 * kMillisecond));  // Now 75ms of patience.
  EXPECT_TRUE(fd.Suspects(1, 100 * kMillisecond));
  EXPECT_EQ(fd.false_suspicions(), 1);
}

struct CtCluster {
  CtCluster(const std::vector<std::string>& inputs, uint64_t seed = 1) {
    sim = sim::Simulation::Builder(seed).AutoStart(false).Build();
    CtOptions opts;
    opts.n = static_cast<int>(inputs.size());
    for (const std::string& v : inputs) {
      nodes.push_back(sim->Spawn<CtNode>(opts, v));
    }
  }

  bool AllDecided() const {
    for (const CtNode* node : nodes) {
      if (!sim->IsCrashed(node->id()) && !node->decided()) return false;
    }
    return true;
  }

  std::string DecidedValue() const {
    std::string value;
    for (const CtNode* node : nodes) {
      if (!node->decided()) continue;
      if (value.empty()) {
        value = *node->decided();
      } else {
        EXPECT_EQ(value, *node->decided());
      }
    }
    EXPECT_FALSE(value.empty());
    return value;
  }

  std::unique_ptr<sim::Simulation> sim;
  std::vector<CtNode*> nodes;
};

TEST(CtConsensusTest, FaultFreeDecidesQuickly) {
  CtCluster cluster({"a", "b", "c", "d", "e"});
  cluster.sim->Start();
  ASSERT_TRUE(cluster.sim->RunUntil([&] { return cluster.AllDecided(); },
                                    30 * kSecond));
  std::string v = cluster.DecidedValue();
  EXPECT_TRUE(v == "a" || v == "b" || v == "c" || v == "d" || v == "e");
}

TEST(CtConsensusTest, CoordinatorCrashRotatesOn) {
  CtCluster cluster({"a", "b", "c", "d", "e"});
  cluster.sim->Crash(0);  // The round-0 coordinator is dead from the start.
  cluster.sim->Start();
  ASSERT_TRUE(cluster.sim->RunUntil([&] { return cluster.AllDecided(); },
                                    60 * kSecond));
  cluster.DecidedValue();
  // The detector did the unblocking: everyone moved past round 0.
  for (const CtNode* node : cluster.nodes) {
    if (cluster.sim->IsCrashed(node->id())) continue;
    EXPECT_GE(node->round(), 1);
  }
}

TEST(CtConsensusTest, ToleratesMinorityCrashesAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    CtCluster cluster({"a", "b", "c", "d", "e"}, seed);
    cluster.sim->Crash(1);
    cluster.sim->Crash(3);  // f = 2 < n/2.
    cluster.sim->Start();
    ASSERT_TRUE(cluster.sim->RunUntil([&] { return cluster.AllDecided(); },
                                      120 * kSecond))
        << "seed " << seed;
    cluster.DecidedValue();
  }
}

TEST(CtConsensusTest, MidRunCrashStillTerminates) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CtCluster cluster({"x", "y", "z"}, seed);
    cluster.sim->Start();
    cluster.sim->ScheduleAfter(5 * kMillisecond,
                               [&] { cluster.sim->Crash(0); });
    ASSERT_TRUE(cluster.sim->RunUntil([&] { return cluster.AllDecided(); },
                                      120 * kSecond))
        << "seed " << seed;
    cluster.DecidedValue();
  }
}

// Safety does not depend on the detector: with a hyper-aggressive timeout
// every suspicion is false, rounds churn, but the decided value stays
// unique (and the adaptive timeouts eventually calm down => termination).
TEST(CtConsensusTest, LousyDetectorHurtsOnlyLiveness) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    sim::NetworkOptions net;
    net.min_delay = 5 * kMillisecond;
    net.max_delay = 15 * kMillisecond;
    auto sim_owner =
        sim::Simulation::Builder(seed).Network(net).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    CtOptions opts;
    opts.n = 5;
    opts.detector.initial_timeout = 6 * kMillisecond;  // Far too jumpy.
    opts.detector.timeout_increment = 5 * kMillisecond;
    std::vector<CtNode*> nodes;
    for (int i = 0; i < 5; ++i) {
      nodes.push_back(sim.Spawn<CtNode>(opts, "v" + std::to_string(i)));
    }
    sim.Start();
    ASSERT_TRUE(sim.RunUntil(
        [&] {
          for (auto* n : nodes) {
            if (!n->decided()) return false;
          }
          return true;
        },
        240 * kSecond))
        << "seed " << seed;
    std::string v = *nodes[0]->decided();
    int false_suspicions = 0;
    for (auto* n : nodes) {
      EXPECT_EQ(*n->decided(), v);
      false_suspicions += n->false_suspicions();
    }
    // The jumpy detector did mis-fire, yet agreement held.
    EXPECT_GT(false_suspicions, 0) << "seed " << seed;
  }
}

TEST(CtConsensusTest, ValidityDecidedValueWasProposed) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    CtCluster cluster({"p", "q", "r"}, seed);
    cluster.sim->Start();
    ASSERT_TRUE(cluster.sim->RunUntil([&] { return cluster.AllDecided(); },
                                      60 * kSecond));
    std::string v = cluster.DecidedValue();
    EXPECT_TRUE(v == "p" || v == "q" || v == "r") << v;
  }
}

}  // namespace
}  // namespace consensus40::oracle
