// Cross-protocol property sweep: every state-machine-replication protocol
// in the library is subjected to the same randomized fault schedules
// (crashes, restarts, partitions at random times) across seeds, and must
// uphold the same two invariants:
//
//   SAFETY      — committed command sequences of correct replicas are
//                 prefixes of one another, and the closed-loop client's
//                 results are exactly 1..N (nothing lost, doubled, or
//                 reordered);
//   TERMINATION — once faults stop within the protocol's tolerance, the
//                 workload completes.
//
// The sweep is the repo's strongest evidence that the implementations are
// not merely demo-shaped: each protocol runs the same gauntlet.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "minbft/minbft.h"
#include "paxos/multi_paxos.h"
#include "pbft/pbft.h"
#include "raft/raft.h"
#include "sim/simulation.h"
#include "xft/xft.h"

namespace consensus40 {
namespace {

using sim::kMillisecond;
using sim::kSecond;

/// A protocol-under-test adapter: spawns a cluster + one client, exposes
/// progress and the committed sequences.
struct Adapter {
  std::string name;
  int n;                    ///< Cluster size.
  bool tolerates_restart;   ///< Protocol recovers crashed replicas.
  /// Builds the cluster into `sim` and returns accessors.
  std::function<void(sim::Simulation*, int ops)> build;
  std::function<int()> completed;
  std::function<bool()> done;
  std::function<std::vector<std::string>()> results;
  std::function<std::vector<std::vector<smr::Command>>()> committed;
};

// Shared per-run state (recreated for every test case).
struct Fixture {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<crypto::KeyRegistry> registry;
  std::unique_ptr<crypto::Usig> usig;
};

Adapter MultiPaxosAdapter(Fixture* fx) {
  Adapter a;
  a.name = "multi-paxos";
  a.n = 5;
  a.tolerates_restart = true;
  auto replicas = std::make_shared<std::vector<paxos::MultiPaxosReplica*>>();
  auto client = std::make_shared<paxos::MultiPaxosClient*>(nullptr);
  a.build = [fx, replicas, client](sim::Simulation* sim, int ops) {
    paxos::MultiPaxosOptions opts;
    opts.n = 5;
    for (int i = 0; i < 5; ++i) {
      replicas->push_back(sim->Spawn<paxos::MultiPaxosReplica>(opts));
    }
    *client = sim->Spawn<paxos::MultiPaxosClient>(5, ops);
    (void)fx;
  };
  a.completed = [client] { return (*client)->completed(); };
  a.done = [client] { return (*client)->done(); };
  a.results = [client] { return (*client)->results(); };
  a.committed = [replicas] {
    std::vector<std::vector<smr::Command>> out;
    for (auto* r : *replicas) out.push_back(r->log().CommittedPrefix());
    return out;
  };
  return a;
}

Adapter RaftAdapter(Fixture* fx) {
  Adapter a;
  a.name = "raft";
  a.n = 5;
  a.tolerates_restart = true;
  auto replicas = std::make_shared<std::vector<raft::RaftReplica*>>();
  auto client = std::make_shared<raft::RaftClient*>(nullptr);
  a.build = [fx, replicas, client](sim::Simulation* sim, int ops) {
    raft::RaftOptions opts;
    opts.n = 5;
    for (int i = 0; i < 5; ++i) {
      replicas->push_back(sim->Spawn<raft::RaftReplica>(opts));
    }
    *client = sim->Spawn<raft::RaftClient>(5, ops);
    (void)fx;
  };
  a.completed = [client] { return (*client)->completed(); };
  a.done = [client] { return (*client)->done(); };
  a.results = [client] { return (*client)->results(); };
  a.committed = [replicas] {
    std::vector<std::vector<smr::Command>> out;
    for (auto* r : *replicas) out.push_back(r->CommittedCommands());
    return out;
  };
  return a;
}

Adapter PbftAdapter(Fixture* fx) {
  Adapter a;
  a.name = "pbft";
  a.n = 4;
  a.tolerates_restart = true;  // Checkpoints + state transfer.
  auto replicas = std::make_shared<std::vector<pbft::PbftReplica*>>();
  auto client = std::make_shared<pbft::PbftClient*>(nullptr);
  a.build = [fx, replicas, client](sim::Simulation* sim, int ops) {
    pbft::PbftOptions opts;
    opts.n = 4;
    opts.checkpoint_interval = 4;  // Frequent checkpoints: fast catch-up.
    opts.registry = fx->registry.get();
    for (int i = 0; i < 4; ++i) {
      replicas->push_back(sim->Spawn<pbft::PbftReplica>(opts));
    }
    *client = sim->Spawn<pbft::PbftClient>(4, fx->registry.get(), ops);
  };
  a.completed = [client] { return (*client)->completed(); };
  a.done = [client] { return (*client)->done(); };
  a.results = [client] { return (*client)->results(); };
  a.committed = [replicas] {
    std::vector<std::vector<smr::Command>> out;
    for (auto* r : *replicas) out.push_back(r->executed_commands());
    return out;
  };
  return a;
}

Adapter MinBftAdapter(Fixture* fx) {
  Adapter a;
  a.name = "minbft";
  a.n = 3;
  a.tolerates_restart = false;
  auto replicas = std::make_shared<std::vector<minbft::MinBftReplica*>>();
  auto client = std::make_shared<minbft::MinBftClient*>(nullptr);
  a.build = [fx, replicas, client](sim::Simulation* sim, int ops) {
    minbft::MinBftOptions opts;
    opts.n = 3;
    opts.registry = fx->registry.get();
    opts.usig = fx->usig.get();
    for (int i = 0; i < 3; ++i) {
      replicas->push_back(sim->Spawn<minbft::MinBftReplica>(opts));
    }
    *client = sim->Spawn<minbft::MinBftClient>(3, fx->registry.get(), ops);
  };
  a.completed = [client] { return (*client)->completed(); };
  a.done = [client] { return (*client)->done(); };
  a.results = [client] { return (*client)->results(); };
  a.committed = [replicas] {
    std::vector<std::vector<smr::Command>> out;
    for (auto* r : *replicas) out.push_back(r->executed_commands());
    return out;
  };
  return a;
}

Adapter HotStuffAdapter(Fixture* fx) {
  Adapter a;
  a.name = "hotstuff";
  a.n = 4;
  a.tolerates_restart = false;
  auto replicas = std::make_shared<std::vector<hotstuff::HotStuffReplica*>>();
  auto client = std::make_shared<hotstuff::HotStuffClient*>(nullptr);
  a.build = [fx, replicas, client](sim::Simulation* sim, int ops) {
    hotstuff::HotStuffOptions opts;
    opts.n = 4;
    opts.registry = fx->registry.get();
    for (int i = 0; i < 4; ++i) {
      replicas->push_back(sim->Spawn<hotstuff::HotStuffReplica>(opts));
    }
    *client = sim->Spawn<hotstuff::HotStuffClient>(4, fx->registry.get(), ops);
  };
  a.completed = [client] { return (*client)->completed(); };
  a.done = [client] { return (*client)->done(); };
  a.results = [client] { return (*client)->results(); };
  a.committed = [replicas] {
    std::vector<std::vector<smr::Command>> out;
    for (auto* r : *replicas) out.push_back(r->executed_commands());
    return out;
  };
  return a;
}

Adapter XftAdapter(Fixture* fx) {
  Adapter a;
  a.name = "xft";
  a.n = 5;
  a.tolerates_restart = false;
  auto replicas = std::make_shared<std::vector<xft::XftReplica*>>();
  auto client = std::make_shared<xft::XftClient*>(nullptr);
  a.build = [fx, replicas, client](sim::Simulation* sim, int ops) {
    xft::XftOptions opts;
    opts.n = 5;
    opts.registry = fx->registry.get();
    for (int i = 0; i < 5; ++i) {
      replicas->push_back(sim->Spawn<xft::XftReplica>(opts));
    }
    *client = sim->Spawn<xft::XftClient>(5, fx->registry.get(), ops);
  };
  a.completed = [client] { return (*client)->completed(); };
  a.done = [client] { return (*client)->done(); };
  a.results = [client] { return (*client)->results(); };
  a.committed = [replicas] {
    std::vector<std::vector<smr::Command>> out;
    for (auto* r : *replicas) out.push_back(r->executed_commands());
    return out;
  };
  return a;
}

using AdapterFactory = Adapter (*)(Fixture*);

struct SweepCase {
  const char* label;
  AdapterFactory factory;
};

class ProtocolSweep
    : public ::testing::TestWithParam<std::tuple<SweepCase, uint64_t>> {};

void CheckPrefixes(const Adapter& adapter,
                   const std::vector<std::vector<smr::Command>>& committed) {
  for (size_t a = 0; a < committed.size(); ++a) {
    for (size_t b = a + 1; b < committed.size(); ++b) {
      size_t overlap = std::min(committed[a].size(), committed[b].size());
      for (size_t i = 0; i < overlap; ++i) {
        ASSERT_TRUE(committed[a][i] == committed[b][i])
            << adapter.name << ": replicas " << a << " and " << b
            << " diverge at " << i;
      }
    }
  }
}

void CheckResults(const Adapter& adapter,
                  const std::vector<std::string>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i], std::to_string(i + 1))
        << adapter.name << ": result " << i;
  }
}

// Gauntlet 1: one random crash (of a tolerated, non-restarting kind)
// mid-run.
TEST_P(ProtocolSweep, SingleRandomCrashMidRun) {
  auto [sweep_case, seed] = GetParam();
  Fixture fx;
  fx.sim = sim::Simulation::Builder(seed).AutoStart(false).Build();
  fx.registry = std::make_unique<crypto::KeyRegistry>(seed, 24);
  fx.usig = std::make_unique<crypto::Usig>(fx.registry.get());
  Adapter adapter = sweep_case.factory(&fx);

  const int kOps = 15;
  adapter.build(fx.sim.get(), kOps);
  fx.sim->Start();

  // Crash one random replica once the workload is under way. Every
  // protocol in the sweep tolerates one crash fault.
  Rng rng(seed * 31 + 7);
  int victim = static_cast<int>(rng.NextBounded(adapter.n));
  ASSERT_TRUE(fx.sim->RunUntil([&] { return adapter.completed() >= 4; },
                               240 * kSecond))
      << adapter.name;
  fx.sim->Crash(victim);

  ASSERT_TRUE(fx.sim->RunUntil([&] { return adapter.done(); },
                               600 * kSecond))
      << adapter.name << " stalled after crashing replica " << victim;
  CheckResults(adapter, adapter.results());
  CheckPrefixes(adapter, adapter.committed());
}

// Gauntlet 2: a transient full partition (every node isolated) that heals.
TEST_P(ProtocolSweep, TransientTotalPartition) {
  auto [sweep_case, seed] = GetParam();
  Fixture fx;
  fx.sim = sim::Simulation::Builder(seed + 1000).AutoStart(false).Build();
  fx.registry = std::make_unique<crypto::KeyRegistry>(seed + 1000, 24);
  fx.usig = std::make_unique<crypto::Usig>(fx.registry.get());
  Adapter adapter = sweep_case.factory(&fx);

  const int kOps = 12;
  adapter.build(fx.sim.get(), kOps);
  fx.sim->Start();
  ASSERT_TRUE(fx.sim->RunUntil([&] { return adapter.completed() >= 3; },
                               240 * kSecond))
      << adapter.name;
  // Isolate everyone (group per node) for 2 simulated seconds.
  std::vector<std::vector<sim::NodeId>> groups;
  for (int i = 0; i < adapter.n; ++i) groups.push_back({i});
  fx.sim->Partition(groups);
  fx.sim->RunFor(2 * kSecond);
  int frozen = adapter.completed();
  fx.sim->Heal();

  ASSERT_TRUE(fx.sim->RunUntil([&] { return adapter.done(); },
                               600 * kSecond))
      << adapter.name << " did not resume after healing (stuck at "
      << frozen << ")";
  CheckResults(adapter, adapter.results());
  CheckPrefixes(adapter, adapter.committed());
}

// Gauntlet 3: random message-delay turbulence (heavy jitter, no loss).
TEST_P(ProtocolSweep, HeavyDelayJitter) {
  auto [sweep_case, seed] = GetParam();
  Fixture fx;
  sim::NetworkOptions net;
  net.min_delay = 1 * kMillisecond;
  net.max_delay = 80 * kMillisecond;  // Heavy asynchrony vs ~100ms timers.
  fx.sim =
      sim::Simulation::Builder(seed + 2000).Network(net).AutoStart(false).Build();
  fx.registry = std::make_unique<crypto::KeyRegistry>(seed + 2000, 24);
  fx.usig = std::make_unique<crypto::Usig>(fx.registry.get());
  Adapter adapter = sweep_case.factory(&fx);

  const int kOps = 10;
  adapter.build(fx.sim.get(), kOps);
  fx.sim->Start();
  ASSERT_TRUE(fx.sim->RunUntil([&] { return adapter.done(); },
                               900 * kSecond))
      << adapter.name;
  CheckResults(adapter, adapter.results());
  CheckPrefixes(adapter, adapter.committed());
}

// Gauntlet 4 (crash-recovery protocols only): crash + restart churn.
TEST_P(ProtocolSweep, CrashRestartChurn) {
  auto [sweep_case, seed] = GetParam();
  Fixture fx;
  fx.sim = sim::Simulation::Builder(seed + 3000).AutoStart(false).Build();
  fx.registry = std::make_unique<crypto::KeyRegistry>(seed + 3000, 24);
  fx.usig = std::make_unique<crypto::Usig>(fx.registry.get());
  Adapter adapter = sweep_case.factory(&fx);
  if (!adapter.tolerates_restart) {
    GTEST_SKIP() << adapter.name << " has no state-transfer/recovery path";
  }

  const int kOps = 15;
  adapter.build(fx.sim.get(), kOps);
  fx.sim->Start();
  Rng rng(seed * 77 + 13);
  // Three rounds of: crash a random node, run, restart it, run.
  for (int round = 0; round < 3; ++round) {
    int victim = static_cast<int>(rng.NextBounded(adapter.n));
    fx.sim->RunFor(
        static_cast<sim::Duration>(rng.NextBounded(400)) * kMillisecond);
    fx.sim->Crash(victim);
    fx.sim->RunFor(
        static_cast<sim::Duration>(300 + rng.NextBounded(500)) *
        kMillisecond);
    fx.sim->Restart(victim);
  }
  ASSERT_TRUE(fx.sim->RunUntil([&] { return adapter.done(); },
                               900 * kSecond))
      << adapter.name;
  CheckResults(adapter, adapter.results());
  CheckPrefixes(adapter, adapter.committed());
}

constexpr SweepCase kCases[] = {
    {"multi_paxos", &MultiPaxosAdapter}, {"raft", &RaftAdapter},
    {"pbft", &PbftAdapter},              {"minbft", &MinBftAdapter},
    {"hotstuff", &HotStuffAdapter},      {"xft", &XftAdapter},
};

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<SweepCase, uint64_t>>& info) {
  return std::string(std::get<0>(info.param).label) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Gauntlet, ProtocolSweep,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    CaseName);

}  // namespace
}  // namespace consensus40
