#include <gtest/gtest.h>

#include <vector>
#include <memory>

#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "sim/simulation.h"

namespace consensus40::hotstuff {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct HsCluster {
  explicit HsCluster(int n, uint64_t seed = 1)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner), registry(seed, n + 8) {
    HotStuffOptions opts;
    opts.n = n;
    opts.registry = &registry;
    for (int i = 0; i < n; ++i) {
      replicas.push_back(sim.Spawn<HotStuffReplica>(opts));
    }
  }

  HotStuffClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(sim.Spawn<HotStuffClient>(
        static_cast<int>(replicas.size()), &registry, ops, key));
    return clients.back();
  }

  void CheckSafety() const {
    for (size_t a = 0; a < replicas.size(); ++a) {
      for (size_t b = a + 1; b < replicas.size(); ++b) {
        const auto& ca = replicas[a]->executed_commands();
        const auto& cb = replicas[b]->executed_commands();
        size_t overlap = std::min(ca.size(), cb.size());
        for (size_t i = 0; i < overlap; ++i) {
          ASSERT_TRUE(ca[i] == cb[i])
              << "replicas " << a << "," << b << " diverge at " << i;
        }
      }
    }
    for (const HotStuffReplica* r : replicas) {
      EXPECT_TRUE(r->violations().empty())
          << "replica " << r->id() << ": " << r->violations()[0];
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  crypto::KeyRegistry registry;
  std::vector<HotStuffReplica*> replicas;
  std::vector<HotStuffClient*> clients;
};

TEST(HotStuffTest, CommitsClientCommands) {
  HsCluster cluster(4);
  HotStuffClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  cluster.CheckSafety();
}

TEST(HotStuffTest, LeaderRotatesEveryBlock) {
  HsCluster cluster(4);
  HotStuffClient* client = cluster.AddClient(12);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  // Proposals came from several distinct replicas (view = leader rotation).
  int proposers = 0;
  for (const HotStuffReplica* r : cluster.replicas) {
    if (r->blocks_proposed() > 0) ++proposers;
  }
  EXPECT_GE(proposers, 3);
  cluster.CheckSafety();
}

TEST(HotStuffTest, ReplicasConverge) {
  HsCluster cluster(4);
  cluster.AddClient(8, "a");
  cluster.AddClient(8, "b");
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        for (const HotStuffClient* c : cluster.clients) {
          if (!c->done()) return false;
        }
        return true;
      },
      240 * kSecond));
  cluster.sim.RunFor(3 * kSecond);
  cluster.CheckSafety();
  for (const HotStuffReplica* r : cluster.replicas) {
    EXPECT_EQ(*r->kv().Get("a"), "8") << r->id();
    EXPECT_EQ(*r->kv().Get("b"), "8") << r->id();
  }
}

TEST(HotStuffTest, ToleratesFCrashes) {
  HsCluster cluster(4);
  HotStuffClient* client = cluster.AddClient(8);
  cluster.sim.Crash(2);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.CheckSafety();
}

TEST(HotStuffTest, CrashedLeaderSkippedByPacemaker) {
  HsCluster cluster(4);
  HotStuffClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   60 * kSecond));
  // Crash whoever leads next; timeouts must rotate past it.
  uint64_t v = cluster.replicas[0]->current_view();
  cluster.sim.Crash((v + 1) % 4);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.CheckSafety();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(HotStuffTest, MessageComplexityIsLinear) {
  // The deck's HotStuff headline: each all-to-all PBFT phase becomes
  // all-to-one + one-to-all.
  auto messages_per_command = [](int n) {
    HsCluster cluster(n);
    HotStuffClient* client = cluster.AddClient(10);
    cluster.sim.Start();
    cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond);
    EXPECT_TRUE(client->done()) << "n=" << n;
    uint64_t proto = cluster.sim.stats().sent_by_type.at("hs-proposal") +
                     cluster.sim.stats().sent_by_type.at("hs-vote");
    return proto / 10.0;
  };
  double at4 = messages_per_command(4);
  double at10 = messages_per_command(10);
  // Linear in n: ratio near 2.5, far below quadratic 6.25.
  EXPECT_LT(at10 / at4, 4.0);
}

TEST(HotStuffTest, PipelinePacksManyCommandsPerChain) {
  HsCluster cluster(4);
  // Eight concurrent closed-loop clients keep the pending queue full:
  // blocks batch several commands and the chained pipeline overlaps the
  // prepare/pre-commit/commit phases of consecutive blocks.
  for (int i = 0; i < 8; ++i) cluster.AddClient(5, "k" + std::to_string(i));
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        for (const HotStuffClient* c : cluster.clients) {
          if (!c->done()) return false;
        }
        return true;
      },
      240 * kSecond));
  cluster.CheckSafety();
  // 40 commands fit into well under one block per command.
  int total_blocks = 0;
  for (const HotStuffReplica* r : cluster.replicas) {
    total_blocks += r->blocks_proposed();
  }
  EXPECT_LT(total_blocks, 36);
  // And at least one block carried a real batch.
  size_t executed = cluster.replicas[0]->executed_commands().size();
  EXPECT_EQ(executed, 40u);
}

}  // namespace
}  // namespace consensus40::hotstuff
