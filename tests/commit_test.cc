#include <gtest/gtest.h>
#include <memory>

#include "commit/three_phase_commit.h"
#include "commit/two_phase_commit.h"
#include "sim/simulation.h"

namespace consensus40::commit {
namespace {

using sim::kMillisecond;
using sim::kSecond;

Transaction MakeTx(uint64_t id, const std::vector<TxOp>& ops) {
  Transaction tx;
  tx.tx_id = id;
  tx.ops = ops;
  return tx;
}

// ----------------------------------------------------------------------
// 2PC
// ----------------------------------------------------------------------

struct TwoPcWorld {
  explicit TwoPcWorld(int participants, uint64_t seed = 1) : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {
    for (int i = 0; i < participants; ++i) {
      cohorts.push_back(sim.Spawn<TwoPcParticipant>());
    }
    coordinator = sim.Spawn<TwoPcCoordinator>();
    sim.Start();
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<TwoPcParticipant*> cohorts;
  TwoPcCoordinator* coordinator;
};

TEST(TwoPcTest, AllYesCommits) {
  TwoPcWorld w(3);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil([&] { return w.coordinator->Finished(1); },
                             5 * kSecond));
  EXPECT_EQ(*w.coordinator->outcome(1), true);
  EXPECT_EQ(w.cohorts[0]->state(1), TxState::kCommitted);
  EXPECT_EQ(*w.cohorts[0]->kv().Get("a"), "1");
  EXPECT_EQ(*w.cohorts[1]->kv().Get("b"), "2");
  EXPECT_EQ(*w.cohorts[2]->kv().Get("c"), "3");
}

TEST(TwoPcTest, OneNoAbortsEverywhere) {
  TwoPcWorld w(3);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "FAIL"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return w.coordinator->outcome(1).has_value(); }, 5 * kSecond));
  EXPECT_EQ(*w.coordinator->outcome(1), false);
  w.sim.RunFor(1 * kSecond);
  // Atomicity: nobody applied anything.
  EXPECT_EQ(w.cohorts[0]->state(1), TxState::kAborted);
  EXPECT_EQ(w.cohorts[1]->state(1), TxState::kAborted);
  EXPECT_EQ(w.cohorts[2]->state(1), TxState::kAborted);
  EXPECT_FALSE(w.cohorts[0]->kv().Get("a").has_value());
  EXPECT_FALSE(w.cohorts[2]->kv().Get("c").has_value());
}

TEST(TwoPcTest, ParticipantCrashBeforeVoteAborts) {
  TwoPcWorld w(3);
  w.sim.Crash(1);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return w.coordinator->outcome(1).has_value(); }, 5 * kSecond));
  EXPECT_EQ(*w.coordinator->outcome(1), false);  // Vote timeout => abort.
}

// The deck's 2PC blocking property: coordinator crashes after collecting
// Yes votes but before broadcasting the decision; participants stay in the
// uncertainty window forever.
TEST(TwoPcTest, CoordinatorCrashBlocksParticipants) {
  TwoPcWorld w(3);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  // Let prepares reach the cohorts (they vote Yes), then kill the
  // coordinator before its decision can be computed/broadcast.
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        return w.cohorts[0]->state(1) == TxState::kPrepared &&
               w.cohorts[1]->state(1) == TxState::kPrepared &&
               w.cohorts[2]->state(1) == TxState::kPrepared;
      },
      5 * kSecond));
  w.sim.Crash(w.coordinator->id());
  w.sim.RunFor(10 * kSecond);
  // Blocked: still prepared, cannot commit or abort unilaterally.
  EXPECT_EQ(w.cohorts[0]->state(1), TxState::kPrepared);
  EXPECT_EQ(w.cohorts[1]->state(1), TxState::kPrepared);
  EXPECT_EQ(w.cohorts[2]->state(1), TxState::kPrepared);
}

TEST(TwoPcTest, SequentialTransactionsIndependent) {
  TwoPcWorld w(2);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 1"}}));
  ASSERT_TRUE(w.sim.RunUntil([&] { return w.coordinator->Finished(1); },
                             5 * kSecond));
  w.coordinator->Begin(MakeTx(2, {{0, "FAIL"}, {1, "PUT b 2"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return w.coordinator->outcome(2).has_value(); }, 5 * kSecond));
  EXPECT_TRUE(*w.coordinator->outcome(1));
  EXPECT_FALSE(*w.coordinator->outcome(2));
  w.sim.RunFor(1 * kSecond);
  EXPECT_EQ(*w.cohorts[1]->kv().Get("b"), "1");  // Second PUT never applied.
}

// ----------------------------------------------------------------------
// 3PC
// ----------------------------------------------------------------------

struct ThreePcWorld {
  explicit ThreePcWorld(int participants, uint64_t seed = 1,
                        ThreePcParticipant::Options opts =
                            ThreePcParticipant::Options())
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {
    for (int i = 0; i < participants; ++i) {
      cohorts.push_back(sim.Spawn<ThreePcParticipant>(opts));
    }
    coordinator = sim.Spawn<ThreePcCoordinator>();
    sim.Start();
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<ThreePcParticipant*> cohorts;
  ThreePcCoordinator* coordinator;
};

TEST(ThreePcTest, AllYesCommitsThroughThreePhases) {
  ThreePcWorld w(3);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        return w.cohorts[0]->state(1) == TxState::kCommitted &&
               w.cohorts[1]->state(1) == TxState::kCommitted &&
               w.cohorts[2]->state(1) == TxState::kCommitted;
      },
      5 * kSecond));
  EXPECT_EQ(*w.coordinator->outcome(1), true);
  EXPECT_EQ(*w.cohorts[0]->kv().Get("a"), "1");
}

TEST(ThreePcTest, NoVoteAborts) {
  ThreePcWorld w(3);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "FAIL"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return w.coordinator->outcome(1).has_value(); }, 5 * kSecond));
  EXPECT_FALSE(*w.coordinator->outcome(1));
  w.sim.RunFor(2 * kSecond);
  EXPECT_EQ(w.cohorts[0]->state(1), TxState::kAborted);
  EXPECT_EQ(w.cohorts[2]->state(1), TxState::kAborted);
}

// The headline: coordinator crashes in the same window that blocks 2PC —
// 3PC's termination protocol unblocks the cohorts (abort, since nobody
// pre-committed).
TEST(ThreePcTest, CoordinatorCrashBeforePreCommitTerminatesWithAbort) {
  ThreePcWorld w(3);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        return w.cohorts[0]->state(1) == TxState::kPrepared &&
               w.cohorts[1]->state(1) == TxState::kPrepared &&
               w.cohorts[2]->state(1) == TxState::kPrepared;
      },
      5 * kSecond));
  w.sim.Crash(w.coordinator->id());
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        for (const ThreePcParticipant* p : w.cohorts) {
          if (p->state(1) != TxState::kAborted) return false;
        }
        return true;
      },
      30 * kSecond))
      << "termination protocol did not unblock the cohorts";
  // No partial commit.
  EXPECT_FALSE(w.cohorts[0]->kv().Get("a").has_value());
}

// Coordinator crashes after pre-commit reached the cohorts: the decision
// was commit, and termination must finish the commit.
TEST(ThreePcTest, CoordinatorCrashAfterPreCommitTerminatesWithCommit) {
  ThreePcWorld w(3);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        return w.cohorts[0]->state(1) == TxState::kPreCommitted &&
               w.cohorts[1]->state(1) == TxState::kPreCommitted &&
               w.cohorts[2]->state(1) == TxState::kPreCommitted;
      },
      5 * kSecond));
  w.sim.Crash(w.coordinator->id());
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        for (const ThreePcParticipant* p : w.cohorts) {
          if (p->state(1) != TxState::kCommitted) return false;
        }
        return true;
      },
      30 * kSecond));
  EXPECT_EQ(*w.cohorts[0]->kv().Get("a"), "1");
  EXPECT_EQ(*w.cohorts[1]->kv().Get("b"), "2");
  EXPECT_EQ(*w.cohorts[2]->kv().Get("c"), "3");
}

// Mixed window: some cohorts pre-committed, others only prepared, then the
// coordinator dies. Termination must drive everyone to COMMIT (a
// pre-committed survivor proves the decision was commit).
TEST(ThreePcTest, MixedStatesConvergeToCommit) {
  ThreePcWorld w(3);
  // Delay pre-commit delivery to cohort 2 so it lags in kPrepared.
  w.sim.SetDelayFn([&](const sim::Envelope& e) -> sim::Duration {
    if (std::string(e.msg->TypeName()) == "3pc-pre-commit" && e.to == 2) {
      return 80 * kMillisecond;
    }
    return 2 * kMillisecond;
  });
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        return w.cohorts[0]->state(1) == TxState::kPreCommitted &&
               w.cohorts[1]->state(1) == TxState::kPreCommitted &&
               w.cohorts[2]->state(1) == TxState::kPrepared;
      },
      5 * kSecond));
  w.sim.Crash(w.coordinator->id());
  w.sim.BlockLink(w.coordinator->id(), 2);  // The lagging pre-commit dies too.
  ASSERT_TRUE(w.sim.RunUntil(
      [&] {
        for (const ThreePcParticipant* p : w.cohorts) {
          if (p->state(1) != TxState::kCommitted) return false;
        }
        return true;
      },
      30 * kSecond));
}

// Ablation: with the termination protocol disabled, 3PC blocks exactly like
// 2PC.
TEST(ThreePcTest, WithoutTerminationItBlocksLike2Pc) {
  ThreePcParticipant::Options opts;
  opts.enable_termination = false;
  ThreePcWorld w(3, 1, opts);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return w.cohorts[0]->state(1) == TxState::kPrepared; },
      5 * kSecond));
  w.sim.Crash(w.coordinator->id());
  w.sim.RunFor(10 * kSecond);
  EXPECT_EQ(w.cohorts[0]->state(1), TxState::kPrepared);
}

// The new coordinator is the lowest-id survivor (staggered timers).
TEST(ThreePcTest, LowestSurvivorLeadsTermination) {
  ThreePcWorld w(3);
  w.coordinator->Begin(MakeTx(1, {{0, "PUT a 1"}, {1, "PUT b 2"}, {2, "PUT c 3"}}));
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return w.cohorts[2]->state(1) == TxState::kPrepared; },
      5 * kSecond));
  w.sim.Crash(w.coordinator->id());
  ASSERT_TRUE(w.sim.RunUntil(
      [&] { return w.cohorts[0]->state(1) == TxState::kAborted; },
      30 * kSecond));
  EXPECT_GE(w.cohorts[0]->terminations_led(), 1);
}

}  // namespace
}  // namespace consensus40::commit
