#include <gtest/gtest.h>

#include "blockchain/chain.h"
#include "blockchain/spv.h"

namespace consensus40::blockchain {
namespace {

struct SpvWorld {
  SpvWorld() : tree(Opts()) {
    SpvClient::Options spv_opts;
    spv_opts.verify_pow = false;
    spv_opts.min_confirmations = 3;
    spv = SpvClient(spv_opts);
  }

  static ChainOptions Opts() {
    ChainOptions opts;
    opts.verify_pow = false;
    opts.block_interval_secs = 10;
    opts.retarget_interval = 1 << 20;
    opts.halving_interval = 1 << 20;
    return opts;
  }

  Block Mine(const crypto::Digest& parent, std::vector<Transaction> txs,
             uint32_t stamp) {
    Block block;
    block.header.prev_hash = parent;
    block.header.timestamp = stamp;
    block.header.target = tree.NextTarget(parent);
    block.miner = 0;
    block.reward = tree.RewardAt(tree.HeightOf(parent) + 1);
    block.txs = std::move(txs);
    block.header.merkle_root = block.ComputeMerkleRoot();
    EXPECT_TRUE(tree.AddBlock(block).ok());
    EXPECT_TRUE(spv.AddHeader(block.header).ok() ||
                true /* duplicates in fork tests are fine */);
    return block;
  }

  BlockTree tree;
  SpvClient spv;
};

Transaction Tx(const std::string& payload) {
  Transaction tx;
  tx.payload = payload;
  tx.amount = 1;
  tx.fee = 1;
  return tx;
}

TEST(SpvTest, HeaderChainTracksFullChain) {
  SpvWorld w;
  crypto::Digest tip{};
  for (int i = 1; i <= 5; ++i) {
    tip = w.Mine(tip, {}, i * 10).Hash();
  }
  EXPECT_EQ(w.spv.BestHeight(), 5u);
  EXPECT_EQ(w.spv.BestTip(), w.tree.BestTip());
  EXPECT_EQ(w.spv.HeaderCount(), 5u);  // Headers only: 80 bytes a piece.
}

TEST(SpvTest, PaymentVerifiesWithProofAndConfirmations) {
  SpvWorld w;
  Transaction pay = Tx("pay carol 5");
  Block holder = w.Mine(crypto::Digest{}, {pay, Tx("noise")}, 10);
  crypto::Digest tip = holder.Hash();
  // Not yet confirmed deeply enough.
  auto proof = w.tree.ProveInclusion(holder.Hash(), pay.Hash());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(w.spv.VerifyPayment(pay.Hash(), *proof, holder.Hash())
                  .IsFailedPrecondition());
  // Bury it under 2 more blocks: 3 confirmations = threshold.
  tip = w.Mine(tip, {}, 20).Hash();
  tip = w.Mine(tip, {}, 30).Hash();
  EXPECT_TRUE(w.spv.VerifyPayment(pay.Hash(), *proof, holder.Hash()).ok());
}

TEST(SpvTest, WrongProofRejected) {
  SpvWorld w;
  Transaction pay = Tx("pay carol 5");
  Transaction other = Tx("unrelated");
  Block holder = w.Mine(crypto::Digest{}, {pay, other}, 10);
  crypto::Digest tip = holder.Hash();
  tip = w.Mine(tip, {}, 20).Hash();
  tip = w.Mine(tip, {}, 30).Hash();
  // Proof for a DIFFERENT transaction cannot authenticate this one.
  auto proof = w.tree.ProveInclusion(holder.Hash(), other.Hash());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(w.spv.VerifyPayment(pay.Hash(), *proof, holder.Hash())
                  .IsInvalidArgument());
}

TEST(SpvTest, ReorgedOutPaymentStopsVerifying) {
  SpvWorld w;
  Transaction pay = Tx("pay carol 5");
  Block a1 = w.Mine(crypto::Digest{}, {pay}, 10);
  crypto::Digest a_tip = a1.Hash();
  a_tip = w.Mine(a_tip, {}, 20).Hash();
  a_tip = w.Mine(a_tip, {}, 30).Hash();
  auto proof = w.tree.ProveInclusion(a1.Hash(), pay.Hash());
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(w.spv.VerifyPayment(pay.Hash(), *proof, a1.Hash()).ok());

  // A longer fork without the payment takes over.
  Block b1 = w.Mine(crypto::Digest{}, {Tx("fork")}, 10);
  crypto::Digest b_tip = b1.Hash();
  for (int i = 0; i < 4; ++i) {
    b_tip = w.Mine(b_tip, {}, 40 + i * 10).Hash();
  }
  EXPECT_EQ(w.spv.BestTip(), w.tree.BestTip());
  EXPECT_TRUE(w.spv.VerifyPayment(pay.Hash(), *proof, a1.Hash())
                  .IsFailedPrecondition())
      << "the paying block fell off the best chain: the SPV client must "
         "revoke its acceptance";
}

TEST(SpvTest, RealPowHeadersVerify) {
  // End-to-end with genuine SHA-256d mining at 12 zero bits.
  ChainOptions chain_opts;
  chain_opts.verify_pow = true;
  chain_opts.initial_target = Target::FromLeadingZeroBits(12);
  chain_opts.retarget_interval = 1 << 20;
  BlockTree tree(chain_opts);
  SpvClient::Options spv_opts;
  spv_opts.verify_pow = true;
  spv_opts.min_confirmations = 1;
  SpvClient spv(spv_opts);

  Transaction pay = Tx("real pow payment");
  crypto::Digest tip{};
  Block holder;
  for (int i = 1; i <= 2; ++i) {
    Block block;
    block.header.prev_hash = tip;
    block.header.timestamp = i * 600;
    block.header.target = tree.NextTarget(tip);
    block.miner = 0;
    block.reward = tree.RewardAt(i);
    if (i == 1) block.txs = {pay};
    block.header.merkle_root = block.ComputeMerkleRoot();
    ASSERT_TRUE(MineNonce(&block.header, 1ull << 26).has_value());
    ASSERT_TRUE(tree.AddBlock(block).ok());
    ASSERT_TRUE(spv.AddHeader(block.header).ok());
    if (i == 1) holder = block;
    tip = block.Hash();
  }
  // A fake header without valid PoW is rejected by the light client.
  BlockHeader fake = holder.header;
  fake.timestamp += 999;  // Invalidate the mined nonce.
  EXPECT_TRUE(spv.AddHeader(fake).IsInvalidArgument());

  auto proof = tree.ProveInclusion(holder.Hash(), pay.Hash());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(spv.VerifyPayment(pay.Hash(), *proof, holder.Hash()).ok());
}

}  // namespace
}  // namespace consensus40::blockchain
