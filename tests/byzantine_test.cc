// Systematic Byzantine adversaries across the BFT protocols: silent
// replicas, equivocating leaders, vote equivocators, and lying repliers.
// Every scenario asserts the same two things: honest replicas never
// diverge, and clients never accept a corrupted result.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "minbft/minbft.h"
#include "pbft/pbft.h"
#include "sim/simulation.h"
#include "zyzzyva/zyzzyva.h"

namespace consensus40 {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// ---------------------------------------------------------------------------
// HotStuff: equivocating leader
// ---------------------------------------------------------------------------

/// A HotStuff leader that proposes TWO different blocks in its view, one to
/// each half of the cluster. Votes are per-view (replicas vote at most once
/// per height), so at most one block can gather a quorum certificate.
class EquivocatingHotStuffLeader : public hotstuff::HotStuffReplica {
 public:
  explicit EquivocatingHotStuffLeader(hotstuff::HotStuffOptions options)
      : HotStuffReplica(options), options_copy_(options) {}

  int equivocations = 0;

  void OnMessage(sim::NodeId from, const sim::Message& msg) override {
    // Intercept our own proposal broadcasts indirectly: act honestly except
    // when we are about to propose — detected via the request path.
    HotStuffReplica::OnMessage(from, msg);
  }

  /// Called by the test to fire a double proposal at the current view.
  void DoubleProposeNow(const smr::Command& cmd_a,
                        const crypto::Signature& sig_a,
                        const smr::Command& cmd_b,
                        const crypto::Signature& sig_b) {
    ++equivocations;
    uint64_t view = current_view();
    for (int half = 0; half < 2; ++half) {
      hotstuff::Block block;
      block.height = view;
      block.parent = crypto::Digest{};  // Genesis parent (early view).
      block.justify = hotstuff::QuorumCert{};
      if (half == 0) {
        block.cmds = {cmd_a};
        block.cmd_sigs = {sig_a};
      } else {
        block.cmds = {cmd_b};
        block.cmd_sigs = {sig_b};
      }
      auto proposal = std::make_shared<ProposalMsg>();
      proposal->block = block;
      for (int r = half; r < options_copy_.n; r += 2) {
        Send(r, proposal);
      }
    }
  }

 private:
  hotstuff::HotStuffOptions options_copy_;
};

TEST(ByzantineHotStuffTest, EquivocatingLeaderCannotForkTheChain) {
  auto sim_owner = sim::Simulation::Builder(5).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(5, 16);
  hotstuff::HotStuffOptions opts;
  opts.n = 4;
  opts.registry = &registry;
  std::vector<hotstuff::HotStuffReplica*> replicas;
  auto* evil = sim.Spawn<EquivocatingHotStuffLeader>(opts);
  replicas.push_back(evil);
  sim.MarkByzantine(evil->id());
  for (int i = 1; i < 4; ++i) {
    replicas.push_back(sim.Spawn<hotstuff::HotStuffReplica>(opts));
  }
  auto* client = sim.Spawn<hotstuff::HotStuffClient>(4, &registry, 6);
  sim.Start();

  // Fire double proposals repeatedly during the run.
  smr::Command cmd_a{client->id(), 901, "PUT fork A"};
  smr::Command cmd_b{client->id(), 902, "PUT fork B"};
  crypto::Signature sig_a = registry.Sign(client->id(), cmd_a.Hash());
  crypto::Signature sig_b = registry.Sign(client->id(), cmd_b.Hash());
  for (int k = 0; k < 5; ++k) {
    sim.ScheduleAfter((50 + 100 * k) * kMillisecond, [&, k] {
      evil->DoubleProposeNow(cmd_a, sig_a, cmd_b, sig_b);
    });
  }
  ASSERT_TRUE(sim.RunUntil([&] { return client->done(); }, 600 * kSecond));
  sim.RunFor(2 * kSecond);

  // Honest replicas share one history; "fork" never committed twice
  // divergently.
  for (size_t a = 1; a < replicas.size(); ++a) {
    for (size_t b = a + 1; b < replicas.size(); ++b) {
      const auto& ca = replicas[a]->executed_commands();
      const auto& cb = replicas[b]->executed_commands();
      size_t overlap = std::min(ca.size(), cb.size());
      for (size_t i = 0; i < overlap; ++i) {
        ASSERT_TRUE(ca[i] == cb[i]) << a << "," << b << " diverge at " << i;
      }
    }
    EXPECT_TRUE(replicas[a]->violations().empty());
  }
  EXPECT_GT(evil->equivocations, 0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
}

// ---------------------------------------------------------------------------
// Lying repliers: a Byzantine replica sends corrupted results to clients
// ---------------------------------------------------------------------------

/// PBFT replica that participates honestly in agreement but LIES to the
/// client about execution results.
class LyingPbftReplica : public pbft::PbftReplica {
 public:
  explicit LyingPbftReplica(pbft::PbftOptions options)
      : PbftReplica(options) {}

  void OnMessage(sim::NodeId from, const sim::Message& msg) override {
    PbftReplica::OnMessage(from, msg);
    // After honest processing, chase every request with a forged reply.
    if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
      auto reply = std::make_shared<ReplyMsg>();
      reply->view = view();
      reply->client_seq = m->cmd.client_seq;
      reply->replica = id();
      reply->result = "666";  // The lie.
      Send(m->cmd.client, reply);
    }
  }
};

TEST(ByzantineRepliesTest, ClientRejectsMinorityLies) {
  auto sim_owner = sim::Simulation::Builder(7).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(7, 16);
  pbft::PbftOptions opts;
  opts.n = 4;
  opts.registry = &registry;
  std::vector<pbft::PbftReplica*> replicas;
  replicas.push_back(sim.Spawn<pbft::PbftReplica>(opts));  // Honest primary.
  auto* liar = sim.Spawn<LyingPbftReplica>(opts);
  replicas.push_back(liar);
  sim.MarkByzantine(liar->id());
  for (int i = 2; i < 4; ++i) {
    replicas.push_back(sim.Spawn<pbft::PbftReplica>(opts));
  }
  auto* client = sim.Spawn<pbft::PbftClient>(4, &registry, 10);
  sim.Start();
  ASSERT_TRUE(sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  // Client accepted only the true counter values: the f+1 matching-reply
  // rule filtered every "666".
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

// ---------------------------------------------------------------------------
// Silent replicas: liveness at exactly f, loss beyond f
// ---------------------------------------------------------------------------

template <typename Cluster>
struct SilenceBudget {
  int n;
  int f;
};

TEST(ByzantineSilenceTest, PbftBoundary) {
  // f silent replicas: fine. f+1: stuck. (Silence == crash for liveness.)
  for (int silent = 1; silent <= 2; ++silent) {
    auto sim_owner = sim::Simulation::Builder(9).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(9, 16);
    pbft::PbftOptions opts;
    opts.n = 4;
    opts.registry = &registry;
    for (int i = 0; i < 4; ++i) sim.Spawn<pbft::PbftReplica>(opts);
    auto* client = sim.Spawn<pbft::PbftClient>(4, &registry, 3);
    for (int s = 0; s < silent; ++s) sim.Crash(3 - s);
    sim.Start();
    bool done = sim.RunUntil([&] { return client->done(); }, 30 * kSecond);
    if (silent <= 1) {
      EXPECT_TRUE(done) << "silent=" << silent;
    } else {
      EXPECT_FALSE(done) << "silent=" << silent;
    }
  }
}

TEST(ByzantineSilenceTest, MinBftBoundary) {
  for (int silent = 1; silent <= 2; ++silent) {
    auto sim_owner = sim::Simulation::Builder(9).AutoStart(false).Build();
    sim::Simulation& sim = *sim_owner;
    crypto::KeyRegistry registry(9, 16);
    crypto::Usig usig(&registry);
    minbft::MinBftOptions opts;
    opts.n = 3;
    opts.registry = &registry;
    opts.usig = &usig;
    for (int i = 0; i < 3; ++i) sim.Spawn<minbft::MinBftReplica>(opts);
    auto* client = sim.Spawn<minbft::MinBftClient>(3, &registry, 3);
    for (int s = 0; s < silent; ++s) sim.Crash(2 - s);
    sim.Start();
    bool done = sim.RunUntil([&] { return client->done(); }, 30 * kSecond);
    if (silent <= 1) {
      EXPECT_TRUE(done) << "silent=" << silent;
    } else {
      EXPECT_FALSE(done) << "silent=" << silent;
    }
  }
}

// ---------------------------------------------------------------------------
// Zyzzyva: a replica serving divergent speculative responses
// ---------------------------------------------------------------------------

/// Zyzzyva backup that corrupts its speculative responses (wrong result +
/// wrong history). The client must never count it toward a quorum, forcing
/// case-2 commits that exclude it.
class CorruptZyzzyvaBackup : public zyzzyva::ZyzzyvaReplica {
 public:
  explicit CorruptZyzzyvaBackup(zyzzyva::ZyzzyvaOptions options)
      : ZyzzyvaReplica(options) {}

  void OnMessage(sim::NodeId from, const sim::Message& msg) override {
    if (const auto* m = dynamic_cast<const OrderReqMsg*>(&msg)) {
      // Execute dishonestly: reply with garbage, signed by ourselves (the
      // signature is valid, the CONTENT is wrong).
      auto resp = std::make_shared<SpecResponseMsg>();
      resp->seq = m->seq;
      resp->client_seq = m->cmd.client_seq;
      resp->history = crypto::Sha256::Hash("fabricated history");
      resp->result = "666";
      resp->replica = id();
      resp->sig = options_.registry->Sign(id(), resp->SigningDigest());
      Send(m->cmd.client, resp);
      return;
    }
    ZyzzyvaReplica::OnMessage(from, msg);
  }
};

TEST(ByzantineZyzzyvaTest, CorruptSpeculationForcesCase2NotCorruption) {
  auto sim_owner = sim::Simulation::Builder(13).AutoStart(false).Build();
  sim::Simulation& sim = *sim_owner;
  crypto::KeyRegistry registry(13, 16);
  zyzzyva::ZyzzyvaOptions opts;
  opts.n = 4;
  opts.registry = &registry;
  std::vector<zyzzyva::ZyzzyvaReplica*> replicas;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(sim.Spawn<zyzzyva::ZyzzyvaReplica>(opts));
  }
  auto* corrupt = sim.Spawn<CorruptZyzzyvaBackup>(opts);
  replicas.push_back(corrupt);
  sim.MarkByzantine(corrupt->id());
  auto* client = sim.Spawn<zyzzyva::ZyzzyvaClient>(4, &registry, 8);
  sim.Start();
  ASSERT_TRUE(sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  // Every request needed the commit-certificate path (only 3 honest
  // matching responses), and every accepted result is correct.
  EXPECT_EQ(client->case1_completions(), 0);
  EXPECT_EQ(client->case2_completions(), 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

}  // namespace
}  // namespace consensus40
