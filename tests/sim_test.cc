#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulation.h"

namespace consensus40::sim {
namespace {

struct Ping : Message {
  explicit Ping(int v) : value(v) {}
  const char* TypeName() const override { return "ping"; }
  int value;
};

struct Pong : Message {
  const char* TypeName() const override { return "pong"; }
};

/// Echo server: replies pong to every ping.
class Echo : public Process {
 public:
  void OnMessage(NodeId from, const Message& msg) override {
    if (dynamic_cast<const Ping*>(&msg) != nullptr) {
      Send(from, std::make_shared<Pong>());
    }
    ++received;
  }
  int received = 0;
};

/// Pinger: sends one ping to a target on start, counts pongs.
class Pinger : public Process {
 public:
  explicit Pinger(NodeId target) : target_(target) {}
  void OnStart() override { Send(target_, std::make_shared<Ping>(1)); }
  void OnMessage(NodeId, const Message& msg) override {
    if (dynamic_cast<const Pong*>(&msg) != nullptr) ++pongs;
  }
  int pongs = 0;

 private:
  NodeId target_;
};

TEST(SimulationTest, PingPongDelivers) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 1);
  EXPECT_EQ(pinger->pongs, 1);
  EXPECT_EQ(sim.stats().messages_sent, 2u);
  EXPECT_EQ(sim.stats().messages_delivered, 2u);
}

TEST(SimulationTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    Echo* echo = sim.Spawn<Echo>();
    std::vector<Pinger*> pingers;
    for (int i = 0; i < 10; ++i) pingers.push_back(sim.Spawn<Pinger>(echo->id()));
    sim.Start();
    sim.RunFor(1 * kSecond);
    return sim.now();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(SimulationTest, VirtualTimeAdvancesWithDelays) {
  NetworkOptions opts;
  opts.min_delay = 10 * kMillisecond;
  opts.max_delay = 10 * kMillisecond;
  Simulation sim(1, opts);
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.Start();
  bool done = sim.RunUntil([&] { return pinger->pongs == 1; }, 1 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(sim.now(), 20 * kMillisecond);  // Two hops at exactly 10ms each.
}

TEST(SimulationTest, CrashedProcessReceivesNothing) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.Crash(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 0);
  EXPECT_EQ(pinger->pongs, 0);
  EXPECT_GE(sim.stats().messages_dropped, 1u);
}

class TimerUser : public Process {
 public:
  void OnStart() override {
    timer_id_ = SetTimer(100 * kMillisecond, [this] { fired = true; });
    SetTimer(10 * kMillisecond, [this] { early_fired = true; });
  }
  void OnMessage(NodeId, const Message&) override {}
  void CancelMain() { CancelTimer(timer_id_); }
  bool fired = false;
  bool early_fired = false;

 private:
  uint64_t timer_id_ = 0;
};

TEST(SimulationTest, TimersFireAndCancel) {
  Simulation sim(1);
  TimerUser* t = sim.Spawn<TimerUser>();
  sim.Start();
  sim.RunFor(50 * kMillisecond);
  EXPECT_TRUE(t->early_fired);
  EXPECT_FALSE(t->fired);
  t->CancelMain();
  sim.RunFor(200 * kMillisecond);
  EXPECT_FALSE(t->fired);
}

TEST(SimulationTest, CrashInvalidatesPendingTimers) {
  Simulation sim(1);
  TimerUser* t = sim.Spawn<TimerUser>();
  sim.Start();
  sim.Crash(t->id());
  sim.RunFor(1 * kSecond);
  EXPECT_FALSE(t->fired);
  EXPECT_FALSE(t->early_fired);
}

TEST(SimulationTest, RestartDeliversAgain) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  Pinger* p1 = sim.Spawn<Pinger>(echo->id());
  sim.Crash(echo->id());
  sim.Start();
  sim.RunFor(100 * kMillisecond);
  EXPECT_EQ(p1->pongs, 0);
  sim.Restart(echo->id());
  Pinger* p2 = sim.Spawn<Pinger>(echo->id());
  sim.Start();  // Starts only the newly spawned process.
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(p2->pongs, 1);
}

TEST(SimulationTest, PartitionBlocksCrossGroupTraffic) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.Partition({{echo->id()}, {pinger->id()}});
  sim.Start();
  sim.RunFor(500 * kMillisecond);
  EXPECT_EQ(pinger->pongs, 0);

  sim.Heal();
  Pinger* p2 = sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(p2->pongs, 1);
}

TEST(SimulationTest, BlockedLinkIsDirected) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  // Block only the reply direction.
  sim.BlockLink(echo->id(), pinger->id());
  sim.Start();
  sim.RunFor(500 * kMillisecond);
  EXPECT_EQ(echo->received, 1);
  EXPECT_EQ(pinger->pongs, 0);
}

TEST(SimulationTest, DropRateLosesMessages) {
  NetworkOptions opts;
  opts.drop_rate = 1.0;
  Simulation sim(1, opts);
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 0);
}

TEST(SimulationTest, DelayFnOverridesModel) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.SetDelayFn([](const Envelope&) -> Duration { return 42 * kMillisecond; });
  sim.Start();
  sim.RunUntil([&] { return pinger->pongs == 1; }, 1 * kSecond);
  EXPECT_EQ(sim.now(), 84 * kMillisecond);
}

TEST(SimulationTest, DelayFnCanDrop) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  sim.SetDelayFn([](const Envelope&) -> Duration { return -1; });
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 0);
}

TEST(SimulationTest, TraceHookSeesDeliveries) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  std::vector<std::string> types;
  sim.SetTraceFn([&](const Envelope& e, Time) {
    types.push_back(e.msg->TypeName());
  });
  sim.Start();
  sim.RunFor(1 * kSecond);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], "ping");
  EXPECT_EQ(types[1], "pong");
}

TEST(SimulationTest, StatsPerTypeCounting) {
  Simulation sim(1);
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(sim.stats().sent_by_type.at("ping"), 2u);
  EXPECT_EQ(sim.stats().sent_by_type.at("pong"), 2u);
}

TEST(SimulationTest, SameTimeEventsFifo) {
  Simulation sim(1);
  std::vector<int> order;
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.ScheduleAt(5, [&] { order.push_back(0); });
  sim.RunFor(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace consensus40::sim
