#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "sim/simulation.h"

namespace consensus40::sim {
namespace {

struct Ping : Message {
  explicit Ping(int v) : value(v) {}
  const char* TypeName() const override { return "ping"; }
  int value;
};

struct Pong : Message {
  const char* TypeName() const override { return "pong"; }
};

/// Echo server: replies pong to every ping.
class Echo : public Process {
 public:
  void OnMessage(NodeId from, const Message& msg) override {
    if (dynamic_cast<const Ping*>(&msg) != nullptr) {
      Send(from, std::make_shared<Pong>());
    }
    ++received;
  }
  int received = 0;
};

/// Pinger: sends one ping to a target on start, counts pongs.
class Pinger : public Process {
 public:
  explicit Pinger(NodeId target) : target_(target) {}
  void OnStart() override { Send(target_, std::make_shared<Ping>(1)); }
  void OnMessage(NodeId, const Message& msg) override {
    if (dynamic_cast<const Pong*>(&msg) != nullptr) ++pongs;
  }
  int pongs = 0;

 private:
  NodeId target_;
};

TEST(SimulationTest, PingPongDelivers) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 1);
  EXPECT_EQ(pinger->pongs, 1);
  EXPECT_EQ(sim.stats().messages_sent, 2u);
  EXPECT_EQ(sim.stats().messages_delivered, 2u);
}

TEST(SimulationTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    auto sim_owner = Simulation::Builder(seed).AutoStart(false).Build();
    Simulation& sim = *sim_owner;
    Echo* echo = sim.Spawn<Echo>();
    std::vector<Pinger*> pingers;
    for (int i = 0; i < 10; ++i) pingers.push_back(sim.Spawn<Pinger>(echo->id()));
    sim.Start();
    sim.RunFor(1 * kSecond);
    return sim.now();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(SimulationTest, VirtualTimeAdvancesWithDelays) {
  NetworkOptions opts;
  opts.min_delay = 10 * kMillisecond;
  opts.max_delay = 10 * kMillisecond;
  auto sim_owner =
      Simulation::Builder(1).Network(opts).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.Start();
  bool done = sim.RunUntil([&] { return pinger->pongs == 1; }, 1 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(sim.now(), 20 * kMillisecond);  // Two hops at exactly 10ms each.
}

TEST(SimulationTest, CrashedProcessReceivesNothing) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.Crash(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 0);
  EXPECT_EQ(pinger->pongs, 0);
  EXPECT_GE(sim.stats().messages_dropped, 1u);
}

class TimerUser : public Process {
 public:
  void OnStart() override {
    timer_id_ = SetTimer(100 * kMillisecond, [this] { fired = true; });
    SetTimer(10 * kMillisecond, [this] { early_fired = true; });
  }
  void OnMessage(NodeId, const Message&) override {}
  void CancelMain() { CancelTimer(timer_id_); }
  bool fired = false;
  bool early_fired = false;

 private:
  uint64_t timer_id_ = 0;
};

TEST(SimulationTest, TimersFireAndCancel) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  TimerUser* t = sim.Spawn<TimerUser>();
  sim.Start();
  sim.RunFor(50 * kMillisecond);
  EXPECT_TRUE(t->early_fired);
  EXPECT_FALSE(t->fired);
  t->CancelMain();
  sim.RunFor(200 * kMillisecond);
  EXPECT_FALSE(t->fired);
}

TEST(SimulationTest, CrashInvalidatesPendingTimers) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  TimerUser* t = sim.Spawn<TimerUser>();
  sim.Start();
  sim.Crash(t->id());
  sim.RunFor(1 * kSecond);
  EXPECT_FALSE(t->fired);
  EXPECT_FALSE(t->early_fired);
}

TEST(SimulationTest, RestartDeliversAgain) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  Pinger* p1 = sim.Spawn<Pinger>(echo->id());
  sim.Crash(echo->id());
  sim.Start();
  sim.RunFor(100 * kMillisecond);
  EXPECT_EQ(p1->pongs, 0);
  sim.Restart(echo->id());
  Pinger* p2 = sim.Spawn<Pinger>(echo->id());
  sim.Start();  // Starts only the newly spawned process.
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(p2->pongs, 1);
}

TEST(SimulationTest, PartitionBlocksCrossGroupTraffic) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.Partition({{echo->id()}, {pinger->id()}});
  sim.Start();
  sim.RunFor(500 * kMillisecond);
  EXPECT_EQ(pinger->pongs, 0);

  sim.Heal();
  Pinger* p2 = sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(p2->pongs, 1);
}

TEST(SimulationTest, BlockedLinkIsDirected) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  // Block only the reply direction.
  sim.BlockLink(echo->id(), pinger->id());
  sim.Start();
  sim.RunFor(500 * kMillisecond);
  EXPECT_EQ(echo->received, 1);
  EXPECT_EQ(pinger->pongs, 0);
}

TEST(SimulationTest, DropRateLosesMessages) {
  NetworkOptions opts;
  opts.drop_rate = 1.0;
  auto sim_owner =
      Simulation::Builder(1).Network(opts).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 0);
}

TEST(SimulationTest, DelayFnOverridesModel) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.SetDelayFn([](const Envelope&) -> Duration { return 42 * kMillisecond; });
  sim.Start();
  sim.RunUntil([&] { return pinger->pongs == 1; }, 1 * kSecond);
  EXPECT_EQ(sim.now(), 84 * kMillisecond);
}

TEST(SimulationTest, DelayFnCanDrop) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  sim.SetDelayFn([](const Envelope&) -> Duration { return -1; });
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 0);
}

TEST(SimulationTest, TraceHookSeesDeliveries) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  std::vector<std::string> types;
  sim.SetTraceFn([&](const Envelope& e, Time) {
    types.push_back(e.msg->TypeName());
  });
  sim.Start();
  sim.RunFor(1 * kSecond);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], "ping");
  EXPECT_EQ(types[1], "pong");
}

TEST(SimulationTest, StatsPerTypeCounting) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(sim.stats().sent_by_type.at("ping"), 2u);
  EXPECT_EQ(sim.stats().sent_by_type.at("pong"), 2u);
}

/// Sends a ping to the target every `period`, forever.
class RepeatPinger : public Process {
 public:
  RepeatPinger(NodeId target, Duration period)
      : target_(target), period_(period) {}
  void OnStart() override { Tick(); }
  void OnMessage(NodeId, const Message&) override {}

 private:
  void Tick() {
    Send(target_, std::make_shared<Ping>(1));
    SetTimer(period_, [this] { Tick(); });
  }
  NodeId target_;
  Duration period_;
};

// Reset() mid-run must restart per-type counts from zero even though the
// send fast path holds cursors into sent_by_type that were resolved
// before the reset. A stale cursor would write into freed map nodes and
// the post-reset window would come up short (or corrupt the heap).
TEST(SimulationTest, StatsResetMidRunInvalidatesLiveTypeCursors) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<RepeatPinger>(echo->id(), 10 * kMillisecond);
  sim.Start();
  sim.RunFor(100 * kMillisecond);  // Cursors for ping/pong are now live.
  ASSERT_EQ(sim.stats().sent_by_type.at("ping"), 11u);  // t=0..100 inclusive.
  sim.stats().Reset();
  EXPECT_TRUE(sim.stats().sent_by_type.empty());
  EXPECT_EQ(sim.stats().messages_sent, 0u);
  sim.RunFor(100 * kMillisecond);
  // Exactly the post-reset traffic: pings at t=110..200 plus the pongs
  // answering pings 100..190 (max delay 5ms keeps each reply's send
  // inside the window; the t=200 ping's pong falls outside).
  EXPECT_EQ(sim.stats().sent_by_type.at("ping"), 10u);
  EXPECT_EQ(sim.stats().sent_by_type.at("pong"), 10u);
  EXPECT_EQ(sim.stats().messages_sent, 20u);
}

TEST(SimulationTest, SameTimeEventsFifo) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  std::vector<int> order;
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.ScheduleAt(5, [&] { order.push_back(0); });
  sim.RunFor(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

/// Exposes the protected timer interface so tests can drive it directly.
class TimerHost : public Process {
 public:
  void OnMessage(NodeId, const Message&) override {}
  uint64_t Arm(Duration d, std::function<void()> fn) {
    return SetTimer(d, std::move(fn));
  }
  void Cancel(uint64_t id) { CancelTimer(id); }
};

// Regression: cancelling a timer after it fired must be a no-op that leaves
// no bookkeeping residue. The fired timer's slot is recycled (the next timer
// reuses the same slab index) and the stale handle, whose generation no
// longer matches, must not touch the slot's new occupant.
TEST(SimulationTest, CancelAfterFireIsNoopAndLeavesNoResidue) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  TimerHost* host = sim.Spawn<TimerHost>();
  sim.Start();

  int first = 0;
  int second = 0;
  const uint64_t a = host->Arm(10, [&] { ++first; });
  sim.RunFor(100);
  EXPECT_EQ(first, 1);

  // Only timer traffic in this simulation, so the freed slot is reused
  // immediately: same slab index, fresh generation.
  const uint64_t b = host->Arm(10, [&] { ++second; });
  EXPECT_NE(a, b);
  EXPECT_EQ(a & 0xFFFFFFFFu, b & 0xFFFFFFFFu);

  host->Cancel(a);  // Stale: must not cancel the slot's new occupant.
  sim.RunFor(100);
  EXPECT_EQ(second, 1);

  host->Cancel(b);  // Cancel-after-fire, twice: still a no-op.
  host->Cancel(b);
  sim.RunFor(100);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

// Regression: spawning while a partition is in effect used to read past the
// end of the partition map. The new node must start isolated and join the
// topology only on the next Partition()/Heal().
TEST(SimulationTest, SpawnDuringPartitionStartsIsolated) {
  NetworkOptions net;
  net.min_delay = net.max_delay = 1 * kMillisecond;
  auto sim_owner = Simulation::Builder(1).Network(net).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* a = sim.Spawn<Echo>();
  Echo* b = sim.Spawn<Echo>();
  sim.Start();
  sim.Partition({{a->id()}, {b->id()}});

  Pinger* late = sim.Spawn<Pinger>(a->id());
  sim.Start();  // Runs OnStart for the newly spawned pinger.
  sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(a->received, 0);  // Isolated: nothing crosses.
  EXPECT_EQ(late->pongs, 0);

  sim.Heal();
  sim.Spawn<Pinger>(a->id());
  sim.Start();
  sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(a->received, 1);  // Healed topology covers the late spawns.
}

// Regression: a message in flight to a process that crashes *and restarts*
// before the delivery time must be dropped. Delivery is for the incarnation
// the message was addressed to, not whoever occupies the id later.
TEST(SimulationTest, CrashAndRestartInsideDelayWindowDropsDelivery) {
  NetworkOptions net;
  net.min_delay = net.max_delay = 10 * kMillisecond;
  auto sim_owner = Simulation::Builder(1).Network(net).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  sim.Spawn<Pinger>(echo->id());
  sim.Start();  // Ping sent at t=0, due at t=10ms.

  sim.RunFor(2 * kMillisecond);
  sim.Crash(echo->id());
  sim.RunFor(2 * kMillisecond);
  sim.Restart(echo->id());  // Alive again well before the delivery time.
  sim.RunFor(20 * kMillisecond);
  EXPECT_EQ(echo->received, 0);
  EXPECT_EQ(sim.stats().messages_dropped, 1u);

  // The restarted incarnation is reachable by fresh sends.
  sim.Spawn<Pinger>(echo->id());
  sim.Start();
  sim.RunFor(20 * kMillisecond);
  EXPECT_EQ(echo->received, 1);
}

// Regression: a send the topology rejects outright never reaches the
// network, so it must count as dropped and nothing else — no messages_sent,
// no bytes_sent, no per-type row.
TEST(SimulationTest, TopologyRejectedSendIsNotCountedAsSent) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  Echo* echo = sim.Spawn<Echo>();
  Pinger* pinger = sim.Spawn<Pinger>(echo->id());
  sim.BlockLink(pinger->id(), echo->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(echo->received, 0);
  EXPECT_EQ(sim.stats().messages_sent, 0u);
  EXPECT_EQ(sim.stats().bytes_sent, 0u);
  EXPECT_EQ(sim.stats().messages_dropped, 1u);
  EXPECT_EQ(sim.stats().sent_by_type.count("ping"), 0u);
}

// Regression: a failed RunUntil still consumes the waited-for interval, like
// RunFor does; the clock must land on the deadline, not on the last event.
TEST(SimulationTest, RunUntilAdvancesClockToDeadlineOnFailure) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  bool ran = false;
  sim.ScheduleAt(10 * kMillisecond, [&] { ran = true; });
  EXPECT_FALSE(sim.RunUntil([] { return false; }, 50 * kMillisecond));
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 50 * kMillisecond);
}

// FIFO among same-time events must survive bucket recycling and handlers
// that append to the current timestamp while it is being drained.
TEST(SimulationTest, SameTimeFifoSurvivesBucketRecycling) {
  auto sim_owner = Simulation::Builder(1).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.ScheduleAt(10, [&order, i] { order.push_back(i); });
  }
  sim.RunFor(10);  // Drains and frees the t=10 bucket.
  for (int i = 8; i < 16; ++i) {
    sim.ScheduleAt(20, [&order, i] { order.push_back(i); });
  }
  sim.ScheduleAt(30, [&] {
    order.push_back(16);
    sim.ScheduleAt(30, [&] { order.push_back(17); });  // Same-time append.
  });
  sim.RunFor(100);
  std::vector<int> want;
  for (int i = 0; i < 18; ++i) want.push_back(i);
  EXPECT_EQ(order, want);
}

/// Gossip workload for the replay test: multicasts on a timer, reacts to
/// traffic by cancelling and re-arming that timer, so crashes interleave
/// with pending timers and in-flight multicasts.
class Gossiper : public Process {
 public:
  explicit Gossiper(int fleet) : fleet_(fleet) {}
  void OnStart() override { Round_(); }
  void OnMessage(NodeId, const Message&) override {
    ++heard_;
    if (heard_ % 3 == 0) {
      CancelTimer(pending_);
      pending_ = SetTimer(3 * kMillisecond, [this] { Round_(); });
    }
  }

 private:
  void Round_() {
    std::vector<NodeId> targets;
    for (NodeId n = 0; n < fleet_; ++n) {
      if (n != id()) targets.push_back(n);
    }
    Multicast(targets, std::make_shared<Pong>());
    pending_ = SetTimer(7 * kMillisecond, [this] { Round_(); });
  }

  int fleet_;
  int heard_ = 0;
  uint64_t pending_ = 0;
};

// Same seed, same scenario => byte-identical delivery order and statistics,
// across jittered delays, random drops, multicast fan-out, timer
// cancellation, and crash/restart epochs.
TEST(SimulationTest, DeterministicReplayOfChaoticRun) {
  struct Observed {
    std::vector<std::tuple<NodeId, NodeId, uint64_t, Time>> deliveries;
    uint64_t sent = 0, delivered = 0, dropped = 0, bytes = 0;
    std::map<std::string, uint64_t> by_type;
    bool operator==(const Observed&) const = default;
  };
  auto run = [] {
    NetworkOptions net;
    net.min_delay = 1 * kMillisecond;
    net.max_delay = 5 * kMillisecond;
    net.drop_rate = 0.1;
    auto sim_owner =
        Simulation::Builder(7).Network(net).AutoStart(false).Build();
    Simulation& sim = *sim_owner;
    constexpr int kFleet = 5;
    for (int i = 0; i < kFleet; ++i) sim.Spawn<Gossiper>(kFleet);
    Observed seen;
    sim.SetTraceFn([&](const Envelope& e, Time t) {
      seen.deliveries.emplace_back(e.from, e.to, e.id, t);
    });
    sim.Start();
    sim.RunFor(20 * kMillisecond);
    sim.Crash(1);  // Crash with timers pending and multicasts in flight.
    sim.RunFor(10 * kMillisecond);
    sim.Restart(1);
    sim.RunFor(5 * kMillisecond);
    sim.Crash(3);
    sim.RunFor(50 * kMillisecond);
    seen.sent = sim.stats().messages_sent;
    seen.delivered = sim.stats().messages_delivered;
    seen.dropped = sim.stats().messages_dropped;
    seen.bytes = sim.stats().bytes_sent;
    seen.by_type = sim.stats().sent_by_type;
    return seen;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_GT(first.deliveries.size(), 100u);
  EXPECT_TRUE(first == second);
}

// ---------------------------------------------------------------------------
// Finite per-sender egress bandwidth (NetworkOptions::bytes_per_ms).
// ---------------------------------------------------------------------------

/// A payload-carrying message whose wire size the tests control exactly.
struct Blob : Message {
  explicit Blob(int bytes) : bytes(bytes) {}
  const char* TypeName() const override { return "blob"; }
  int ByteSize() const override { return bytes; }
  int bytes;
};

/// Records the virtual delivery time of every blob it receives.
class BlobSink : public Process {
 public:
  void OnMessage(NodeId, const Message& msg) override {
    if (dynamic_cast<const Blob*>(&msg) != nullptr) arrivals.push_back(Now());
  }
  std::vector<Time> arrivals;
};

/// Back-to-back sends from one node serialize one at a time: each blob
/// waits for the egress port to free before its propagation delay starts,
/// so delivery times space out by exactly bytes/bandwidth.
TEST(SimulationTest, BandwidthQueuesBackToBackSendsPerEgressPort) {
  NetworkOptions net;
  net.min_delay = net.max_delay = 1 * kMillisecond;  // Fixed propagation.
  net.bytes_per_ms = 100.0;
  auto sim_owner = Simulation::Builder(1).Network(net).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  BlobSink* sink = sim.Spawn<BlobSink>();
  class Burst : public Process {
   public:
    explicit Burst(NodeId to) : to_(to) {}
    void OnMessage(NodeId, const Message&) override {}
    void OnStart() override {
      Send(to_, std::make_shared<Blob>(500));
      Send(to_, std::make_shared<Blob>(500));
    }

   private:
    NodeId to_;
  };
  sim.Spawn<Burst>(sink->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  // 500 B at 100 B/ms = 5 ms serialization each, queued: the first blob
  // leaves the port at 5 ms (arrives 6 ms with propagation), the second
  // at 10 ms (arrives 11 ms).
  ASSERT_EQ(sink->arrivals.size(), 2u);
  EXPECT_EQ(sink->arrivals[0], 6 * kMillisecond);
  EXPECT_EQ(sink->arrivals[1], 11 * kMillisecond);
  // True framed bytes hit the stats, not the 64-byte default.
  EXPECT_EQ(sim.stats().bytes_sent, 1000u);
}

/// A multicast is n unicasts at the sender's port: each target's copy
/// pays its own serialization slot, and the backlog the burst leaves
/// behind is visible through EgressBacklog — the signal payload-aware
/// protocols adapt on.
TEST(SimulationTest, MulticastPaysPerTargetSerializationAndExposesBacklog) {
  NetworkOptions net;
  net.min_delay = net.max_delay = 1 * kMillisecond;
  net.bytes_per_ms = 100.0;
  auto sim_owner = Simulation::Builder(1).Network(net).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  std::vector<BlobSink*> sinks;
  for (int i = 0; i < 3; ++i) sinks.push_back(sim.Spawn<BlobSink>());
  class Caster : public Process {
   public:
    Caster(std::vector<NodeId> to, Simulation* sim) : to_(to), sim_(sim) {}
    void OnMessage(NodeId, const Message&) override {}
    void OnStart() override {
      Multicast(to_, std::make_shared<Blob>(500));
      backlog_after = sim_->EgressBacklog(id());
      SetTimer(7 * kMillisecond,
               [this] { backlog_later = sim_->EgressBacklog(id()); });
    }
    Duration backlog_after = 0;
    Duration backlog_later = 0;

   private:
    std::vector<NodeId> to_;
    Simulation* sim_;
  };
  Caster* caster = sim.Spawn<Caster>(
      std::vector<NodeId>{sinks[0]->id(), sinks[1]->id(), sinks[2]->id()},
      &sim);
  sim.Start();
  sim.RunFor(1 * kSecond);
  // Three 5 ms serializations queue behind each other; arrivals land at
  // 6, 11, and 16 ms in target order.
  std::vector<Time> all;
  for (BlobSink* s : sinks) {
    ASSERT_EQ(s->arrivals.size(), 1u);
    all.push_back(s->arrivals[0]);
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all[0], 6 * kMillisecond);
  EXPECT_EQ(all[1], 11 * kMillisecond);
  EXPECT_EQ(all[2], 16 * kMillisecond);
  // The burst booked the port 15 ms ahead; 7 ms later, 8 ms remain.
  EXPECT_EQ(caster->backlog_after, 15 * kMillisecond);
  EXPECT_EQ(caster->backlog_later, 8 * kMillisecond);
  // An idle node has no backlog.
  EXPECT_EQ(sim.EgressBacklog(sinks[0]->id()), 0);
}

/// Per-link overrides take precedence over the global rate, and links
/// without bandwidth stay serialization-free even when others charge.
TEST(SimulationTest, PerLinkBandwidthOverridesGlobalRate) {
  NetworkOptions net;
  net.min_delay = net.max_delay = 1 * kMillisecond;
  net.bytes_per_ms = 100.0;
  // Spawn order below fixes ids: sink 0, sink 1, sender 2. The sender's
  // link to sink 0 runs at 500 B/ms; to sink 1 it keeps the global rate.
  net.link_bytes_per_ms[{2, 0}] = 500.0;
  auto sim_owner = Simulation::Builder(1).Network(net).AutoStart(false).Build();
  Simulation& sim = *sim_owner;
  BlobSink* fast_sink = sim.Spawn<BlobSink>();
  BlobSink* slow_sink = sim.Spawn<BlobSink>();
  class Sender : public Process {
   public:
    Sender(NodeId fast, NodeId slow) : fast_(fast), slow_(slow) {}
    void OnMessage(NodeId, const Message&) override {}
    void OnStart() override {
      Send(fast_, std::make_shared<Blob>(500));
      Send(slow_, std::make_shared<Blob>(500));
    }

   private:
    NodeId fast_;
    NodeId slow_;
  };
  sim.Spawn<Sender>(fast_sink->id(), slow_sink->id());
  sim.Start();
  sim.RunFor(1 * kSecond);
  // 500 B at 500 B/ms = 1 ms serialization + 1 ms propagation.
  ASSERT_EQ(fast_sink->arrivals.size(), 1u);
  EXPECT_EQ(fast_sink->arrivals[0], 2 * kMillisecond);
  // The slow blob queues behind the fast one on the SHARED egress port:
  // it starts serializing at 1 ms, takes 5 ms, arrives at 7 ms.
  ASSERT_EQ(slow_sink->arrivals.size(), 1u);
  EXPECT_EQ(slow_sink->arrivals[0], 7 * kMillisecond);
}

/// The default configuration (no bandwidth) must replay the chaotic
/// scenario byte-identically to an explicit zero rate: the bandwidth
/// plumbing is inert unless enabled, so every pinned repro and bench
/// baseline from before the feature keeps its exact schedule.
TEST(SimulationTest, ZeroBandwidthIsIdenticalToDefault) {
  auto run = [](bool explicit_zero) {
    NetworkOptions net;
    net.min_delay = 1 * kMillisecond;
    net.max_delay = 5 * kMillisecond;
    net.drop_rate = 0.1;
    if (explicit_zero) net.bytes_per_ms = 0.0;
    auto sim_owner =
        Simulation::Builder(7).Network(net).AutoStart(false).Build();
    Simulation& sim = *sim_owner;
    constexpr int kFleet = 5;
    for (int i = 0; i < kFleet; ++i) sim.Spawn<Gossiper>(kFleet);
    std::vector<std::tuple<NodeId, NodeId, uint64_t, Time>> deliveries;
    sim.SetTraceFn([&](const Envelope& e, Time t) {
      deliveries.emplace_back(e.from, e.to, e.id, t);
    });
    sim.Start();
    sim.RunFor(50 * kMillisecond);
    return deliveries;
  };
  const auto defaulted = run(false);
  const auto zeroed = run(true);
  EXPECT_GT(defaulted.size(), 50u);
  EXPECT_EQ(defaulted, zeroed);
}

}  // namespace
}  // namespace consensus40::sim
