#include <gtest/gtest.h>

#include <vector>
#include <memory>

#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "zyzzyva/zyzzyva.h"

namespace consensus40::zyzzyva {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct ZyzCluster {
  explicit ZyzCluster(int n, uint64_t seed = 1)
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner), registry(seed, n + 8) {
    // Fixed delay so message-delay counting is exact.
    sim::NetworkOptions net = sim.options();
    net.min_delay = 1 * kMillisecond;
    net.max_delay = 1 * kMillisecond;
    sim.SetNetworkOptions(net);
    ZyzzyvaOptions opts;
    opts.n = n;
    opts.registry = &registry;
    for (int i = 0; i < n; ++i) {
      replicas.push_back(sim.Spawn<ZyzzyvaReplica>(opts));
    }
  }

  ZyzzyvaClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(sim.Spawn<ZyzzyvaClient>(
        static_cast<int>(replicas.size()), &registry, ops, key));
    return clients.back();
  }

  void CheckSafety() const {
    for (size_t a = 0; a < replicas.size(); ++a) {
      for (size_t b = a + 1; b < replicas.size(); ++b) {
        const auto& ca = replicas[a]->executed_commands();
        const auto& cb = replicas[b]->executed_commands();
        size_t overlap = std::min(ca.size(), cb.size());
        for (size_t i = 0; i < overlap; ++i) {
          ASSERT_TRUE(ca[i] == cb[i])
              << "replicas " << a << "," << b << " diverge at " << i;
        }
      }
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  crypto::KeyRegistry registry;
  std::vector<ZyzzyvaReplica*> replicas;
  std::vector<ZyzzyvaClient*> clients;
};

// Case 1: fault-free, all 3f+1 speculative replies match; the request
// completes in 3 one-way delays.
TEST(ZyzzyvaTest, FaultFreeCase1ThreeDelays) {
  ZyzCluster cluster(4);
  ZyzzyvaClient* client = cluster.AddClient(1);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 10 * kSecond));
  EXPECT_EQ(client->case1_completions(), 1);
  EXPECT_EQ(client->case2_completions(), 0);
  // t=0 send; +1ms primary orders; +2ms replicas respond; +3ms client done.
  EXPECT_EQ(cluster.sim.now(), 3 * kMillisecond);
  cluster.CheckSafety();
}

TEST(ZyzzyvaTest, StreamOfRequestsAllCase1) {
  ZyzCluster cluster(4);
  ZyzzyvaClient* client = cluster.AddClient(20);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  EXPECT_EQ(client->case1_completions(), 20);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  cluster.CheckSafety();
}

// Case 2: one crashed backup leaves only 3f matching replies; the client
// commits via certificate.
TEST(ZyzzyvaTest, CrashedBackupFallsBackToCase2) {
  ZyzCluster cluster(4);
  ZyzzyvaClient* client = cluster.AddClient(5);
  cluster.sim.Crash(3);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  EXPECT_EQ(client->case1_completions(), 0);
  EXPECT_EQ(client->case2_completions(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  // Replicas recorded the commit certificates.
  for (const ZyzzyvaReplica* r : cluster.replicas) {
    if (cluster.sim.IsCrashed(r->id())) continue;
    EXPECT_GE(r->max_committed_certificate(), 5u);
  }
  cluster.CheckSafety();
}

TEST(ZyzzyvaTest, Case2IsSlowerThanCase1) {
  ZyzCluster fast(4);
  ZyzzyvaClient* fast_client = fast.AddClient(1);
  fast.sim.Start();
  ASSERT_TRUE(
      fast.sim.RunUntil([&] { return fast_client->done(); }, 10 * kSecond));
  sim::Time case1_time = fast.sim.now();

  ZyzCluster slow(4);
  ZyzzyvaClient* slow_client = slow.AddClient(1);
  slow.sim.Crash(3);
  slow.sim.Start();
  ASSERT_TRUE(
      slow.sim.RunUntil([&] { return slow_client->done(); }, 10 * kSecond));
  EXPECT_GT(slow.sim.now(), case1_time);
}

TEST(ZyzzyvaTest, MessageComplexityIsLinear) {
  // Per request: 1 request + (n-1) order-reqs + n spec-responses ~ 2n.
  auto messages_per_request = [](int n) {
    ZyzCluster cluster(n);
    ZyzzyvaClient* client = cluster.AddClient(10);
    cluster.sim.Start();
    cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond);
    EXPECT_TRUE(client->done());
    return cluster.sim.stats().messages_sent / 10.0;
  };
  double at4 = messages_per_request(4);
  double at10 = messages_per_request(10);
  // Linear: 10/4 = 2.5x, far below the quadratic 6.25x.
  EXPECT_LT(at10 / at4, 3.5);
}

TEST(ZyzzyvaTest, HistoryChainsPinOrder) {
  ZyzCluster cluster(4);
  cluster.AddClient(10, "a");
  cluster.AddClient(10, "b");
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        for (const ZyzzyvaClient* c : cluster.clients) {
          if (!c->done()) return false;
        }
        return true;
      },
      60 * kSecond));
  cluster.sim.RunFor(1 * kSecond);
  cluster.CheckSafety();
  // All replicas end with the identical history hash.
  for (const ZyzzyvaReplica* r : cluster.replicas) {
    EXPECT_EQ(r->history(), cluster.replicas[0]->history()) << r->id();
    EXPECT_EQ(r->executed_commands().size(), 20u);
  }
}

TEST(ZyzzyvaTest, TwoCrashesExceedFNoProgress) {
  ZyzCluster cluster(4);
  ZyzzyvaClient* client = cluster.AddClient(3);
  cluster.sim.Crash(2);
  cluster.sim.Crash(3);
  cluster.sim.Start();
  EXPECT_FALSE(
      cluster.sim.RunUntil([&] { return client->done(); }, 10 * kSecond));
  EXPECT_EQ(client->completed(), 0);
  cluster.CheckSafety();
}

// Bounds contract for the checker adapters (see ZyzzyvaByzantineAdapter
// in src/zyzzyva/zyzzyva_check.cc): this Zyzzyva module implements the
// agreement sub-protocol only — there is no view change. A primary that
// stops (or lies) can therefore never be deposed, so primary faults are
// permanent liveness loss BY CONSTRUCTION, not a bug for the checker to
// find. The fault bounds shield node 0 from crash and Byzantine windows;
// this test pins the behavior that justifies the shield.
TEST(ZyzzyvaTest, CrashedPrimaryHaltsForeverByConstruction) {
  ZyzCluster cluster(4);
  ZyzzyvaClient* client = cluster.AddClient(5);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 2; },
                                   10 * kSecond));
  cluster.sim.Crash(0);  // The un-deposable sequencer.
  EXPECT_FALSE(
      cluster.sim.RunUntil([&] { return client->done(); }, 30 * kSecond));
  EXPECT_EQ(client->completed(), 2);
  // Even a restart does not help: the primary's sequencing state (next
  // sequence number, history hash) is volatile, so its fresh responses can
  // never rejoin the backups' histories. Hence the adapter's bounds keep
  // node 0 out of the crash AND Byzantine windows entirely. The halt was
  // always liveness-only — completed prefixes stay consistent.
  cluster.CheckSafety();
}

}  // namespace
}  // namespace consensus40::zyzzyva
