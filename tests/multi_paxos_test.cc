#include <gtest/gtest.h>

#include <vector>
#include <memory>

#include "paxos/multi_paxos.h"
#include "sim/simulation.h"
#include "smr/state_machine.h"

namespace consensus40::paxos {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct MpCluster {
  explicit MpCluster(int n, uint64_t seed = 1,
                     MultiPaxosOptions base = MultiPaxosOptions())
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {
    base.n = n;
    for (int i = 0; i < n; ++i) {
      replicas.push_back(sim.Spawn<MultiPaxosReplica>(base));
    }
  }

  MultiPaxosClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(
        sim.Spawn<MultiPaxosClient>(static_cast<int>(replicas.size()), ops,
                                    key));
    return clients.back();
  }

  bool AllClientsDone() const {
    for (const MultiPaxosClient* c : clients) {
      if (!c->done()) return false;
    }
    return true;
  }

  void CheckSafety() const {
    std::vector<const smr::ReplicatedLog*> logs;
    for (const MultiPaxosReplica* r : replicas) logs.push_back(&r->log());
    EXPECT_EQ(smr::CheckPrefixConsistency(logs), "");
    for (const MultiPaxosReplica* r : replicas) {
      EXPECT_TRUE(r->violations().empty())
          << "replica " << r->id() << ": " << r->violations()[0];
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<MultiPaxosReplica*> replicas;
  std::vector<MultiPaxosClient*> clients;
};

TEST(MultiPaxosTest, ElectsSingleLeader) {
  MpCluster cluster(5);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        int leaders = 0;
        for (const MultiPaxosReplica* r : cluster.replicas) {
          leaders += r->IsLeader();
        }
        return leaders == 1;
      },
      5 * kSecond));
}

TEST(MultiPaxosTest, SingleClientCompletes) {
  MpCluster cluster(5);
  MultiPaxosClient* client = cluster.AddClient(20);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->done(); },
                                   30 * kSecond));
  // INC results are 1..20 in order: commands executed exactly once, in
  // client order (closed loop).
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  cluster.CheckSafety();
}

TEST(MultiPaxosTest, ManyClientsSerializeOnOneCounter) {
  MpCluster cluster(5);
  for (int i = 0; i < 4; ++i) cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllClientsDone(); },
                                   60 * kSecond));
  cluster.CheckSafety();
  // 40 INCs total: the counter on the leader's state machine reads 40.
  cluster.sim.RunFor(1 * kSecond);  // Let commits propagate.
  int max_counter = 0;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    auto v = r->kv().Get("x");
    if (v) max_counter = std::max(max_counter, std::stoi(*v));
  }
  EXPECT_EQ(max_counter, 40);
}

TEST(MultiPaxosTest, ReplicasConvergeToSameState) {
  MpCluster cluster(5);
  cluster.AddClient(15, "a");
  cluster.AddClient(15, "b");
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllClientsDone(); },
                                   60 * kSecond));
  cluster.sim.RunFor(2 * kSecond);  // Drain commit broadcasts.
  cluster.CheckSafety();
  // Every live replica applied the same prefix; with drained commits all
  // frontiers are equal and states identical.
  auto digest0 = cluster.replicas[0]->kv().StateDigest();
  for (const MultiPaxosReplica* r : cluster.replicas) {
    EXPECT_EQ(r->log().commit_frontier(), 30u) << "replica " << r->id();
    EXPECT_EQ(r->kv().StateDigest(), digest0) << "replica " << r->id();
  }
}

TEST(MultiPaxosTest, FailsOverOnLeaderCrash) {
  MpCluster cluster(5);
  MultiPaxosClient* client = cluster.AddClient(30);
  cluster.sim.Start();
  // Let the initial leader commit some entries, then kill it.
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 5; },
                                   30 * kSecond));
  sim::NodeId leader = -1;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    if (r->IsLeader()) leader = r->id();
  }
  ASSERT_NE(leader, -1);
  cluster.sim.Crash(leader);

  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->done(); },
                                   120 * kSecond));
  cluster.CheckSafety();
  // Results still strictly sequential despite the failover (no lost or
  // doubly-applied increments).
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

TEST(MultiPaxosTest, CrashedLeaderRejoinsAsFollower) {
  MpCluster cluster(5);
  MultiPaxosClient* client = cluster.AddClient(20);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 5; },
                                   30 * kSecond));
  cluster.sim.Crash(0);
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 12; },
                                   60 * kSecond));
  cluster.sim.Restart(0);
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->done(); },
                                   120 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  // The restarted node catches up via commit broadcasts from the new leader.
  EXPECT_GT(cluster.replicas[0]->log().commit_frontier(), 0u);
}

TEST(MultiPaxosTest, MinorityPartitionCannotCommit) {
  MpCluster cluster(5);
  MultiPaxosClient* client = cluster.AddClient(50);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 5; },
                                   30 * kSecond));
  // Partition the current leader with one follower (minority side). The
  // client (spawned after replicas) goes to the majority side.
  sim::NodeId leader = -1;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    if (r->IsLeader()) leader = r->id();
  }
  ASSERT_NE(leader, -1);
  std::vector<sim::NodeId> minority = {leader, (leader + 1) % 5};
  std::vector<sim::NodeId> majority;
  for (int i = 0; i < 5; ++i) {
    if (i != minority[0] && i != minority[1]) majority.push_back(i);
  }
  majority.push_back(client->id());
  cluster.sim.Partition({minority, majority});

  // The majority side elects a new leader and keeps committing.
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->done(); },
                                   240 * kSecond));
  cluster.sim.Heal();
  cluster.sim.RunFor(3 * kSecond);
  cluster.CheckSafety();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

// The deck's Multi-Paxos optimization: phase 1 only on leader change. The
// ablation (re-prepare per command) must agree on results but spend ~2 extra
// message delays and many more messages per command.
TEST(MultiPaxosAblationTest, RePreparePerCommandIsSlowerButSafe) {
  MultiPaxosOptions slow_opts;
  slow_opts.skip_phase1_when_stable = false;
  MpCluster slow(5, 1, slow_opts);
  MultiPaxosClient* slow_client = slow.AddClient(10);
  slow.sim.Start();
  ASSERT_TRUE(slow.sim.RunUntil([&] { return slow_client->done(); },
                                120 * kSecond));
  slow.CheckSafety();
  sim::Time slow_time = slow.sim.now();
  int slow_phase1 = 0;
  for (const MultiPaxosReplica* r : slow.replicas) {
    slow_phase1 += r->phase1_rounds();
  }

  MpCluster fast(5, 1);
  MultiPaxosClient* fast_client = fast.AddClient(10);
  fast.sim.Start();
  ASSERT_TRUE(fast.sim.RunUntil([&] { return fast_client->done(); },
                                120 * kSecond));
  fast.CheckSafety();
  sim::Time fast_time = fast.sim.now();
  int fast_phase1 = 0;
  for (const MultiPaxosReplica* r : fast.replicas) {
    fast_phase1 += r->phase1_rounds();
  }

  EXPECT_LT(fast_time, slow_time);
  EXPECT_LT(fast_phase1, slow_phase1);
  EXPECT_GE(slow_phase1, 10);  // At least one phase 1 per command.
  EXPECT_EQ(slow_client->results(), fast_client->results());
}

// Flexible Multi-Paxos: tiny replication quorum (q2=2) with large election
// quorum (q1=4) on n=5 — commits require only 2 acks yet stay safe across a
// leader change.
TEST(MultiPaxosFlexibleTest, SmallReplicationQuorumSurvivesLeaderChange) {
  MultiPaxosOptions opts;
  opts.q1 = 4;
  opts.q2 = 2;
  MpCluster cluster(5, 3, opts);
  MultiPaxosClient* client = cluster.AddClient(20);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 8; },
                                   30 * kSecond));
  sim::NodeId leader = -1;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    if (r->IsLeader()) leader = r->id();
  }
  cluster.sim.Crash(leader);
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->done(); },
                                   240 * kSecond));
  cluster.CheckSafety();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

// Satellite regression: assigned-slot tracking must not leak. Every
// (client, seq) the leader assigns to a slot is erased again when the
// slot applies, so after a drained workload the map is empty on every
// replica — it is bounded by commands in flight, not commands ever run.
TEST(MultiPaxosBatchingTest, AssignedMapDrainsToEmpty) {
  MpCluster cluster(5);
  for (int i = 0; i < 3; ++i) cluster.AddClient(15);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllClientsDone(); },
                                   120 * kSecond));
  cluster.sim.RunFor(2 * kSecond);  // Drain commits and applies.
  cluster.CheckSafety();
  for (const MultiPaxosReplica* r : cluster.replicas) {
    EXPECT_EQ(r->assigned_entries(), 0u) << "replica " << r->id();
  }
}

// Leader-side batching: several closed-loop clients synchronised by the
// linger timer produce multi-command entries, and the shared counter
// still counts every INC exactly once.
TEST(MultiPaxosBatchingTest, BatchedEntriesExecuteExactlyOnce) {
  MultiPaxosOptions opts;
  opts.batch_size = 3;
  opts.batch_delay = 5 * kMillisecond;
  MpCluster cluster(5, 4, opts);
  for (int i = 0; i < 4; ++i) cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return cluster.AllClientsDone(); },
                                   120 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  int max_counter = 0, batches = 0;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    auto v = r->kv().Get("x");
    if (v) max_counter = std::max(max_counter, std::stoi(*v));
    batches += r->batches_cut();
  }
  EXPECT_EQ(max_counter, 40);
  EXPECT_GT(batches, 0) << "linger never produced a multi-command entry";
}

// Checkpoint truncation: with a checkpoint interval set, replicas fold
// their applied prefix into the state snapshot and drop the log slots,
// so retained-log size stays bounded while results stay exact.
TEST(MultiPaxosCheckpointTest, TruncatesAppliedPrefix) {
  MultiPaxosOptions opts;
  opts.checkpoint_interval = 10;
  MpCluster cluster(5, 1, opts);
  MultiPaxosClient* client = cluster.AddClient(40);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->done(); },
                                   120 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
  int checkpoints = 0;
  uint64_t max_start = 0;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    checkpoints += r->checkpoints_taken();
    max_start = std::max(max_start, r->log().start());
    EXPECT_TRUE(r->violations().empty())
        << "replica " << r->id() << ": " << r->violations()[0];
  }
  EXPECT_GT(checkpoints, 0);
  EXPECT_GT(max_start, 0u) << "no replica ever truncated its log";
  // States converge even though the logs are now suffixes.
  auto digest0 = cluster.replicas[0]->kv().StateDigest();
  for (const MultiPaxosReplica* r : cluster.replicas) {
    EXPECT_EQ(r->kv().StateDigest(), digest0) << "replica " << r->id();
  }
}

// A follower that sleeps through a checkpoint cannot be caught up from
// the log (the entries are gone) — the leader ships a state snapshot
// with the dedup sessions, and the laggard rejoins at the frontier.
TEST(MultiPaxosCheckpointTest, LaggardBeyondTruncationInstallsSnapshot) {
  MultiPaxosOptions opts;
  opts.checkpoint_interval = 8;
  MpCluster cluster(5, 2, opts);
  MultiPaxosClient* client = cluster.AddClient(60);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 5; },
                                   30 * kSecond));
  sim::NodeId follower = -1;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    if (!r->IsLeader()) follower = r->id();
  }
  ASSERT_NE(follower, -1);
  cluster.sim.Crash(follower);

  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->done(); },
                                   240 * kSecond));
  cluster.sim.Restart(follower);
  cluster.sim.RunFor(5 * kSecond);  // Heartbeat gap -> catch-up -> snapshot.

  MultiPaxosReplica* lagger = cluster.replicas[static_cast<size_t>(follower)];
  EXPECT_GE(lagger->snapshots_installed(), 1)
      << "laggard caught up without a snapshot despite truncation";
  auto v = lagger->kv().Get("x");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "60");
  for (const MultiPaxosReplica* r : cluster.replicas) {
    EXPECT_TRUE(r->violations().empty())
        << "replica " << r->id() << ": " << r->violations()[0];
  }
}

// A laggard that wins an election after the rest of the group has
// checkpoint-truncated past everything it holds must not be able to
// "choose" fresh commands at already-decided, truncated slots. The
// acceptors refuse its sub-frontier Accepts with a state snapshot; the
// stale leader installs it, re-bases its proposal cursor, and the
// workload finishes with exact (sequential) results instead of silently
// diverging from a stale state machine.
TEST(MultiPaxosCheckpointTest, StaleLeaderIsRefusedAtTruncatedSlots) {
  MultiPaxosOptions opts;
  opts.checkpoint_interval = 4;
  MpCluster cluster(3, 7, opts);
  MultiPaxosClient* client = cluster.AddClient(40);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 3; },
                                   30 * kSecond));
  sim::NodeId leader = -1;
  sim::NodeId laggard = -1;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    if (r->IsLeader()) {
      leader = r->id();
    } else {
      laggard = r->id();
    }
  }
  ASSERT_NE(leader, -1);
  ASSERT_NE(laggard, -1);
  MultiPaxosReplica* lag = cluster.replicas[static_cast<size_t>(laggard)];
  sim::NodeId follower = 3 - leader - laggard;  // The third replica.

  // Isolate the laggard while the majority keeps committing and
  // checkpointing until both peers truncated past everything it has.
  cluster.sim.Partition({{leader, follower, client->id()}, {laggard}});
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        if (client->completed() < 25) return false;
        for (sim::NodeId id : {leader, follower}) {
          if (cluster.replicas[static_cast<size_t>(id)]->log().start() <=
              lag->log().commit_frontier()) {
            return false;
          }
        }
        return true;
      },
      120 * kSecond));

  // Flip: laggard + up-to-date follower + client on one side, the old
  // leader alone on the other. The laggard's ballot counter ratcheted
  // through failed phase-1 retries all through its isolation, so it
  // out-bids the follower and wins the election — a leader whose
  // proposal cursor sits far below the group's truncation frontier.
  cluster.sim.Partition({{laggard, follower, client->id()}, {leader}});
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return lag->IsLeader(); }, 120 * kSecond));
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));

  EXPECT_GE(lag->snapshots_installed(), 1)
      << "stale leader was never pushed past the truncation frontier";
  // Exactly-once, in client order: the old blind-ACK path answers from a
  // stale state machine here and breaks the sequence.
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
  cluster.sim.Heal();
  cluster.sim.RunFor(5 * kSecond);
  cluster.CheckSafety();
  auto digest0 = cluster.replicas[0]->kv().StateDigest();
  for (const MultiPaxosReplica* r : cluster.replicas) {
    EXPECT_EQ(r->kv().StateDigest(), digest0) << "replica " << r->id();
  }
}

// A deposed leader must drop its proposer queues (mirroring Raft's
// BecomeFollower): commands it lingered or proposed without quorum are
// the new leader's to commit via client retries, and stale assigned_
// entries would otherwise suppress re-enqueueing forever if it ever led
// again.
TEST(MultiPaxosBatchingTest, DeposedLeaderDropsItsQueues) {
  MultiPaxosOptions opts;
  opts.batch_size = 4;
  opts.batch_delay = 50 * kMillisecond;
  MpCluster cluster(3, 5, opts);
  std::vector<MultiPaxosClient*> clients;
  for (int i = 0; i < 2; ++i) clients.push_back(cluster.AddClient(8));
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        return clients[0]->completed() + clients[1]->completed() >= 2;
      },
      30 * kSecond));
  sim::NodeId leader = -1;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    if (r->IsLeader()) leader = r->id();
  }
  ASSERT_NE(leader, -1);
  MultiPaxosReplica* old_leader = cluster.replicas[static_cast<size_t>(leader)];

  // Cut the leader off with the clients: it keeps accepting and
  // proposing their commands but can never reach quorum, so its
  // pending/assigned bookkeeping fills up.
  std::vector<sim::NodeId> rest;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    if (r->id() != leader) rest.push_back(r->id());
  }
  cluster.sim.Partition(
      {{leader, clients[0]->id(), clients[1]->id()}, rest});
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        return old_leader->assigned_entries() + old_leader->pending_ops() > 0;
      },
      60 * kSecond));

  // Flip: clients join the majority, which elects a new leader and
  // finishes the workload while the old leader sits alone.
  std::vector<sim::NodeId> majority = rest;
  majority.push_back(clients[0]->id());
  majority.push_back(clients[1]->id());
  cluster.sim.Partition({{leader}, majority});
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] { return clients[0]->done() && clients[1]->done(); },
      240 * kSecond));

  // Heal: the first higher-ballot heartbeat deposes the old leader, and
  // deposition clears every proposer queue and cancels its timers.
  cluster.sim.Heal();
  cluster.sim.RunFor(3 * kSecond);
  EXPECT_FALSE(old_leader->IsLeader());
  EXPECT_EQ(old_leader->pending_ops(), 0u);
  EXPECT_EQ(old_leader->assigned_entries(), 0u);
  cluster.CheckSafety();
  // Exactly-once across the failover: 16 INCs total, despite the old
  // leader having held (and dropped) some of them mid-flight.
  int max_counter = 0;
  for (const MultiPaxosReplica* r : cluster.replicas) {
    auto v = r->kv().Get("x");
    if (v) max_counter = std::max(max_counter, std::stoi(*v));
  }
  EXPECT_EQ(max_counter, 16);
}

TEST(MultiPaxosTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    MpCluster cluster(5, seed);
    MultiPaxosClient* client = cluster.AddClient(10);
    cluster.sim.Start();
    cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond);
    return cluster.sim.now();
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));  // Overwhelmingly likely.
}

}  // namespace
}  // namespace consensus40::paxos
