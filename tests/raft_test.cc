#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>
#include <memory>

#include "raft/raft.h"
#include "sim/simulation.h"
#include "smr/state_machine.h"

namespace consensus40::raft {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct RaftCluster {
  explicit RaftCluster(int n, uint64_t seed = 1,
                       RaftOptions base = RaftOptions())
      : sim_owner(
            sim::Simulation::Builder(seed).AutoStart(false).Build()),
        sim(*sim_owner) {
    base.n = n;
    for (int i = 0; i < n; ++i) {
      replicas.push_back(sim.Spawn<RaftReplica>(base));
    }
  }

  RaftClient* AddClient(int ops, const std::string& key = "x") {
    clients.push_back(sim.Spawn<RaftClient>(
        static_cast<int>(replicas.size()), ops, key));
    return clients.back();
  }

  sim::NodeId CurrentLeader() const {
    for (const RaftReplica* r : replicas) {
      if (r->IsLeader() && !sim.IsCrashed(r->id())) return r->id();
    }
    return sim::kInvalidNode;
  }

  int CountLeadersInTerm(int64_t term) const {
    int leaders = 0;
    for (const RaftReplica* r : replicas) {
      if (r->IsLeader() && r->current_term() == term) ++leaders;
    }
    return leaders;
  }

  void CheckSafety() const {
    // Committed prefixes must agree pairwise (State Machine Safety).
    for (size_t a = 0; a < replicas.size(); ++a) {
      for (size_t b = a + 1; b < replicas.size(); ++b) {
        auto ca = replicas[a]->CommittedCommands();
        auto cb = replicas[b]->CommittedCommands();
        size_t overlap = std::min(ca.size(), cb.size());
        for (size_t i = 0; i < overlap; ++i) {
          ASSERT_TRUE(ca[i] == cb[i])
              << "replicas " << a << "," << b << " diverge at " << i;
        }
      }
    }
    for (const RaftReplica* r : replicas) {
      EXPECT_TRUE(r->violations().empty())
          << "replica " << r->id() << ": " << r->violations()[0];
    }
  }

  std::unique_ptr<sim::Simulation> sim_owner;
  sim::Simulation& sim;
  std::vector<RaftReplica*> replicas;
  std::vector<RaftClient*> clients;
};

TEST(RaftTest, ElectsExactlyOneLeaderPerTerm) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RaftCluster cluster(5, seed);
    cluster.sim.Start();
    ASSERT_TRUE(cluster.sim.RunUntil(
        [&] { return cluster.CurrentLeader() != sim::kInvalidNode; },
        10 * kSecond))
        << "seed " << seed;
    // Never two leaders in the same term.
    for (const RaftReplica* r : cluster.replicas) {
      if (r->IsLeader()) {
        EXPECT_EQ(cluster.CountLeadersInTerm(r->current_term()), 1);
      }
    }
  }
}

TEST(RaftTest, ClientCommandsCommitInOrder) {
  RaftCluster cluster(5);
  RaftClient* client = cluster.AddClient(25);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
  cluster.CheckSafety();
}

TEST(RaftTest, ReplicasConverge) {
  RaftCluster cluster(5);
  cluster.AddClient(10, "a");
  cluster.AddClient(10, "b");
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        for (const RaftClient* c : cluster.clients) {
          if (!c->done()) return false;
        }
        return true;
      },
      60 * kSecond));
  cluster.sim.RunFor(2 * kSecond);  // Heartbeats propagate commit index.
  cluster.CheckSafety();
  for (const RaftReplica* r : cluster.replicas) {
    EXPECT_EQ(r->commit_index(), 20u) << "replica " << r->id();
    EXPECT_EQ(*r->kv().Get("a"), "10");
    EXPECT_EQ(*r->kv().Get("b"), "10");
  }
}

// The deck's headline Raft scenario: leader crashes mid-stream; a new
// leader with the most up-to-date log takes over; no committed entry is
// lost or duplicated.
TEST(RaftTest, LeaderCrashFailover) {
  RaftCluster cluster(5);
  RaftClient* client = cluster.AddClient(30);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 8; },
                                   30 * kSecond));
  sim::NodeId leader = cluster.CurrentLeader();
  ASSERT_NE(leader, sim::kInvalidNode);
  cluster.sim.Crash(leader);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  cluster.CheckSafety();
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
  // A different leader leads now, in a higher term.
  sim::NodeId new_leader = cluster.CurrentLeader();
  EXPECT_NE(new_leader, leader);
}

TEST(RaftTest, CrashedNodeRejoinsAndCatchesUp) {
  RaftCluster cluster(5);
  RaftClient* client = cluster.AddClient(20);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 4; },
                                   30 * kSecond));
  // Crash a follower.
  sim::NodeId leader = cluster.CurrentLeader();
  sim::NodeId follower = (leader + 1) % 5;
  cluster.sim.Crash(follower);
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 15; },
                                   60 * kSecond));
  cluster.sim.Restart(follower);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  cluster.CheckSafety();
  EXPECT_EQ(cluster.replicas[follower]->commit_index(), 20u);
}

TEST(RaftTest, MinorityPartitionStalls) {
  RaftCluster cluster(5);
  RaftClient* client = cluster.AddClient(40);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 5; },
                                   30 * kSecond));
  sim::NodeId leader = cluster.CurrentLeader();
  // Old leader + one follower on the minority side; client with majority.
  std::vector<sim::NodeId> minority = {leader, (leader + 1) % 5};
  std::vector<sim::NodeId> majority;
  for (int i = 0; i < 5; ++i) {
    if (i != minority[0] && i != minority[1]) majority.push_back(i);
  }
  majority.push_back(client->id());
  cluster.sim.Partition({minority, majority});
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  // The isolated old leader never committed anything new.
  uint64_t minority_commit = cluster.replicas[leader]->commit_index();
  cluster.sim.Heal();
  cluster.sim.RunFor(3 * kSecond);
  cluster.CheckSafety();
  EXPECT_GE(cluster.replicas[leader]->commit_index(), minority_commit);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

// Log-matching/up-to-date restriction: a rejoining stale node must not be
// able to win an election against nodes holding committed entries.
TEST(RaftTest, StaleNodeCannotWinElection) {
  RaftCluster cluster(3);
  RaftClient* client = cluster.AddClient(10);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 2; },
                                   30 * kSecond));
  sim::NodeId leader = cluster.CurrentLeader();
  sim::NodeId stale = (leader + 1) % 3;
  cluster.sim.Crash(stale);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 60 * kSecond));
  cluster.sim.Restart(stale);
  cluster.sim.RunFor(5 * kSecond);
  cluster.CheckSafety();
  // The stale node either follows or caught up before leading; committed
  // results are intact either way.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
}

// ---- Log compaction / InstallSnapshot ----

TEST(RaftSnapshotTest, LogShrinksAtThreshold) {
  RaftOptions opts;
  opts.snapshot_threshold = 8;
  RaftCluster cluster(3, 1, opts);
  RaftClient* client = cluster.AddClient(30);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 120 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  for (const RaftReplica* r : cluster.replicas) {
    EXPECT_GT(r->snapshots_taken(), 0) << r->id();
    EXPECT_LT(r->LogEntriesHeld(), 12u) << r->id();  // Bounded by threshold.
    EXPECT_EQ(*r->kv().Get("x"), "30") << r->id();
  }
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1));
  }
}

TEST(RaftSnapshotTest, LaggingFollowerInstallsSnapshot) {
  RaftOptions opts;
  opts.snapshot_threshold = 8;
  RaftCluster cluster(3, 2, opts);
  RaftClient* client = cluster.AddClient(40);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 4; },
                                   60 * kSecond));
  // A follower sleeps through several snapshots' worth of traffic.
  sim::NodeId leader = cluster.CurrentLeader();
  sim::NodeId sleeper = (leader + 1) % 3;
  cluster.sim.Crash(sleeper);
  ASSERT_TRUE(cluster.sim.RunUntil([&] { return client->completed() >= 35; },
                                   240 * kSecond));
  cluster.sim.Restart(sleeper);
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] {
        return cluster.replicas[sleeper]->kv().Get("x").has_value() &&
               *cluster.replicas[sleeper]->kv().Get("x") == "40";
      },
      240 * kSecond))
      << "sleeper never caught up";
  EXPECT_GT(cluster.replicas[sleeper]->snapshots_installed(), 0);
  // All state machines agree.
  for (const RaftReplica* r : cluster.replicas) {
    EXPECT_EQ(r->kv().StateDigest(),
              cluster.replicas[leader]->kv().StateDigest())
        << r->id();
  }
}

TEST(RaftSnapshotTest, SnapshotPreservesSessionDedup) {
  // A client retry that crosses a compaction boundary must not re-execute.
  RaftOptions opts;
  opts.snapshot_threshold = 4;
  RaftCluster cluster(3, 3, opts);
  RaftClient* client = cluster.AddClient(25);
  cluster.sim.Start();
  ASSERT_TRUE(
      cluster.sim.RunUntil([&] { return client->done(); }, 240 * kSecond));
  cluster.sim.RunFor(2 * kSecond);
  for (const RaftReplica* r : cluster.replicas) {
    EXPECT_EQ(*r->kv().Get("x"), "25") << r->id();
  }
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(client->results()[i], std::to_string(i + 1)) << i;
  }
}

// votedFor is persistent state: a replica that forgot its vote across a
// crash could grant a second vote in the same term and elect two leaders.
// Direct durability check first; the storm test below hunts the
// consequence end to end.
TEST(RaftTest, VotedForSurvivesCrashRestart) {
  RaftCluster cluster(5);
  cluster.sim.Start();
  ASSERT_TRUE(cluster.sim.RunUntil(
      [&] { return cluster.CurrentLeader() != sim::kInvalidNode; },
      30 * kSecond));
  sim::NodeId leader = cluster.CurrentLeader();
  int64_t term = cluster.replicas[leader]->current_term();
  // Find a follower that granted its vote to this leader.
  sim::NodeId voter = sim::kInvalidNode;
  for (const RaftReplica* r : cluster.replicas) {
    if (r->id() != leader && r->current_term() == term &&
        r->voted_for() == leader) {
      voter = r->id();
    }
  }
  ASSERT_NE(voter, sim::kInvalidNode);
  cluster.sim.Crash(voter);
  cluster.sim.RunFor(50 * kMillisecond);
  cluster.sim.Restart(voter);
  EXPECT_EQ(cluster.replicas[voter]->current_term(), term);
  EXPECT_EQ(cluster.replicas[voter]->voted_for(), leader);
}

// Forced double-vote hunt: every follower is crash/restarted moments
// after granting a vote (once per term), the leader is bounced to keep
// elections coming, and election safety is re-checked after every event.
// A volatile votedFor lets a restarted voter vote again in the same term,
// which in a 3-node cluster elects two term-sharing leaders.
TEST(RaftTest, RestartedVotersNeverElectTwoLeadersPerTerm) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RaftCluster cluster(3, seed);
    cluster.AddClient(5);
    cluster.sim.Start();

    std::set<std::pair<sim::NodeId, int64_t>> bounced;
    sim::Time last_leader_crash = 0;
    std::function<void()> storm = [&] {
      sim::NodeId leader = cluster.CurrentLeader();
      if (leader != sim::kInvalidNode &&
          cluster.sim.now() - last_leader_crash > 300 * kMillisecond) {
        last_leader_crash = cluster.sim.now();
        cluster.sim.Crash(leader);
        cluster.sim.ScheduleAfter(40 * kMillisecond, [&, leader] {
          if (cluster.sim.IsCrashed(leader)) cluster.sim.Restart(leader);
        });
      }
      for (RaftReplica* r : cluster.replicas) {
        sim::NodeId v = r->id();
        if (cluster.sim.IsCrashed(v)) continue;
        if (r->voted_for() == sim::kInvalidNode || r->voted_for() == v) {
          continue;  // No vote granted, or self-vote (candidate).
        }
        if (!bounced.insert({v, r->current_term()}).second) continue;
        cluster.sim.Crash(v);
        cluster.sim.ScheduleAfter(1 * kMillisecond, [&, v] {
          if (cluster.sim.IsCrashed(v)) cluster.sim.Restart(v);
        });
      }
      cluster.sim.ScheduleAfter(2 * kMillisecond, storm);
    };
    cluster.sim.ScheduleAfter(2 * kMillisecond, storm);

    // The predicate runs after every event: no transient double leader
    // can slip between samples.
    std::map<int64_t, std::set<sim::NodeId>> leaders_by_term;
    cluster.sim.RunUntil(
        [&] {
          for (const RaftReplica* r : cluster.replicas) {
            if (r->IsLeader()) {
              leaders_by_term[r->current_term()].insert(r->id());
            }
          }
          return false;
        },
        5 * kSecond);
    for (const auto& [term, leaders] : leaders_by_term) {
      EXPECT_LE(leaders.size(), 1u)
          << "seed " << seed << ": " << leaders.size()
          << " leaders shared term " << term;
    }
    cluster.CheckSafety();
  }
}

TEST(RaftTest, SplitVotesResolveViaRandomizedTimeouts) {
  // With an adversarial seed sweep, elections may split, but randomized
  // timeouts must always converge to a leader.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RaftCluster cluster(4, seed);  // Even cluster: splits more likely.
    cluster.sim.Start();
    ASSERT_TRUE(cluster.sim.RunUntil(
        [&] { return cluster.CurrentLeader() != sim::kInvalidNode; },
        20 * kSecond))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace consensus40::raft
